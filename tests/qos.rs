//! Deadline-aware scheduling end to end: EDF-off bit-identity (the QoS
//! machinery must be invisible when disabled), EDF issue ordering, and
//! the stalled-scheduler expiry regression in every engine.

use coruscant::core::program::PimProgram;
use coruscant::mem::MemoryConfig;
use coruscant::runtime::{
    IssuePolicy, Placement, Runtime, RuntimeOptions, RuntimeReport, RuntimeStats, SchedMode,
    SchedStats, WatchdogOptions,
};
use coruscant::workloads::serve::all_workload_programs;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

fn corpus(repeats: usize) -> Vec<PimProgram> {
    let base = all_workload_programs(&eight_bank_config());
    let mut programs = Vec::with_capacity(base.len() * repeats);
    for _ in 0..repeats {
        programs.extend(base.iter().cloned());
    }
    programs
}

/// How a session's jobs carry deadlines: none at all, or a uniformly
/// generous one that can never expire during the test.
#[derive(Clone, Copy)]
enum Deadlines {
    None,
    Generous,
}

/// Runs one paused-start session: every submission is staged before the
/// scheduler gate opens, so classic-engine issue order is deterministic
/// and two sessions with the same effective policy compare bit-exactly.
fn run_staged(
    mut options: RuntimeOptions,
    programs: &[PimProgram],
    deadlines: Deadlines,
) -> RuntimeReport {
    // The whole corpus stages behind the closed gate, so the queue must
    // hold it outright — default capacity would deadlock the submitter
    // against a scheduler that is not draining yet.
    options.queue_capacity = options.queue_capacity.max(programs.len() + 1);
    let runtime = Runtime::new(eight_bank_config(), options.paused()).expect("runtime starts");
    let due = match deadlines {
        Deadlines::None => None,
        Deadlines::Generous => Some(Instant::now() + Duration::from_secs(3600)),
    };
    for program in programs {
        runtime
            .submit_due(program.clone(), Placement::Auto, due)
            .expect("submission accepted");
    }
    runtime.resume();
    runtime.finish().expect("session drains")
}

/// Stats with the scheduler-occupancy profile blanked: every other
/// field is modeled (deterministic), but `sched` carries measured
/// thread-CPU micros that legitimately differ run to run.
fn modeled(stats: &RuntimeStats) -> RuntimeStats {
    let mut stats = stats.clone();
    stats.sched = SchedStats::default();
    stats
}

fn outputs_by_job(report: &RuntimeReport) -> BTreeMap<u64, Vec<(String, Vec<u64>)>> {
    report
        .outcomes
        .iter()
        .map(|o| (o.job_id, o.outputs.clone()))
        .collect()
}

/// Classic engine: with the policy off (FIFO) the whole QoS layer must
/// be invisible — a FIFO session whose jobs carry generous deadlines,
/// and an EDF session whose jobs carry none, both reproduce the
/// baseline *full* outcome stream (seqs, banks, and modeled times
/// included), bit for bit.
#[test]
fn classic_fifo_bit_identical_with_qos_machinery_engaged() {
    let programs = corpus(3);
    let baseline = run_staged(RuntimeOptions::default(), &programs, Deadlines::None);
    assert_eq!(baseline.outcomes.len(), programs.len());

    // Deadlines present, policy off: the expiry scan sees every job but
    // drops none, and FIFO order is untouched.
    let fifo_due = run_staged(RuntimeOptions::default(), &programs, Deadlines::Generous);
    assert_eq!(fifo_due.outcomes, baseline.outcomes);
    assert_eq!(modeled(&fifo_due.stats), modeled(&baseline.stats));

    // EDF enabled, no deadlines: every job sorts to the FIFO position.
    let edf_none = run_staged(
        RuntimeOptions::default().with_issue_policy(IssuePolicy::Edf),
        &programs,
        Deadlines::None,
    );
    assert_eq!(edf_none.outcomes, baseline.outcomes);
    assert_eq!(modeled(&edf_none.stats), modeled(&baseline.stats));
}

/// Parallel engine, every shard count: same invisibility requirement,
/// compared on the placement-independent outcome map (work stealing
/// makes seqs and banks legitimately nondeterministic).
#[test]
fn parallel_fifo_outcomes_unchanged_by_qos_machinery() {
    let programs = corpus(3);
    let baseline = run_staged(RuntimeOptions::default(), &programs, Deadlines::None);
    let want = outputs_by_job(&baseline);
    for shards in [1usize, 2, 4, 8] {
        let par = |policy: IssuePolicy, deadlines: Deadlines| {
            run_staged(
                RuntimeOptions::default()
                    .with_shards(shards)
                    .with_sched_mode(SchedMode::Parallel)
                    .with_issue_policy(policy),
                &programs,
                deadlines,
            )
        };
        let fifo_due = par(IssuePolicy::Fifo, Deadlines::Generous);
        assert_eq!(
            outputs_by_job(&fifo_due),
            want,
            "shards={shards}: generous deadlines changed FIFO outcomes"
        );
        assert_eq!(fifo_due.stats.expired, 0);
        let edf_none = par(IssuePolicy::Edf, Deadlines::None);
        assert_eq!(
            outputs_by_job(&edf_none),
            want,
            "shards={shards}: deadline-free EDF changed outcomes"
        );
    }
}

/// EDF actually reorders: jobs staged behind a closed gate with
/// *reversed* deadlines issue earliest-deadline-first. Submission order
/// is 0..n with job 0 carrying the latest deadline, so under EDF the
/// per-bank issue sequence runs opposite to submission order.
#[test]
fn edf_issues_earliest_deadline_first() {
    const JOBS: u64 = 6;
    let programs = corpus(1);
    let program = &programs[0];
    let runtime = Runtime::new(
        eight_bank_config(),
        RuntimeOptions::default()
            .with_issue_policy(IssuePolicy::Edf)
            .paused(),
    )
    .expect("runtime starts");
    let base = Instant::now() + Duration::from_secs(600);
    let mut ids = Vec::new();
    for i in 0..JOBS {
        // Same unit => same bank queue; later submissions get *earlier*
        // deadlines.
        let due = base + Duration::from_secs(600 - 60 * i);
        ids.push(
            runtime
                .submit_due(program.clone(), Placement::Unit(0), Some(due))
                .expect("accepted"),
        );
    }
    runtime.resume();
    let report = runtime.finish().expect("drains");
    assert_eq!(report.outcomes.len(), JOBS as usize);
    let mut by_seq: Vec<(u64, u64)> = report.outcomes.iter().map(|o| (o.seq, o.job_id)).collect();
    by_seq.sort_unstable();
    let issue_order: Vec<u64> = by_seq.into_iter().map(|(_, id)| id).collect();
    let mut want = ids.clone();
    want.reverse();
    assert_eq!(issue_order, want, "EDF must issue in deadline order");
}

/// The stalled-scheduler regression: jobs whose deadline passes while
/// the scheduler gate is closed are dropped at issue time in *every*
/// engine — no bank ever sees them, the report carries no outcome, and
/// `RuntimeStats::expired` accounts for each one.
#[test]
fn stalled_scheduler_expires_overdue_jobs_in_every_engine() {
    const JOBS: u64 = 5;
    let configs: [(&str, RuntimeOptions); 3] = [
        ("classic", RuntimeOptions::default()),
        (
            // The watchdog routes scheduling through the resilient
            // (ack-polling) loop, exercising its expiry hook.
            "resilient-classic",
            RuntimeOptions::default().with_watchdog(WatchdogOptions {
                enabled: true,
                ..WatchdogOptions::default()
            }),
        ),
        (
            "parallel",
            RuntimeOptions::default()
                .with_shards(2)
                .with_sched_mode(SchedMode::Parallel),
        ),
    ];
    let programs = corpus(1);
    let program = &programs[0];
    for (name, options) in configs {
        let runtime = Runtime::new(eight_bank_config(), options.paused()).expect("runtime starts");
        let due = Instant::now() + Duration::from_millis(20);
        for _ in 0..JOBS {
            runtime
                .submit_due(program.clone(), Placement::Auto, Some(due))
                .expect("accepted");
        }
        std::thread::sleep(Duration::from_millis(60));
        runtime.resume();
        let report = runtime.finish().expect("drains");
        assert_eq!(
            report.outcomes.len(),
            0,
            "{name}: expired jobs must not reach a bank"
        );
        assert_eq!(
            report.stats.expired, JOBS,
            "{name}: every staged job expires"
        );
        assert_eq!(report.stats.jobs, 0, "{name}: no job retires");
    }
}

/// Mixed staging: overdue and live jobs interleaved behind a closed
/// gate — only the overdue ones expire, the rest complete normally.
#[test]
fn mixed_overdue_and_live_jobs_split_cleanly() {
    let programs = corpus(1);
    let program = &programs[0];
    let runtime = Runtime::new(eight_bank_config(), RuntimeOptions::default().paused())
        .expect("runtime starts");
    let overdue = Instant::now() + Duration::from_millis(15);
    let live = Instant::now() + Duration::from_secs(3600);
    let mut expect_live = Vec::new();
    for i in 0..8u64 {
        let due = if i % 2 == 0 { overdue } else { live };
        let id = runtime
            .submit_due(program.clone(), Placement::Auto, Some(due))
            .expect("accepted");
        if i % 2 == 1 {
            expect_live.push(id);
        }
    }
    std::thread::sleep(Duration::from_millis(50));
    runtime.resume();
    let report = runtime.finish().expect("drains");
    let done: Vec<u64> = report.outcomes.iter().map(|o| o.job_id).collect();
    assert_eq!(done, expect_live, "live jobs complete in id order");
    assert_eq!(report.stats.expired, 4);
}
