//! End-to-end CNN serving acceptance (ISSUE 6): inference requests
//! lowered by `coruscant::pipeline` and served through the full
//! compiler → runtime → server stack must be **bit-identical** to the
//! standalone `nn::pim_exec` engine (`nn::infer::run_pim`) — across
//! {LeNet-5, AlexNet} proxies × {full, BWN, TWN} precisions, across
//! shard counts, under fault injection with re-execute protection, and
//! through the streaming batch path.

use coruscant::mem::{FaultPlan, MemoryConfig};
use coruscant::nn::infer::{
    proxy_alexnet, proxy_lenet5, run_pim, run_reference, synth_image, synth_weights,
};
use coruscant::nn::models::Network;
use coruscant::nn::quant::Precision;
use coruscant::pipeline::serve::ServingSession;
use coruscant::pipeline::Pipeline;
use coruscant::racetrack::FaultConfig;
use coruscant::runtime::{HealthPolicy, ProtectionPolicy, RuntimeOptions};
use coruscant::server::{AdmissionOptions, Priority, Server, ServerOptions};

/// Sixteen tiles (4 banks × 2 × 2) — enough distinct units for the
/// eleven-layer AlexNet proxy, with three storage DBCs per tile for
/// resident weights.
fn serving_config() -> MemoryConfig {
    MemoryConfig {
        banks: 4,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

const MODELS: [fn() -> Network; 2] = [proxy_lenet5, proxy_alexnet];
const PRECISIONS: [Precision; 3] = [Precision::Full, Precision::Bwn, Precision::Twn];

/// Serves `images` through a fresh server session (pin once, one chain
/// per request) and returns decoded logits in input order.
fn serve_logits(
    config: &MemoryConfig,
    net: &Network,
    precision: Precision,
    images: &[coruscant::nn::tensor::Tensor3],
    runtime: RuntimeOptions,
) -> Vec<Vec<u64>> {
    serve_logits_with_stats(config, net, precision, images, runtime).0
}

/// As [`serve_logits`], also returning the drained server stats.
fn serve_logits_with_stats(
    config: &MemoryConfig,
    net: &Network,
    precision: Precision,
    images: &[coruscant::nn::tensor::Tensor3],
    runtime: RuntimeOptions,
) -> (Vec<Vec<u64>>, coruscant::server::ServerStats) {
    let weights = synth_weights(net, precision, 3);
    let pipeline = Pipeline::new(config, net.clone(), weights, 0).expect("pipeline builds");
    let server = Server::start(
        config.clone(),
        ServerOptions {
            runtime,
            admission: AdmissionOptions::default(),
            ..ServerOptions::default()
        },
    )
    .expect("server starts");
    let session = ServingSession::pin(server.client(), pipeline).expect("residencies pin");
    let handles = session
        .submit_batch(images, Priority::Normal)
        .expect("requests admitted");
    let logits: Vec<Vec<u64>> = handles
        .into_iter()
        .map(|h| h.wait().expect("request completes"))
        .collect();
    let stats = server.shutdown().expect("server drains");
    assert!(stats.balanced(), "{stats:?}");
    (logits, stats)
}

/// Satellite: the standalone PIM engine's conv/pool/FC outputs equal
/// the host `reference_*` oracle across the full model × precision
/// matrix, and the logits are non-degenerate (the equality is not
/// vacuously all-zero).
#[test]
fn pim_exec_matches_reference_matrix() {
    let config = serving_config();
    for model in MODELS {
        let net = model();
        let image = synth_image(&net, 7);
        for precision in PRECISIONS {
            let weights = synth_weights(&net, precision, 3);
            let pim = run_pim(&config, &net, &weights, &image).expect("pim runs");
            let oracle = run_reference(&net, &weights, &image);
            assert_eq!(pim, oracle, "{} @ {precision:?}", net.name);
            assert!(
                pim.iter().any(|&v| v > 0),
                "{} @ {precision:?}: all-zero logits make the equality vacuous",
                net.name
            );
        }
    }
}

/// Acceptance: pipeline-served inference through compiler → runtime →
/// server is bit-identical to standalone `nn::pim_exec` across the full
/// model × precision matrix.
#[test]
fn served_inference_is_bit_identical_to_standalone() {
    let config = serving_config();
    for model in MODELS {
        let net = model();
        let images: Vec<_> = (0..2).map(|s| synth_image(&net, 7 + s)).collect();
        for precision in PRECISIONS {
            let weights = synth_weights(&net, precision, 3);
            let standalone: Vec<Vec<u64>> = images
                .iter()
                .map(|img| run_pim(&config, &net, &weights, img).expect("pim runs"))
                .collect();
            let served = serve_logits(&config, &net, precision, &images, RuntimeOptions::default());
            assert_eq!(
                served, standalone,
                "{} @ {precision:?}: served logits must equal nn::pim_exec",
                net.name
            );
        }
    }
}

/// Acceptance: served logits are deterministic across executor shard
/// counts — resident placement never consults the automatic cursor and
/// dependency gating resolves in id order.
#[test]
fn served_inference_is_deterministic_across_shards() {
    let config = serving_config();
    let net = proxy_lenet5();
    let images: Vec<_> = (0..3).map(|s| synth_image(&net, 11 + s)).collect();
    for precision in PRECISIONS {
        let baseline = serve_logits(
            &config,
            &net,
            precision,
            &images,
            RuntimeOptions::default().with_shards(1),
        );
        for shards in [2, 4] {
            let got = serve_logits(
                &config,
                &net,
                precision,
                &images,
                RuntimeOptions::default().with_shards(shards),
            );
            assert_eq!(got, baseline, "{precision:?} @ {shards} shards");
        }
    }
}

/// Acceptance: under seeded fault injection with re-execute protection,
/// served logits still equal the fault-free standalone engine — every
/// detected corruption is retried until a pairwise-verified attempt
/// retires.
#[test]
fn served_inference_is_exact_under_faults_and_reexecute() {
    let config = serving_config();
    // 5e-6 per transverse read keeps the expected fault count per
    // execution well under one even for the multiplier-heavy conv
    // programs (~10⁴–10⁵ TRs each), so re-execute-and-compare converges
    // on an agreeing pair; at ~1e-4 every pair disagrees and jobs
    // surface unverified.
    let plan = FaultPlan::uniform(FaultConfig::NONE.with_tr_fault_rate(5e-6), 0xCAFE).unwrap();
    // Generous thresholds: this test exercises retry exactness, not
    // quarantine (pipeline.rs covers re-materialization).
    let health = HealthPolicy {
        suspect_after: 100_000,
        quarantine_after: 1_000_000,
        scrub_on_suspect: false,
        ..HealthPolicy::default()
    };
    let options = RuntimeOptions::default()
        .with_faults(plan)
        .with_health(health)
        .with_protection(ProtectionPolicy::Reexecute { max_retries: 8 });
    let net = proxy_lenet5();
    let images: Vec<_> = (0..2).map(|s| synth_image(&net, 21 + s)).collect();
    let mut faults_detected = 0;
    let mut unverified = 0;
    for precision in PRECISIONS {
        let weights = synth_weights(&net, precision, 3);
        let standalone: Vec<Vec<u64>> = images
            .iter()
            .map(|img| run_pim(&config, &net, &weights, img).expect("pim runs"))
            .collect();
        let (served, stats) =
            serve_logits_with_stats(&config, &net, precision, &images, options.clone());
        assert_eq!(
            served, standalone,
            "{precision:?}: protected serving must reproduce fault-free logits"
        );
        faults_detected += stats.runtime.faults.faults_detected;
        unverified += stats.runtime.faults.unverified_jobs;
    }
    // Non-vacuity: the seeded plan actually fired, and every job still
    // retired pairwise-verified (no unverified outputs were accepted).
    assert!(faults_detected > 0, "fault plan never fired");
    assert_eq!(unverified, 0, "all jobs must retire verified");
}

/// The streaming batch path yields decoded logits in input order and
/// matches the per-request handles.
#[test]
fn streamed_batch_yields_in_input_order() {
    let config = serving_config();
    let net = proxy_alexnet();
    let precision = Precision::Twn;
    let images: Vec<_> = (0..3).map(|s| synth_image(&net, 31 + s)).collect();
    let weights = synth_weights(&net, precision, 3);
    let standalone: Vec<Vec<u64>> = images
        .iter()
        .map(|img| run_pim(&config, &net, &weights, img).expect("pim runs"))
        .collect();

    let pipeline = Pipeline::new(&config, net.clone(), weights, 0).expect("pipeline builds");
    let server = Server::start(config.clone(), ServerOptions::default()).expect("server starts");
    let session = ServingSession::pin(server.client(), pipeline).expect("residencies pin");
    let mut stream = session
        .stream_batch(&images, Priority::Normal)
        .expect("batch admitted");
    assert_eq!(stream.remaining(), images.len());
    let mut served = Vec::new();
    while let Some(next) = stream.next() {
        served.push(next.expect("request completes"));
    }
    assert_eq!(served, standalone, "streamed logits in input order");
    let stats = server.shutdown().expect("server drains");
    assert!(stats.balanced(), "{stats:?}");
}
