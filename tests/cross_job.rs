//! Cross-job optimization acceptance (ISSUE 4): compiled-program cache
//! correctness and same-bank batch-fusion exactness.
//!
//! The cache must be placement-sound (identical programs destined for
//! different units never alias each other's results) and eviction-safe
//! at any capacity. Batch fusion must be *exact*: splicing queued
//! same-unit jobs into one program and optimizing across the boundary
//! has to reproduce the sequential outputs bit for bit — for every
//! program the workload front ends emit, and under fault injection with
//! an active protection policy.

use coruscant::core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant::core::program::{PimProgram, Step};
use coruscant::mem::{DbcLocation, FaultPlan, MemoryConfig, RowAddress};
use coruscant::racetrack::FaultConfig;
use coruscant::runtime::{
    BatchOptions, CacheOptions, HealthPolicy, Placement, ProtectionPolicy, Runtime, RuntimeOptions,
    RuntimeReport,
};
use coruscant::workloads::serve::all_workload_programs;

/// A self-contained add job with a known expected output.
fn add_job(a: u64, b: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(loc, 4),
                values: vec![a; 8],
                lane: 8,
            },
            Step::Load {
                addr: RowAddress::new(loc, 5),
                values: vec![b; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(loc, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(loc, 20),
                lane: 8,
            },
        ],
    }
}

fn expected_sum(a: u64, b: u64) -> Vec<u64> {
    vec![(a + b) & 0xFF; 8]
}

/// Warm-cache acceptance: N identical submissions compile once and hit
/// the cache N-1 times, with every output still exact.
#[test]
fn warm_cache_hits_equal_submissions_minus_one() {
    let config = MemoryConfig::tiny();
    let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
    let n = 10u64;
    for _ in 0..n {
        rt.submit(add_job(3, 4), Placement::Auto).unwrap();
    }
    let report = rt.finish().unwrap();
    assert_eq!(report.outcomes.len() as u64, n);
    for o in &report.outcomes {
        assert_eq!(o.outputs[0].1, expected_sum(3, 4), "job {}", o.job_id);
    }
    assert_eq!(report.stats.cache.misses, 1);
    assert_eq!(report.stats.cache.hits, n - 1);
}

/// Placement soundness: the same program pinned to two different units
/// shares one cache entry but executes — and reports — at its own
/// placement.
#[test]
fn identical_programs_at_different_placements_do_not_alias() {
    let config = MemoryConfig::tiny();
    let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
    let here = DbcLocation::new(0, 0, 0, 0);
    let there = DbcLocation::new(1, 1, 0, 0);
    rt.submit(add_job(9, 30), Placement::Fixed(here)).unwrap();
    rt.submit(add_job(9, 30), Placement::Fixed(there)).unwrap();
    let report = rt.finish().unwrap();
    assert_eq!(report.outcomes.len(), 2);
    assert_eq!(report.outcomes[0].unit, here);
    assert_eq!(report.outcomes[1].unit, there);
    for o in &report.outcomes {
        assert_eq!(o.outputs[0].1, expected_sum(9, 30), "job {}", o.job_id);
    }
    // The canonicalized entry serves both placements.
    assert_eq!(report.stats.cache.hits, 1);
    assert_eq!(report.stats.cache.misses, 1);
}

/// Eviction safety: a capacity-1 cache thrashing between two distinct
/// programs keeps every output exact and reports the evictions.
#[test]
fn capacity_one_cache_stays_correct_under_eviction() {
    let config = MemoryConfig::tiny();
    let options = RuntimeOptions::default().with_cache(CacheOptions {
        enabled: true,
        capacity: 1,
        shards: 1,
    });
    let rt = Runtime::new(config, options).unwrap();
    let pairs = [(3u64, 4u64), (10, 20)];
    let rounds = 6;
    for _ in 0..rounds {
        for (a, b) in pairs {
            rt.submit(add_job(a, b), Placement::Auto).unwrap();
        }
    }
    let report = rt.finish().unwrap();
    assert_eq!(report.outcomes.len(), 2 * rounds);
    for o in &report.outcomes {
        let (a, b) = pairs[(o.job_id % 2) as usize];
        assert_eq!(o.outputs[0].1, expected_sum(a, b), "job {}", o.job_id);
    }
    assert!(
        report.stats.cache.evictions > 0,
        "alternating distinct programs through capacity 1 must evict"
    );
}

fn run_corpus(config: &MemoryConfig, batch: BatchOptions) -> RuntimeReport {
    let rt = Runtime::new(config.clone(), RuntimeOptions::default().with_batch(batch)).unwrap();
    let unit = DbcLocation::new(0, 0, 0, 0);
    for program in all_workload_programs(config) {
        rt.submit(program, Placement::Fixed(unit)).unwrap();
    }
    rt.finish().unwrap()
}

/// Batch-fusion exactness: every workload program, queued onto one bank
/// and spliced into batched dispatches, reproduces the sequential
/// outputs bit for bit.
#[test]
fn batched_same_bank_execution_is_bit_identical_to_sequential() {
    let config = MemoryConfig::tiny();
    let sequential = run_corpus(&config, BatchOptions::default());
    let batched = run_corpus(&config, BatchOptions::enabled());
    assert_eq!(sequential.stats.batch.batches, 0);
    assert!(
        batched.stats.batch.batches > 0,
        "same-bank queueing must produce batched dispatches"
    );
    assert!(batched.stats.batch.batched_jobs >= 2 * batched.stats.batch.batches);
    assert_eq!(sequential.outcomes.len(), batched.outcomes.len());
    for (s, b) in sequential.outcomes.iter().zip(&batched.outcomes) {
        assert_eq!(s.job_id, b.job_id);
        assert_eq!(s.outputs, b.outputs, "job {}", s.job_id);
    }
    // Batching reduces dispatches, never jobs.
    assert_eq!(sequential.stats.jobs, batched.stats.jobs);
}

/// Batched-splice caching: a backlog of identical same-unit jobs drains
/// as structurally identical batches, so every batch after the first is
/// a splice-cache hit — and outputs match the cache-off run bit for bit.
#[test]
fn repeated_batches_hit_the_splice_cache() {
    let config = MemoryConfig::tiny();
    let unit = DbcLocation::new(0, 0, 0, 0);
    let run = |splice_cache: usize| -> RuntimeReport {
        let batch = BatchOptions {
            splice_cache,
            ..BatchOptions::enabled()
        };
        // Gate the scheduler so the whole backlog queues first and the
        // batch grouping (4 × 8 identical members) is deterministic.
        let rt = Runtime::new(
            config.clone(),
            RuntimeOptions::default().paused().with_batch(batch),
        )
        .unwrap();
        for _ in 0..32 {
            rt.submit(add_job(13, 29), Placement::Fixed(unit)).unwrap();
        }
        rt.finish().unwrap()
    };

    let cached = run(128);
    let uncached = run(0);
    assert!(cached.stats.batch.batches >= 2, "{:?}", cached.stats.batch);
    assert_eq!(
        cached.stats.batch.splice_hits,
        cached.stats.batch.batches - cached.stats.batch.splice_misses,
        "every batch is a lookup: {:?}",
        cached.stats.batch
    );
    assert!(
        cached.stats.batch.splice_hits > 0,
        "identical member sets must hit: {:?}",
        cached.stats.batch
    );
    assert_eq!(uncached.stats.batch.splice_hits, 0);
    assert_eq!(uncached.stats.batch.splice_misses, 0);
    assert_eq!(cached.outcomes.len(), uncached.outcomes.len());
    for (c, u) in cached.outcomes.iter().zip(&uncached.outcomes) {
        assert_eq!(c.outputs, u.outputs, "job {}", c.job_id);
        assert_eq!(c.outputs[0].1, expected_sum(13, 29), "job {}", c.job_id);
    }
}

/// Same-unit grouping past interveners: an alternating two-unit backlog
/// on one bank never batches under consecutive-only grouping, but
/// `BatchGrouping::SameUnit` gathers the interleaved jobs — with outputs
/// still bit-identical.
#[test]
fn same_unit_grouping_batches_interleaved_backlogs() {
    use coruscant::runtime::BatchGrouping;

    let config = MemoryConfig::tiny();
    // Two distinct PIM units in the same bank (bank 0, subarrays 0/1):
    // one bank FIFO, alternating target units.
    let unit_a = DbcLocation::new(0, 0, 0, 0);
    let unit_b = DbcLocation::new(0, 1, 0, 0);
    let run = |grouping: BatchGrouping| -> RuntimeReport {
        let batch = BatchOptions {
            grouping,
            ..BatchOptions::enabled()
        };
        let rt = Runtime::new(
            config.clone(),
            RuntimeOptions::default().paused().with_batch(batch),
        )
        .unwrap();
        for i in 0..24u64 {
            let place = if i % 2 == 0 { unit_a } else { unit_b };
            rt.submit(add_job(3 + i, 100 + i), Placement::Fixed(place))
                .unwrap();
        }
        rt.finish().unwrap()
    };

    let consecutive = run(BatchGrouping::Consecutive);
    let gathered = run(BatchGrouping::SameUnit);
    assert_eq!(
        consecutive.stats.batch.batches, 0,
        "alternating units leave no consecutive runs: {:?}",
        consecutive.stats.batch
    );
    assert!(
        gathered.stats.batch.batches > 0,
        "SameUnit must gather past the interveners: {:?}",
        gathered.stats.batch
    );
    assert_eq!(consecutive.outcomes.len(), gathered.outcomes.len());
    let by_id = |r: &RuntimeReport| {
        let mut o = r.outcomes.clone();
        o.sort_by_key(|x| x.job_id);
        o
    };
    for (c, g) in by_id(&consecutive).iter().zip(&by_id(&gathered)) {
        assert_eq!(c.job_id, g.job_id);
        assert_eq!(c.outputs, g.outputs, "job {}", c.job_id);
        assert_eq!(
            c.outputs[0].1,
            expected_sum(3 + c.job_id, 100 + c.job_id),
            "job {}",
            c.job_id
        );
    }
}

/// Batch fusion composed with fault injection and re-execute-and-compare
/// protection: outputs stay exact, faults are detected, and batched
/// dispatches actually happen.
#[test]
fn batched_protected_campaign_serves_exact_outputs_under_faults() {
    let config = MemoryConfig::tiny();
    let plan = FaultPlan::uniform(FaultConfig::NONE.with_tr_fault_rate(2e-3), 0xC0FF_EE04).unwrap();
    let options = RuntimeOptions::default()
        .with_batch(BatchOptions::enabled())
        .with_faults(plan)
        .with_protection(ProtectionPolicy::Reexecute { max_retries: 6 })
        .with_health(HealthPolicy {
            suspect_after: 10_000,
            quarantine_after: 100_000,
            scrub_on_suspect: false,
            max_inflight_per_bank: 16,
            max_redispatch: 2,
        });
    let rt = Runtime::new(config, options).unwrap();
    let jobs = 48u64;
    for i in 0..jobs {
        let (a, b) = ((0x35 + 7 * i) % 200, (0x5A + 13 * i) % 55);
        rt.submit(add_job(a, b), Placement::Unit(0)).unwrap();
    }
    let report = rt.finish().unwrap();
    assert_eq!(report.outcomes.len() as u64, jobs);
    for o in &report.outcomes {
        let (a, b) = ((0x35 + 7 * o.job_id) % 200, (0x5A + 13 * o.job_id) % 55);
        assert_eq!(o.outputs[0].1, expected_sum(a, b), "job {}", o.job_id);
        assert!(o.verified, "job {}", o.job_id);
    }
    assert!(report.stats.batch.batches > 0, "campaign must batch");
    assert!(
        report.stats.faults.faults_detected > 0,
        "the accelerated rate must trip detection"
    );
}
