//! Full-stack integration: cpim instructions through the memory
//! controller, data movement between storage and PIM DBCs, and
//! end-to-end result verification.

use coruscant::core::dispatch::PimMachine;
use coruscant::core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant::mem::{DbcLocation, MemoryConfig, Row, RowAddress};
use coruscant::racetrack::CostMeter;

fn pim_addr(row: usize) -> RowAddress {
    RowAddress::new(DbcLocation::new(0, 0, 0, 0), row)
}

fn storage_addr(row: usize) -> RowAddress {
    RowAddress::new(DbcLocation::new(1, 1, 1, 2), row)
}

#[test]
fn copy_from_storage_then_add_then_write_back() {
    let mut machine = PimMachine::new(MemoryConfig::tiny());

    // Data begins in a storage DBC (as if written by the CPU).
    let mut meter = CostMeter::new();
    for (i, v) in [11u64, 22, 33].iter().enumerate() {
        let row = Row::pack(64, 8, &[*v; 8]);
        machine
            .controller_mut()
            .store_row(storage_addr(i), &row, &mut meter)
            .unwrap();
    }

    // Copy the operands into the PIM DBC via cpim.copy.
    for i in 0..3 {
        let copy = CpimInstr::new(
            CpimOpcode::Copy,
            storage_addr(i),
            1,
            BlockSize::new(8).unwrap(),
            Some(pim_addr(10 + i)),
        )
        .unwrap();
        machine.execute(&copy).unwrap();
    }

    // Three-operand addition, result written back to storage.
    let add = CpimInstr::new(
        CpimOpcode::Add,
        pim_addr(10),
        3,
        BlockSize::new(8).unwrap(),
        Some(storage_addr(9)),
    )
    .unwrap();
    let out = machine.execute(&add).unwrap();
    assert_eq!(out.result.unwrap().unpack(8), vec![66; 8]);

    let stored = machine
        .controller_mut()
        .load_row(storage_addr(9), &mut meter)
        .unwrap();
    assert_eq!(stored.unpack(8), vec![66; 8]);
}

#[test]
fn instruction_stream_advances_controller_time() {
    let mut machine = PimMachine::new(MemoryConfig::tiny());
    let mut meter = CostMeter::new();
    machine
        .controller_mut()
        .store_row(pim_addr(4), &Row::pack(64, 8, &[7; 8]), &mut meter)
        .unwrap();
    machine
        .controller_mut()
        .store_row(pim_addr(5), &Row::pack(64, 8, &[9; 8]), &mut meter)
        .unwrap();

    let add = CpimInstr::new(
        CpimOpcode::Add,
        pim_addr(4),
        2,
        BlockSize::new(8).unwrap(),
        None,
    )
    .unwrap();
    let first = machine.execute(&add).unwrap();
    assert!(first.completion > 0);
    assert!(first.cost.cycles >= 19, "2-op add takes at least 19 cycles");
    assert!(first.cost.energy_pj > 0.0);

    // Re-loading the operand rows (the add consumed the originals'
    // segment region) and issuing again queues behind the first op.
    machine
        .controller_mut()
        .store_row(pim_addr(4), &Row::pack(64, 8, &[7; 8]), &mut meter)
        .unwrap();
    machine
        .controller_mut()
        .store_row(pim_addr(5), &Row::pack(64, 8, &[9; 8]), &mut meter)
        .unwrap();
    let second = machine.execute(&add).unwrap();
    assert!(second.completion > first.completion);
    assert_eq!(second.result.unwrap().unpack(8), vec![16; 8]);
}

#[test]
fn encoded_instruction_roundtrip_executes() {
    let mut machine = PimMachine::new(MemoryConfig::tiny());
    let mut meter = CostMeter::new();
    machine
        .controller_mut()
        .store_row(
            pim_addr(2),
            &Row::from_u64_words(64, &[0xFF00FF]),
            &mut meter,
        )
        .unwrap();
    machine
        .controller_mut()
        .store_row(
            pim_addr(3),
            &Row::from_u64_words(64, &[0x0FF0FF]),
            &mut meter,
        )
        .unwrap();

    let instr = CpimInstr::new(
        CpimOpcode::And,
        pim_addr(2),
        2,
        BlockSize::new(8).unwrap(),
        None,
    )
    .unwrap();
    // Ship the instruction as its 64-bit encoding (as a trace would).
    let decoded = CpimInstr::decode(instr.encode()).unwrap();
    let out = machine.execute(&decoded).unwrap();
    assert_eq!(out.result.unwrap().to_u64_words()[0], 0xFF00FF & 0x0FF0FF);
}

#[test]
fn mixed_pim_and_plain_traffic() {
    use coruscant::mem::controller::Request;
    let mut machine = PimMachine::new(MemoryConfig::tiny());
    let mut meter = CostMeter::new();

    machine
        .controller_mut()
        .store_row(pim_addr(6), &Row::pack(64, 8, &[100; 8]), &mut meter)
        .unwrap();
    machine
        .controller_mut()
        .store_row(pim_addr(7), &Row::pack(64, 8, &[55; 8]), &mut meter)
        .unwrap();

    // Plain reads to other banks interleave with PIM work.
    let t_read = machine
        .controller_mut()
        .submit(Request::Read(64 * 64))
        .unwrap();
    let add = CpimInstr::new(
        CpimOpcode::Add,
        pim_addr(6),
        2,
        BlockSize::new(8).unwrap(),
        None,
    )
    .unwrap();
    let out = machine.execute(&add).unwrap();
    assert!(t_read > 0 && out.completion > 0);
    assert_eq!(out.result.unwrap().unpack(8), vec![155; 8]);

    let stats = machine.controller().stats();
    assert!(stats.requests >= 2);
    assert!(stats.energy_pj > 0.0);
}

#[test]
fn max_and_vote_through_the_isa() {
    let mut machine = PimMachine::new(MemoryConfig::tiny());
    let mut meter = CostMeter::new();
    for (i, v) in [9u64, 200, 13].iter().enumerate() {
        machine
            .controller_mut()
            .store_row(pim_addr(i), &Row::pack(64, 8, &[*v; 8]), &mut meter)
            .unwrap();
    }
    let max = CpimInstr::new(
        CpimOpcode::Max,
        pim_addr(0),
        3,
        BlockSize::new(8).unwrap(),
        None,
    )
    .unwrap();
    let out = machine.execute(&max).unwrap();
    assert_eq!(out.result.unwrap().unpack(8), vec![200; 8]);

    // Voting over three replicas with one corrupted.
    for (i, v) in [0xABu64, 0xAB, 0xAA].iter().enumerate() {
        machine
            .controller_mut()
            .store_row(pim_addr(20 + i), &Row::pack(64, 8, &[*v; 8]), &mut meter)
            .unwrap();
    }
    let vote = CpimInstr::new(
        CpimOpcode::Vote,
        pim_addr(20),
        3,
        BlockSize::new(8).unwrap(),
        None,
    )
    .unwrap();
    let out = machine.execute(&vote).unwrap();
    assert_eq!(out.result.unwrap().unpack(8), vec![0xAB; 8]);
}
