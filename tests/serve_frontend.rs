//! End-to-end tests of the async serving frontend (`coruscant-server`)
//! over the full workload corpus: determinism versus the direct runtime
//! path, overload shedding, deadline expiry, and explicit cancellation.

use coruscant::mem::{FaultPlan, MemoryConfig};
use coruscant::racetrack::FaultConfig;
use coruscant::runtime::{run_batch, HealthPolicy, ProtectionPolicy, RuntimeOptions};
use coruscant::server::{
    AdmissionOptions, Priority, Rejected, ServeError, Server, ServerOptions, SubmitOptions,
};
use coruscant::workloads::serve::{all_workload_programs, serve_programs_streamed};
use std::time::Duration;

/// Runs the corpus both ways — direct [`run_batch`] and through a
/// [`coruscant::server::Client`] stream — and asserts bit-identical
/// labeled outputs, member by member in submission order.
fn assert_server_matches_direct(options: RuntimeOptions) {
    let config = MemoryConfig::tiny();
    let programs = all_workload_programs(&config);
    let n = programs.len();

    let direct = run_batch(&config, programs.clone(), options.clone()).unwrap();
    let server_options = ServerOptions {
        runtime: options,
        admission: AdmissionOptions::default(),
        ..ServerOptions::default()
    };
    let (served, stats) = serve_programs_streamed(&config, programs, server_options).unwrap();

    assert_eq!(direct.outcomes.len(), n);
    assert_eq!(served.len(), n);
    assert_eq!(stats.completed, n as u64);
    assert!(stats.balanced(), "{stats:?}");
    for (i, (direct_out, served_out)) in direct.outcomes.iter().zip(&served).enumerate() {
        assert_eq!(
            direct_out.outputs, served_out.outputs,
            "member {i}: served outputs must be bit-identical to the direct runtime"
        );
    }
    // The wrapped runtime saw exactly the same work.
    assert_eq!(stats.runtime.jobs, direct.stats.jobs);
}

#[test]
fn server_outputs_bit_identical_to_direct_runtime() {
    assert_server_matches_direct(RuntimeOptions::default());
}

#[test]
fn server_outputs_bit_identical_under_faults_and_reexecute() {
    let plan = FaultPlan::uniform(FaultConfig::NONE.with_tr_fault_rate(2e-3), 0xFA117).unwrap();
    let health = HealthPolicy {
        suspect_after: 10_000,
        quarantine_after: 100_000,
        scrub_on_suspect: false,
        ..HealthPolicy::default()
    };
    let options = RuntimeOptions::default()
        .with_faults(plan)
        .with_health(health)
        .with_protection(ProtectionPolicy::Reexecute { max_retries: 6 });
    assert_server_matches_direct(options);
}

#[test]
fn overload_shedding_is_typed_and_balanced() {
    let config = MemoryConfig::tiny();
    let programs = all_workload_programs(&config);
    // Gate the scheduler so the queue fills deterministically; queue of 4
    // puts Normal's high-water mark at ceil(0.75 * 4) = 3.
    let mut runtime = RuntimeOptions::default().paused();
    runtime.queue_capacity = 4;
    let server = Server::start(
        config,
        ServerOptions {
            runtime,
            admission: AdmissionOptions::enabled(),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let client = server.client();

    let mut handles = Vec::new();
    let mut overloads = 0u64;
    for program in programs.into_iter().take(10) {
        match client.submit(program) {
            Ok(h) => handles.push(h),
            Err(Rejected::Overload) => overloads += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert_eq!(handles.len(), 3, "admitted up to the high-water mark");
    assert_eq!(overloads, 7, "everything past the mark shed as Overload");

    // Every admitted job still completes and the books balance.
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.submitted, 10);
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.rejected_overload, 7);
    assert!(stats.balanced(), "{stats:?}");
    for h in handles {
        assert!(h.wait().is_ok(), "accepted jobs resolve Ok");
    }
}

#[test]
fn low_priority_sheds_before_high() {
    let config = MemoryConfig::tiny();
    let mut programs = all_workload_programs(&config).into_iter();
    let mut runtime = RuntimeOptions::default().paused();
    runtime.queue_capacity = 4;
    let server = Server::start(
        config,
        ServerOptions {
            runtime,
            admission: AdmissionOptions::enabled(),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let client = server.client();

    // Fill to depth 2: Low's high-water mark, ceil(0.5 * 4).
    for _ in 0..2 {
        client
            .submit_with(programs.next().unwrap(), SubmitOptions::default())
            .unwrap();
    }
    let low = client.submit_with(
        programs.next().unwrap(),
        SubmitOptions::priority(Priority::Low),
    );
    assert_eq!(low.err(), Some(Rejected::Overload), "Low sheds at depth 2");
    let high = client.submit_with(
        programs.next().unwrap(),
        SubmitOptions::priority(Priority::High),
    );
    assert!(high.is_ok(), "High still admits at depth 2");
    let stats = server.shutdown().unwrap();
    assert!(stats.balanced(), "{stats:?}");
}

#[test]
fn queued_deadline_expires_and_counts() {
    let config = MemoryConfig::tiny();
    let mut programs = all_workload_programs(&config).into_iter();
    let server = Server::start(
        config,
        ServerOptions {
            runtime: RuntimeOptions::default().paused(),
            admission: AdmissionOptions::default(),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let client = server.client();

    let doomed = client
        .submit_with(
            programs.next().unwrap(),
            SubmitOptions::default().with_deadline(Duration::from_millis(30)),
        )
        .unwrap();
    let healthy = client.submit(programs.next().unwrap()).unwrap();
    // Let the deadline lapse while the scheduler is still gated, then
    // release the backlog: the expired job must never reach a bank.
    std::thread::sleep(Duration::from_millis(150));
    server.resume();

    assert_eq!(doomed.wait(), Err(ServeError::Expired));
    assert!(healthy.wait().is_ok(), "undoomed neighbor completes");

    let stats = server.shutdown().unwrap();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1);
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(
        stats.runtime.cancelled, 1,
        "the runtime dropped it unissued"
    );
}

#[test]
fn zero_deadline_rejected_at_submission() {
    let config = MemoryConfig::tiny();
    let mut programs = all_workload_programs(&config).into_iter();
    let server = Server::start(config, ServerOptions::default()).unwrap();
    let client = server.client();
    let r = client.submit_with(
        programs.next().unwrap(),
        SubmitOptions::default().with_deadline(Duration::ZERO),
    );
    assert_eq!(r.err(), Some(Rejected::Deadline));
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.rejected_deadline, 1);
    assert!(stats.balanced(), "{stats:?}");
}

#[test]
fn explicit_cancel_resolves_cancelled() {
    let config = MemoryConfig::tiny();
    let mut programs = all_workload_programs(&config).into_iter();
    let server = Server::start(
        config,
        ServerOptions {
            runtime: RuntimeOptions::default().paused(),
            admission: AdmissionOptions::default(),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let client = server.client();
    let handle = client.submit(programs.next().unwrap()).unwrap();
    client.cancel(handle.id());
    server.resume();
    assert_eq!(handle.wait(), Err(ServeError::Cancelled));
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.cancelled, 1);
    assert!(stats.balanced(), "{stats:?}");
}

#[test]
fn submissions_after_shutdown_are_rejected_closed() {
    let config = MemoryConfig::tiny();
    let mut programs = all_workload_programs(&config).into_iter();
    let server = Server::start(config, ServerOptions::default()).unwrap();
    let client = server.client();
    let ok = client.submit(programs.next().unwrap()).unwrap();
    assert!(ok.wait().is_ok());
    let stats = server.shutdown().unwrap();
    assert!(stats.balanced(), "{stats:?}");
    // The client outlives the server; its submissions now fail typed.
    assert_eq!(
        client.submit(programs.next().unwrap()).err(),
        Some(Rejected::Closed)
    );
}

#[test]
fn handles_are_pollable_futures() {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll, Waker};

    let config = MemoryConfig::tiny();
    let mut programs = all_workload_programs(&config).into_iter();
    let server = Server::start(config, ServerOptions::default()).unwrap();
    let mut handle = server.client().submit(programs.next().unwrap()).unwrap();

    // Poll to completion with a plain no-op waker — no executor needed.
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    let done = loop {
        match Pin::new(&mut handle).poll(&mut cx) {
            Poll::Ready(c) => break c,
            Poll::Pending => std::thread::yield_now(),
        }
    };
    assert!(done.is_ok());
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.completed, 1);
}
