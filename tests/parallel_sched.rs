//! Parallel-scheduler equivalence: `SchedMode::Parallel` must produce
//! the same *set* of per-job outcomes as the classic single-loop
//! scheduler on every program in the workload corpus — fault-free, under
//! device faults with re-execute protection, and under seeded chaos
//! panics — at every shard count. Plus the work-stealing starvation
//! test (one hot bank, idle sibling domains) and the config-surface
//! rejections the parallel engine documents.

use coruscant::core::program::PimProgram;
use coruscant::mem::{FaultPlan, MemoryConfig};
use coruscant::racetrack::FaultConfig;
use coruscant::runtime::{
    install_quiet_hook, ChainJob, ChaosPlan, DispatchMode, Placement, ProgramSource,
    ProtectionPolicy, Runtime, RuntimeError, RuntimeOptions, RuntimeReport, SchedMode,
    SuperviseOptions, WatchdogOptions,
};
use coruscant::workloads::serve::all_workload_programs;
use std::collections::{BTreeMap, BTreeSet};

fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

/// The full serving corpus (bitmap queries at widths 1..=4 in both
/// compile shapes, plus the matmul), repeated so every domain sees work.
fn corpus(repeats: usize) -> Vec<PimProgram> {
    let base = all_workload_programs(&eight_bank_config());
    let mut programs = Vec::with_capacity(base.len() * repeats);
    for _ in 0..repeats {
        programs.extend(base.iter().cloned());
    }
    programs
}

fn run_session(options: RuntimeOptions, programs: &[PimProgram]) -> RuntimeReport {
    let runtime = Runtime::new(eight_bank_config(), options).expect("runtime starts");
    for program in programs {
        runtime
            .submit(program.clone(), Placement::Auto)
            .expect("submission accepted");
    }
    runtime.finish().expect("session drains")
}

/// Job id → labeled outputs, the placement-independent outcome a mode
/// comparison is made against (seqs and banks legitimately differ).
fn outputs_by_job(report: &RuntimeReport) -> BTreeMap<u64, Vec<(String, Vec<u64>)>> {
    report
        .outcomes
        .iter()
        .map(|o| (o.job_id, o.outputs.clone()))
        .collect()
}

#[test]
fn parallel_outcome_set_matches_classic_fault_free() {
    let programs = corpus(4);
    let classic = run_session(RuntimeOptions::default(), &programs);
    let want = outputs_by_job(&classic);
    assert_eq!(want.len(), programs.len(), "classic completes everything");
    for shards in [1usize, 2, 4, 8] {
        let parallel = run_session(
            RuntimeOptions::default()
                .with_shards(shards)
                .with_sched_mode(SchedMode::Parallel),
            &programs,
        );
        assert_eq!(parallel.stats.sched.mode, "parallel");
        assert_eq!(
            outputs_by_job(&parallel),
            want,
            "parallel shards={shards} diverged from classic"
        );
        assert_eq!(parallel.stats.jobs, classic.stats.jobs);
        assert_eq!(parallel.stats.instructions, classic.stats.instructions);
    }
}

#[test]
fn parallel_matches_classic_under_device_faults_with_reexecute() {
    // A uniform accelerated TR-fault plan with re-execute-and-compare:
    // both modes must complete the same job-id set, and any job BOTH
    // modes verified must read out identically (an unverified attempt's
    // outputs legitimately depend on which bank's fault stream hit it).
    let plan = FaultPlan::uniform(FaultConfig::NONE.with_tr_fault_rate(1e-3), 0xFA_57).unwrap();
    let programs = corpus(2);
    let protected = |shards: usize, sched: SchedMode| {
        run_session(
            RuntimeOptions::default()
                .with_shards(shards)
                .with_sched_mode(sched)
                .with_faults(plan.clone())
                .with_protection(ProtectionPolicy::Reexecute { max_retries: 2 }),
            &programs,
        )
    };
    let classic = protected(4, SchedMode::Classic);
    let classic_verified: BTreeMap<u64, Vec<(String, Vec<u64>)>> = classic
        .outcomes
        .iter()
        .filter(|o| o.verified)
        .map(|o| (o.job_id, o.outputs.clone()))
        .collect();
    let classic_ids: BTreeSet<u64> = classic.outcomes.iter().map(|o| o.job_id).collect();
    for shards in [1usize, 2, 4, 8] {
        let parallel = protected(shards, SchedMode::Parallel);
        let parallel_ids: BTreeSet<u64> = parallel.outcomes.iter().map(|o| o.job_id).collect();
        assert_eq!(
            parallel_ids, classic_ids,
            "job-id sets diverged at shards={shards}"
        );
        for o in parallel.outcomes.iter().filter(|o| o.verified) {
            if let Some(want) = classic_verified.get(&o.job_id) {
                assert_eq!(
                    &o.outputs, want,
                    "job {} verified in both modes but read out differently \
                     (shards={shards})",
                    o.job_id
                );
            }
        }
    }
}

#[test]
fn parallel_chaos_fates_match_classic() {
    // Chaos draws are keyed on (job id, attempt) only, so a job's fate —
    // completed after n crash retries, or abandoned — is a pure function
    // of the seed and its id. Both engines must agree on the completed
    // set and on the surviving outputs.
    install_quiet_hook();
    let programs = corpus(3);
    let chaotic = |shards: usize, sched: SchedMode| {
        run_session(
            RuntimeOptions::default()
                .with_shards(shards)
                .with_sched_mode(sched)
                .with_chaos(ChaosPlan::panics(0xD15EA5E, 150))
                .with_supervise(SuperviseOptions {
                    backoff_base_ms: 1,
                    backoff_max_ms: 4,
                    max_job_retries: 3,
                    ..SuperviseOptions::default()
                }),
            &programs,
        )
    };
    let classic = chaotic(4, SchedMode::Classic);
    let want = outputs_by_job(&classic);
    assert!(
        classic.stats.supervision.panics_caught > 0,
        "the plan must actually inject panics"
    );
    for shards in [1usize, 2, 4, 8] {
        let parallel = chaotic(shards, SchedMode::Parallel);
        assert_eq!(
            outputs_by_job(&parallel),
            want,
            "chaos fates diverged at shards={shards}"
        );
        assert_eq!(
            parallel.stats.supervision.abandoned_jobs, classic.stats.supervision.abandoned_jobs,
            "abandonment counts diverged at shards={shards}"
        );
        assert!(parallel.stats.supervision.panics_caught > 0);
    }
}

#[test]
fn idle_domains_steal_from_a_hot_bank() {
    // SingleBank dispatch routes every Auto submission to the domain
    // owning unit 0's bank; the other seven domains start with empty
    // injectors and must pull their work over by stealing.
    let programs = corpus(8);
    let report = run_session(
        RuntimeOptions::default()
            .with_shards(8)
            .with_dispatch(DispatchMode::SingleBank)
            .with_sched_mode(SchedMode::Parallel),
        &programs,
    );
    assert_eq!(
        report.outcomes.len(),
        programs.len(),
        "starved domains must not drop work"
    );
    assert!(
        report.stats.sched.steals > 0,
        "idle domains never stole: {:?}",
        report.stats.sched
    );
    let busy_banks = report.stats.per_bank.iter().filter(|b| b.jobs > 0).count();
    assert!(
        busy_banks > 1,
        "stolen work must spread beyond the hot bank (banks used: {busy_banks})"
    );
    // The domain breakdown accounts for every steal it reports.
    let domain_steals: u64 = report.stats.sched.per_domain.iter().map(|d| d.steals).sum();
    assert_eq!(domain_steals, report.stats.sched.steals);
}

#[test]
fn parallel_rejects_unsupported_config_surfaces() {
    let config = eight_bank_config();
    let parallel = || {
        RuntimeOptions::default()
            .with_shards(4)
            .with_sched_mode(SchedMode::Parallel)
    };

    // Watchdog and chaos stalls are refused at construction.
    let watchdog = Runtime::new(
        config.clone(),
        parallel().with_watchdog(WatchdogOptions {
            enabled: true,
            ..WatchdogOptions::default()
        }),
    );
    assert!(matches!(watchdog, Err(RuntimeError::Config(_))));
    let stalls = Runtime::new(
        config.clone(),
        parallel().with_chaos(ChaosPlan::stalls(1, 100, 10_000)),
    );
    assert!(matches!(stalls, Err(RuntimeError::Config(_))));

    // Chains, dependency gates, and resident pins are refused at submit.
    let probe = all_workload_programs(&config).remove(0);
    let runtime = Runtime::new(config, parallel()).expect("plain parallel runtime starts");
    let chain = runtime.submit_chain(vec![ChainJob {
        source: ProgramSource::Ready(probe.clone()),
        placement: Placement::Auto,
        after: vec![],
    }]);
    assert!(matches!(chain, Err(RuntimeError::Config(_))));
    let gated = runtime.submit_after(probe.clone(), Placement::Auto, &[]);
    assert!(matches!(gated, Err(RuntimeError::Config(_))));
    let pin = runtime.pin_resident(probe.clone(), 0);
    assert!(matches!(pin, Err(RuntimeError::Config(_))));

    // The rejections left the session healthy: plain submissions drain.
    runtime.submit(probe, Placement::Auto).expect("accepted");
    let report = runtime.finish().expect("drains");
    assert_eq!(report.outcomes.len(), 1);
}

#[test]
fn parallel_profile_reports_per_domain_activity() {
    let programs = corpus(6);
    let report = run_session(
        RuntimeOptions::default()
            .with_shards(4)
            .with_sched_mode(SchedMode::Parallel),
        &programs,
    );
    let sched = &report.stats.sched;
    assert_eq!(sched.mode, "parallel");
    assert_eq!(sched.domains, 4);
    assert_eq!(sched.per_domain.len(), 4);
    let issued: u64 = sched.per_domain.iter().map(|d| d.issued).sum();
    let jobs: u64 = sched.per_domain.iter().map(|d| d.jobs).sum();
    assert!(issued > 0, "domains issued dispatches");
    assert_eq!(jobs, programs.len() as u64, "every job charged to a domain");
    assert!(
        sched.per_domain.iter().filter(|d| d.jobs > 0).count() > 1,
        "round-robin routing must spread the corpus: {sched:?}"
    );
    assert!(sched.wall_micros > 0);
}
