//! Sanity at the paper's full geometry: 512-nanowire DBCs, 32 rows,
//! TRD = 7 (Table II). The per-operation latencies must be identical to
//! the small test geometry — lock-step width changes energy, not cycles —
//! and every operation must stay correct at full row width.

use coruscant::core::add::MultiOperandAdder;
use coruscant::core::bulk::{BulkExecutor, BulkOp};
use coruscant::core::maxpool::MaxExecutor;
use coruscant::core::mult::Multiplier;
use coruscant::mem::{Dbc, MemoryConfig, Row};
use coruscant::racetrack::CostMeter;

fn paper_dbc() -> (MemoryConfig, Dbc) {
    let config = MemoryConfig::paper();
    let dbc = Dbc::pim_enabled(&config);
    (config, dbc)
}

#[test]
fn full_width_addition_64_lanes() {
    let (config, mut dbc) = paper_dbc();
    assert_eq!(dbc.width(), 512);
    let adder = MultiOperandAdder::new(&config);
    // 64 packed 8-bit lanes, five operands.
    let operands: Vec<Row> = (0..5u64)
        .map(|k| {
            let vals: Vec<u64> = (0..64).map(|l| (l * 3 + k * 41) % 256).collect();
            Row::pack(512, 8, &vals)
        })
        .collect();
    let mut m = CostMeter::new();
    let got = adder.add_rows(&mut dbc, &operands, 8, &mut m).unwrap();
    assert_eq!(got, MultiOperandAdder::reference(&operands, 8));
    // Same 26 cycles as the 64-wire test geometry: lanes are free.
    assert_eq!(m.total().cycles, 26);
    // Energy scales with the 8x wider row.
    assert!(m.total().energy_pj > 8.0 * 21.0);
}

#[test]
fn full_width_bulk_ops() {
    let (config, mut dbc) = paper_dbc();
    let exec = BulkExecutor::new(&config);
    let operands: Vec<Row> = (0..7u64)
        .map(|k| {
            let words: Vec<u64> = (0..8).map(|w| (k * 0x0101_0101_0101_0101) ^ w).collect();
            Row::from_u64_words(512, &words)
        })
        .collect();
    let mut m = CostMeter::new();
    let got = exec
        .execute(&mut dbc, BulkOp::Xor, &operands, &mut m)
        .unwrap();
    assert_eq!(got, BulkExecutor::reference(BulkOp::Xor, &operands));
    assert_eq!(m.total().cycles, 14, "7 writes + 6 shifts + 1 TR");
}

#[test]
fn full_width_multiplication_32_lanes() {
    let (config, mut dbc) = paper_dbc();
    let mult = Multiplier::new(&config);
    let a: Vec<u64> = (0..32).map(|i| (i * 7 + 3) % 256).collect();
    let b: Vec<u64> = (0..32).map(|i| (i * 13 + 1) % 256).collect();
    let mut m = CostMeter::new();
    let got = mult.multiply_values(&mut dbc, &a, &b, 8, &mut m).unwrap();
    assert_eq!(got, Multiplier::reference(&a, &b));
    // Latency equals the 4-lane measurement (93 cycles at TRD 7).
    assert!(m.total().cycles < 120, "cycles {}", m.total().cycles);
}

#[test]
fn full_width_max_512_bit_blocks() {
    let (config, mut dbc) = paper_dbc();
    let maxer = MaxExecutor::new(&config);
    // The paper's largest blocksize: one 512-bit comparison per row.
    let candidates: Vec<Row> = (0..4u64)
        .map(|k| {
            let mut words = vec![0u64; 8];
            words[7] = k * 1000; // big-endian significance at the lane top
            Row::from_u64_words(512, &words)
        })
        .collect();
    let mut m = CostMeter::new();
    let got = maxer.max_rows(&mut dbc, &candidates, 512, &mut m).unwrap();
    assert_eq!(got, candidates[3], "largest candidate wins");
}

#[test]
fn paper_scale_controller_roundtrip() {
    use coruscant::mem::{DbcLocation, MemoryController, RowAddress};
    let config = MemoryConfig::paper();
    let mut ctrl = MemoryController::new(config.clone());
    // Touch DBCs across the full geometry (sparse materialization keeps
    // this cheap despite the 1 GB capacity).
    let mut meter = CostMeter::new();
    for (bank, subarray, tile, dbcx, row) in [
        (0usize, 0usize, 0usize, 0usize, 0usize),
        (31, 63, 15, 15, 31),
        (17, 2, 9, 0, 16),
    ] {
        let addr = RowAddress::new(DbcLocation::new(bank, subarray, tile, dbcx), row);
        let data = Row::from_u64_words(512, &[bank as u64 ^ 0xABCD; 8]);
        ctrl.store_row(addr, &data, &mut meter).unwrap();
        assert_eq!(ctrl.load_row(addr, &mut meter).unwrap(), data);
    }
    assert_eq!(config.capacity_bytes(), 1 << 30);
    assert_eq!(ctrl.pim_unit_count(), 32 * 64 * 16);
}

#[test]
fn trace_replay_at_paper_scale() {
    use coruscant::mem::trace::{replay, Trace};
    use coruscant::mem::MemoryController;
    let config = MemoryConfig::paper();
    let trace = Trace::strided(&config, 5000, 3);
    let mut ctrl = MemoryController::new(config);
    let report = replay(&trace, &mut ctrl).unwrap();
    assert_eq!(report.requests, 5000);
    assert!(report.finish_cycles > 0);
    assert!(report.cycles_per_request() < 40.0);
}

/// Nightly campaign (run with `--ignored`): fault-tolerant serving at
/// the paper's full Table II geometry — 32 banks, 512-nanowire DBCs,
/// 2048 PIM units — under an accelerated seeded fault plan. The per-op
/// fault probability (512 TR draws × 2e-4) is two orders of magnitude
/// above the acceptance floor of 1e-3; re-execution must still serve
/// every output exactly.
#[test]
#[ignore = "nightly: paper-scale fault campaign (slow)"]
fn nightly_paper_scale_fault_tolerant_serving() {
    use coruscant::core::isa::{BlockSize, CpimInstr, CpimOpcode};
    use coruscant::core::program::{PimProgram, Step};
    use coruscant::mem::{DbcLocation, FaultPlan, RowAddress};
    use coruscant::racetrack::FaultConfig;
    use coruscant::runtime::{HealthPolicy, Placement, ProtectionPolicy, Runtime, RuntimeOptions};

    let config = MemoryConfig::paper();
    let lanes = 512 / 8;
    let add_job = |a: u64, b: u64| {
        let loc = DbcLocation::new(0, 0, 0, 0);
        PimProgram {
            steps: vec![
                Step::Load {
                    addr: RowAddress::new(loc, 4),
                    values: vec![a; lanes],
                    lane: 8,
                },
                Step::Load {
                    addr: RowAddress::new(loc, 5),
                    values: vec![b; lanes],
                    lane: 8,
                },
                Step::Exec(
                    CpimInstr::new(
                        CpimOpcode::Add,
                        RowAddress::new(loc, 4),
                        2,
                        BlockSize::new(8).unwrap(),
                        Some(RowAddress::new(loc, 20)),
                    )
                    .unwrap(),
                ),
                Step::Readout {
                    label: "sum".into(),
                    addr: RowAddress::new(loc, 20),
                    lane: 8,
                },
            ],
        }
    };

    let plan = FaultPlan::uniform(FaultConfig::NONE.with_tr_fault_rate(2e-4), 0x9A9E_55CA).unwrap();
    // Uniform faults hit every bank: health must not quarantine.
    let health = HealthPolicy {
        suspect_after: 10_000,
        quarantine_after: 100_000,
        scrub_on_suspect: false,
        ..HealthPolicy::default()
    };
    let options = RuntimeOptions::default()
        .with_faults(plan)
        .with_health(health)
        .with_protection(ProtectionPolicy::Reexecute { max_retries: 6 });

    let jobs = 128u64;
    let runtime = Runtime::new(config, options).unwrap();
    for i in 0..jobs {
        runtime
            .submit(add_job(3 + i % 100, 7 + i % 55), Placement::Auto)
            .unwrap();
    }
    let report = runtime.finish().unwrap();

    assert_eq!(report.outcomes.len() as u64, jobs);
    for o in &report.outcomes {
        let (a, b) = (3 + o.job_id % 100, 7 + o.job_id % 55);
        assert_eq!(
            o.outputs[0].1,
            vec![(a + b) & 0xFF; lanes],
            "job {}",
            o.job_id
        );
        assert!(o.verified);
    }
    let f = &report.stats.faults;
    assert!(f.faults_detected > 0, "acceleration must trip detection");
    assert_eq!(f.unverified_jobs, 0);
    assert_eq!(f.quarantined_banks, 0);
}
