//! Experiment smoke tests: every table and figure harness must reproduce
//! the paper's qualitative shape (who wins, whether gaps grow, rough
//! magnitudes). The bench binaries print the full numbers; these tests
//! guard the orderings in CI.

use coruscant::baselines::dwm_pim::SerialDwmPim;
use coruscant::core::area::{overhead_1pim, PimDesign};
use coruscant::core::cost_model::MeasuredCosts;
use coruscant::mem::MemoryConfig;
use coruscant::nn::mapping::{model_fps, model_fps_nmr, Scheme};
use coruscant::nn::models::{alexnet, lenet5};
use coruscant::nn::quant::Precision;
use coruscant::reliability::model::OpReliability;
use coruscant::reliability::nmr::NmrReliability;
use coruscant::workloads::bitmap::{cost_coruscant, cost_elp2im};
use coruscant::workloads::memwall::{compare, geomean, MemWallResult};
use coruscant::workloads::polybench::suite;

#[test]
fn table1_shape() {
    // Exact reproduction of the reported overheads.
    for d in PimDesign::ALL {
        let got = overhead_1pim(d, 32, 16);
        assert!((got - d.paper_overhead()).abs() < 0.001, "{d}");
    }
}

#[test]
fn table3_shape() {
    // CORUSCANT beats SPIM (the stronger prior design) on every
    // operation; the multiplication advantage shrinks relative to the
    // five-operand add advantage (paper: 9.4x vs 2.3x).
    let m7 = MeasuredCosts::measure(7).unwrap();
    let spim = SerialDwmPim::spim();
    let add5_speedup = spim.add_k_area_opt(5, 8).cycles as f64 / m7.add_max.cycles as f64;
    let mult_speedup = spim.mult2(8).cycles as f64 / m7.mult.cycles as f64;
    assert!(add5_speedup > 5.0, "5-op add speedup {add5_speedup:.1}");
    assert!(mult_speedup > 1.2, "mult speedup {mult_speedup:.1}");
    assert!(add5_speedup > mult_speedup);
    // Energy: CORUSCANT below SPIM on both.
    assert!(m7.add_max.energy_pj < spim.add_k_area_opt(5, 8).energy_pj);
    assert!(m7.mult.energy_pj < spim.mult2(8).energy_pj);
}

#[test]
fn fig10_fig11_shape() {
    let config = MemoryConfig::paper();
    let results: Vec<MemWallResult> = suite(48).iter().map(|k| compare(k, &config)).collect();
    let vs_dwm = geomean(results.iter().map(MemWallResult::speedup_vs_dwm));
    let vs_dram = geomean(results.iter().map(MemWallResult::speedup_vs_dram));
    let energy = geomean(results.iter().map(MemWallResult::energy_reduction));
    // Paper: 2.07x / 2.20x / >25x. Shape: PIM wins everywhere, DRAM is
    // the slower CPU memory, energy reduction is an order of magnitude.
    assert!(vs_dwm > 1.3 && vs_dwm < 3.5, "vs DWM {vs_dwm:.2}");
    assert!(vs_dram > vs_dwm, "vs DRAM {vs_dram:.2}");
    assert!(energy > 8.0, "energy reduction {energy:.1}");
}

#[test]
fn fig12_shape() {
    let config = MemoryConfig::paper();
    let mut prev = 0.0;
    for w in 2..=4 {
        let cor = cost_coruscant(16_000_000, w, &config).cycles as f64;
        let elp = cost_elp2im(16_000_000, w, 512).cycles as f64;
        let ratio = elp / cor;
        assert!(ratio > prev, "speedup must grow with criteria");
        assert!(ratio > 1.2 && ratio < 4.5, "w={w}: {ratio:.2}");
        prev = ratio;
    }
}

#[test]
fn table4_shape() {
    for net in [alexnet(), lenet5()] {
        // Full precision: SPIM < C3 < C5 < C7.
        let order: Vec<f64> = [
            Scheme::Spim,
            Scheme::Coruscant(3),
            Scheme::Coruscant(5),
            Scheme::Coruscant(7),
        ]
        .iter()
        .map(|&s| model_fps(s, &net, Precision::Full))
        .collect();
        assert!(
            order.windows(2).all(|w| w[0] < w[1]),
            "{}: {order:?}",
            net.name
        );
        // TWN: Ambit < ELP2IM < C3 < C5 < C7.
        let order: Vec<f64> = [
            Scheme::Ambit,
            Scheme::Elp2im,
            Scheme::Coruscant(3),
            Scheme::Coruscant(5),
            Scheme::Coruscant(7),
        ]
        .iter()
        .map(|&s| model_fps(s, &net, Precision::Twn))
        .collect();
        assert!(
            order.windows(2).all(|w| w[0] < w[1]),
            "{}: {order:?}",
            net.name
        );
    }
}

#[test]
fn table5_shape() {
    // Exact agreement on the per-op rates; NMR drops orders of magnitude
    // per degree.
    let r7 = OpReliability::at(7);
    assert!((r7.mult8 - 7.6e-5).abs() < 1e-6);
    let n3 = NmrReliability::at(3, 7);
    let n5 = NmrReliability::at(5, 7);
    assert!(n5.mult8 < n3.mult8 * 1e-3);
}

#[test]
fn table6_shape() {
    // CORUSCANT-7 with TMR still beats ELP2IM without fault tolerance on
    // ternary AlexNet (the paper's ISO-area argument).
    let net = alexnet();
    let tmr = model_fps_nmr(Scheme::Coruscant(7), &net, Precision::Twn, 3);
    let elp = model_fps(Scheme::Elp2im, &net, Precision::Twn);
    assert!(tmr > elp, "TMR {tmr:.0} vs ELP2IM {elp:.0}");
    // Throughput cost is monotone in N.
    let n5 = model_fps_nmr(Scheme::Coruscant(7), &net, Precision::Twn, 5);
    let n7 = model_fps_nmr(Scheme::Coruscant(7), &net, Precision::Twn, 7);
    assert!(tmr > n5 && n5 > n7);
}

#[test]
fn sensitivity_shape() {
    // Larger TRD: fewer multiplication cycles, more area, more FPS.
    let m3 = MeasuredCosts::measure(3).unwrap();
    let m7 = MeasuredCosts::measure(7).unwrap();
    assert!(m7.mult.cycles < m3.mult.cycles);
    assert!(overhead_1pim(PimDesign::Add2, 32, 16) < overhead_1pim(PimDesign::Add5, 32, 16));
    let net = alexnet();
    assert!(
        model_fps(Scheme::Coruscant(7), &net, Precision::Twn)
            > model_fps(Scheme::Coruscant(3), &net, Precision::Twn)
    );
}
