//! Cross-crate property tests for the arithmetic invariants (DESIGN.md §5).

use coruscant::core::add::MultiOperandAdder;
use coruscant::core::bulk::{BulkExecutor, BulkOp};
use coruscant::core::maxpool::MaxExecutor;
use coruscant::core::mult::{ConstantPlan, Multiplier};
use coruscant::core::nmr::NmrVoter;
use coruscant::mem::{Dbc, MemoryConfig, Row};
use coruscant::racetrack::CostMeter;
use proptest::prelude::*;

fn arb_trd() -> impl Strategy<Value = usize> {
    prop_oneof![Just(3usize), Just(5usize), Just(7usize)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 4: multi-operand addition equals the scalar sum, lane by
    /// lane, modulo 2^blocksize, at every TRD.
    #[test]
    fn addition_matches_scalar_sum(
        trd in arb_trd(),
        values in proptest::collection::vec(
            proptest::collection::vec(0u64..256, 8), 2..=5),
    ) {
        let config = MemoryConfig::tiny().with_trd(trd);
        let adder = MultiOperandAdder::new(&config);
        let k = values.len().min(adder.max_operands());
        prop_assume!(k >= 2);
        let operands: Vec<Row> = values[..k].iter().map(|v| Row::pack(64, 8, v)).collect();
        let mut dbc = Dbc::pim_enabled(&config);
        let mut meter = CostMeter::new();
        let got = adder.add_rows(&mut dbc, &operands, 8, &mut meter).unwrap();
        prop_assert_eq!(got, MultiOperandAdder::reference(&operands, 8));
    }

    /// Invariant 5: the carry-save multiplication equals the scalar
    /// product for all 8-bit operand pairs, at every TRD.
    #[test]
    fn multiplication_matches_scalar_product(
        trd in arb_trd(),
        a in proptest::collection::vec(0u64..256, 4),
        b in proptest::collection::vec(0u64..256, 4),
    ) {
        let config = MemoryConfig::tiny().with_trd(trd);
        let mult = Multiplier::new(&config);
        let mut dbc = Dbc::pim_enabled(&config);
        let mut meter = CostMeter::new();
        let got = mult.multiply_values(&mut dbc, &a, &b, 8, &mut meter).unwrap();
        prop_assert_eq!(got, Multiplier::reference(&a, &b));
    }

    /// Invariant 7: bulk-bitwise results equal the std bitwise fold.
    #[test]
    fn bulk_ops_match_folds(
        op_idx in 0usize..6,
        words in proptest::collection::vec(any::<u64>(), 2..=7),
    ) {
        let ops = [BulkOp::And, BulkOp::Nand, BulkOp::Or, BulkOp::Nor, BulkOp::Xor, BulkOp::Xnor];
        let op = ops[op_idx];
        let config = MemoryConfig::tiny();
        let operands: Vec<Row> = words.iter().map(|&w| Row::from_u64_words(64, &[w])).collect();
        let exec = BulkExecutor::new(&config);
        let mut dbc = Dbc::pim_enabled(&config);
        let mut meter = CostMeter::new();
        let got = exec.execute(&mut dbc, op, &operands, &mut meter).unwrap();
        prop_assert_eq!(got, BulkExecutor::reference(op, &operands));
    }

    /// Invariant 8: the TW max function returns the lane-wise maximum for
    /// any candidates, positions and ties included.
    #[test]
    fn max_matches_reference(
        candidates in proptest::collection::vec(
            proptest::collection::vec(0u64..256, 8), 1..=7),
    ) {
        let config = MemoryConfig::tiny();
        let rows: Vec<Row> = candidates.iter().map(|v| Row::pack(64, 8, v)).collect();
        let max = MaxExecutor::new(&config);
        let mut dbc = Dbc::pim_enabled(&config);
        let mut meter = CostMeter::new();
        let got = max.max_rows(&mut dbc, &rows, 8, &mut meter).unwrap();
        prop_assert_eq!(got, MaxExecutor::reference(&rows, 8));
    }

    /// Invariant 9: majority voting corrects any single faulty replica
    /// under TMR, bitwise, whatever the fault pattern.
    #[test]
    fn tmr_corrects_one_faulty_replica(
        good_word in any::<u64>(),
        flips in proptest::collection::vec(0usize..64, 0..10),
        faulty_index in 0usize..3,
    ) {
        let config = MemoryConfig::tiny();
        let good = Row::from_u64_words(64, &[good_word]);
        let mut faulty = good.clone();
        for f in flips {
            faulty.set(f, !faulty.get(f).unwrap());
        }
        let mut replicas = vec![good.clone(), good.clone(), good.clone()];
        replicas[faulty_index] = faulty;
        let voter = NmrVoter::new(&config);
        let mut dbc = Dbc::pim_enabled(&config);
        let mut meter = CostMeter::new();
        let voted = voter.vote_rows(&mut dbc, &replicas, &mut meter).unwrap();
        prop_assert_eq!(voted, good);
    }

    /// Invariant 6: the CSD constant-multiplication plan reproduces the
    /// product for arbitrary constants and inputs.
    #[test]
    fn constant_plan_reproduces_product(c in 0u64..1_000_000, x in 0u64..65_536) {
        let plan = ConstantPlan::compile(c, 5).unwrap();
        prop_assert_eq!(plan.evaluate(x, 64), c.wrapping_mul(x));
        // And the schedule respects the TRD-7 grouping bound.
        let t = plan.nonzero_terms();
        if t >= 2 {
            prop_assert!(plan.addition_steps() <= t.div_ceil(2));
        }
    }

    /// Invariant 10: repeated runs of the same operation charge identical
    /// cost (determinism of the cost accounting).
    #[test]
    fn costs_are_deterministic(values in proptest::collection::vec(0u64..256, 8)) {
        let config = MemoryConfig::tiny();
        let adder = MultiOperandAdder::new(&config);
        let operands = vec![Row::pack(64, 8, &values), Row::pack(64, 8, &values)];
        let run = || {
            let mut dbc = Dbc::pim_enabled(&config);
            let mut meter = CostMeter::new();
            adder.add_rows(&mut dbc, &operands, 8, &mut meter).unwrap();
            meter.total()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert!((a.energy_pj - b.energy_pj).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Subtraction equals two's-complement lane arithmetic at every TRD.
    #[test]
    fn subtraction_matches_wrapping_sub(
        trd in arb_trd(),
        a in proptest::collection::vec(0u64..256, 8),
        b in proptest::collection::vec(0u64..256, 8),
    ) {
        use coruscant::core::arith::ArithmeticUnit;
        let config = MemoryConfig::tiny().with_trd(trd);
        let unit = ArithmeticUnit::new(&config);
        let ra = Row::pack(64, 8, &a);
        let rb = Row::pack(64, 8, &b);
        let mut dbc = Dbc::pim_enabled(&config);
        let got = unit.subtract(&mut dbc, &ra, &rb, 8, &mut CostMeter::new()).unwrap();
        prop_assert_eq!(got, ArithmeticUnit::reference_sub(&ra, &rb, 8));
    }

    /// Comparison flags match `>=` for all lane pairs.
    #[test]
    fn compare_ge_matches_ordering(
        a in proptest::collection::vec(0u64..256, 4),
        b in proptest::collection::vec(0u64..256, 4),
    ) {
        use coruscant::core::arith::ArithmeticUnit;
        let config = MemoryConfig::tiny();
        let unit = ArithmeticUnit::new(&config);
        let ra = Row::pack(64, 8, &a);
        let rb = Row::pack(64, 8, &b);
        let mut dbc = Dbc::pim_enabled(&config);
        let got = unit.compare_ge(&mut dbc, &ra, &rb, 8, &mut CostMeter::new()).unwrap();
        let flags = got.unpack(16);
        for l in 0..4 {
            prop_assert_eq!(flags[l], u64::from(a[l] >= b[l]), "lane {}", l);
        }
    }

    /// Large-cardinality accumulation equals the scalar sum for any row
    /// count and TRD.
    #[test]
    fn sum_rows_matches_scalar(
        trd in arb_trd(),
        values in proptest::collection::vec(0u64..1000, 1..24),
    ) {
        use coruscant::core::arith::ArithmeticUnit;
        let config = MemoryConfig::tiny().with_trd(trd);
        let unit = ArithmeticUnit::new(&config);
        let rows: Vec<Row> = values.iter().map(|&v| Row::pack(64, 16, &[v, v * 2, 0, 1])).collect();
        let mut dbc = Dbc::pim_enabled(&config);
        let got = unit.sum_rows(&mut dbc, &rows, 16, &mut CostMeter::new()).unwrap();
        let s: u64 = values.iter().sum();
        prop_assert_eq!(got.unpack(16)[0], s & 0xFFFF);
        prop_assert_eq!(got.unpack(16)[1], (2 * s) & 0xFFFF);
        prop_assert_eq!(got.unpack(16)[3], values.len() as u64);
    }

    /// The device constant multiplier reproduces `c * x` for arbitrary
    /// constants.
    #[test]
    fn constant_multiplier_on_device(c in 0u64..4096, xs in proptest::collection::vec(0u64..256, 4)) {
        use coruscant::core::mult::{ConstantMultiplier, ConstantPlan};
        let config = MemoryConfig::tiny();
        let plan = ConstantPlan::compile(c, config.max_add_operands()).unwrap();
        let exec = ConstantMultiplier::new(&config);
        let a = Row::pack(64, 16, &xs);
        let mut dbc = Dbc::pim_enabled(&config);
        let got = exec.execute(&mut dbc, &plan, &a, 16, &mut CostMeter::new()).unwrap();
        for (l, &x) in xs.iter().enumerate() {
            prop_assert_eq!(got.unpack(16)[l], c.wrapping_mul(x) & 0xFFFF, "lane {}", l);
        }
    }

    /// Bit-plane transposition round-trips through the device.
    #[test]
    fn transpose_roundtrip_on_device(values in proptest::collection::vec(0u64..256, 8)) {
        use coruscant::mem::transpose::{transpose_row, untranspose_rows};
        let config = MemoryConfig::tiny();
        let mut dbc = Dbc::pim_enabled(&config);
        let packed = Row::pack(64, 8, &values);
        let mut m = CostMeter::new();
        dbc.write_row(0, &packed, &mut m).unwrap();
        transpose_row(&mut dbc, 0, 10, 8, &mut m).unwrap();
        let back = untranspose_rows(&mut dbc, 10, 20, 8, &mut m).unwrap();
        prop_assert_eq!(back.unpack(8), values);
    }
}

/// 16-bit multiplication exercises two rounds of carry-save reduction.
#[test]
fn sixteen_bit_multiplication() {
    let mut config = MemoryConfig::tiny();
    config.rows_per_dbc = 32;
    let mult = Multiplier::new(&config);
    for (a, b) in [(65535u64, 65535u64), (12345, 54321), (256, 255), (1, 65535)] {
        let mut dbc = Dbc::pim_enabled(&config);
        let mut meter = CostMeter::new();
        let got = mult
            .multiply_values(&mut dbc, &[a, 7], &[b, 9], 16, &mut meter)
            .unwrap();
        assert_eq!(got, vec![a * b, 63], "{a} x {b}");
    }
}

/// Chained PIM computation: (a + b) * c entirely in memory.
#[test]
fn chained_add_then_multiply() {
    let config = MemoryConfig::tiny();
    let adder = MultiOperandAdder::new(&config);
    let mult = Multiplier::new(&config);
    let a = [13u64, 250, 0, 77];
    let b = [29u64, 4, 255, 100];
    let c = [3u64, 2, 1, 0];

    let mut dbc = Dbc::pim_enabled(&config);
    let mut meter = CostMeter::new();
    // Sum in 16-bit lanes so the product operands stay 8-bit-safe.
    let ra = Row::pack(64, 16, &a);
    let rb = Row::pack(64, 16, &b);
    let sum = adder.add_rows(&mut dbc, &[ra, rb], 16, &mut meter).unwrap();
    let sums = sum.unpack(16);
    // Feed into multiplication where the sums fit 8 bits.
    let m_in: Vec<u64> = sums.iter().map(|&s| s.min(255)).collect();
    let got = mult
        .multiply_values(&mut dbc, &m_in, &c, 8, &mut meter)
        .unwrap();
    for i in 0..4 {
        assert_eq!(got[i], m_in[i] * c[i], "lane {i}");
    }
    assert!(meter.total().cycles > 0);
}
