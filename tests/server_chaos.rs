//! Server-level chaos soak: the serving frontend over a runtime with
//! seeded software-fault injection. The contract under test:
//!
//! * every accepted job's handle resolves exactly once — to `Ok`, a
//!   typed abandonment (`Hung`/`Crashed`), or a cancellation — and
//!   [`ServerStats::balanced`] holds with zero `lost`;
//! * same-seed campaigns resolve to the same fate multiset;
//! * `shutdown()` returns within the drain deadline even when a worker
//!   is permanently stalled;
//! * pipeline dependents of a crashed predecessor cancel cleanly.

use coruscant::core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant::core::program::{PimProgram, Step};
use coruscant::mem::{DbcLocation, MemoryConfig, RowAddress};
use coruscant::runtime::{
    install_quiet_hook, ChainJob, ChaosPlan, Placement, ProgramSource, RuntimeOptions,
    SuperviseOptions, WatchdogOptions,
};
use coruscant::server::{Priority, ServeError, Server, ServerOptions};
use std::time::{Duration, Instant};

fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

fn add_job(a: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(loc, 4),
                values: vec![a; 8],
                lane: 8,
            },
            Step::Load {
                addr: RowAddress::new(loc, 5),
                values: vec![5; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(loc, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(loc, 20),
                lane: 8,
            },
        ],
    }
}

fn chaos_server(shards: usize, plan: ChaosPlan) -> Server {
    install_quiet_hook();
    let runtime = RuntimeOptions::default()
        .with_shards(shards)
        .with_chaos(plan)
        .with_supervise(SuperviseOptions {
            backoff_base_ms: 1,
            backoff_max_ms: 8,
            max_job_retries: 4,
            drain_deadline_ms: 10_000,
            ..SuperviseOptions::default()
        })
        .with_watchdog(WatchdogOptions {
            enabled: true,
            base_ms: 200,
            per_step_us: 50,
            slack_pct: 400,
            poison_strikes: u32::MAX,
        });
    Server::start(
        eight_bank_config(),
        ServerOptions {
            runtime,
            ..ServerOptions::default()
        },
    )
    .expect("server starts")
}

/// A completion's fate, normalized for cross-run comparison.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Fate {
    Done(Vec<(String, Vec<u64>)>),
    Hung,
    Crashed,
    Other(String),
}

fn run_soak(shards: usize, plan: ChaosPlan, jobs: u64) -> Vec<Fate> {
    let server = chaos_server(shards, plan);
    let client = server.client();
    let handles: Vec<_> = (0..jobs)
        .map(|tag| client.submit(add_job(tag)).expect("accepted"))
        .collect();
    let mut fates: Vec<Fate> = handles
        .into_iter()
        .map(|h| match h.wait() {
            Ok(done) => Fate::Done(done.outputs),
            Err(ServeError::Hung) => Fate::Hung,
            Err(ServeError::Crashed) => Fate::Crashed,
            Err(e) => Fate::Other(e.to_string()),
        })
        .collect();
    let stats = server.shutdown().expect("drain succeeds");
    assert!(stats.balanced(), "unbalanced stats: {stats:?}");
    assert_eq!(stats.lost, 0, "no accepted job may be lost: {stats:?}");
    assert_eq!(stats.accepted, jobs, "chaos never rejects these campaigns");
    assert_eq!(
        stats.completed + stats.hung + stats.crashed + stats.failed,
        jobs,
        "every accepted job resolved exactly once: {stats:?}"
    );
    fates.sort();
    fates
}

#[test]
fn panic_soak_resolves_every_handle_across_shard_counts() {
    let plan = ChaosPlan::panics(0xD15EA5E, 120);
    for shards in [1usize, 2, 4, 8] {
        let fates = run_soak(shards, plan, 40);
        assert!(
            fates.iter().any(|f| matches!(f, Fate::Done(_))),
            "some jobs survive (shards={shards})"
        );
        assert!(
            !fates.iter().any(|f| matches!(f, Fate::Other(_))),
            "panic soak resolves only Ok/Crashed/Hung (shards={shards}): {fates:?}"
        );
    }
}

#[test]
fn mixed_soak_is_replayable_per_seed() {
    let plan = ChaosPlan::mixed(0xFEED, 80, 1_500, 150);
    let a = run_soak(4, plan, 36);
    let b = run_soak(4, plan, 36);
    assert_eq!(a, b, "same seed, same fate multiset");
}

#[test]
fn shutdown_bounded_despite_permanent_stall() {
    // Watchdog off: nothing detaches the stalled workers, so only the
    // drain deadline bounds shutdown.
    install_quiet_hook();
    let runtime = RuntimeOptions::default()
        .with_shards(2)
        .with_chaos(ChaosPlan::stalls(3, 1000, 60_000))
        .with_supervise(SuperviseOptions {
            drain_deadline_ms: 1_500,
            ..SuperviseOptions::default()
        });
    let server = Server::start(
        eight_bank_config(),
        ServerOptions {
            runtime,
            ..ServerOptions::default()
        },
    )
    .expect("server starts");
    let client = server.client();
    let handles: Vec<_> = (0..4)
        .map(|tag| client.submit(add_job(tag)).expect("accepted"))
        .collect();
    let begin = Instant::now();
    let stats = server.shutdown().expect("bounded drain");
    assert!(
        begin.elapsed() < Duration::from_secs(10),
        "shutdown took {:?}, deadline was 1.5s",
        begin.elapsed()
    );
    assert!(stats.balanced(), "{stats:?}");
    // The handles resolved too — nobody blocks on a dead session.
    for h in handles {
        assert!(h.wait().is_err(), "stalled jobs resolve with an error");
    }
}

#[test]
fn pipeline_dependents_of_crashed_predecessor_cancel_cleanly() {
    // Every attempt panics: the chain head exhausts its crash retries
    // and its dependents must resolve (cancelled), not hang.
    let server = chaos_server(2, ChaosPlan::panics(77, 1000));
    let client = server.client();
    let chain = vec![
        ChainJob {
            source: ProgramSource::Ready(add_job(1)),
            placement: Placement::Unit(0),
            after: vec![],
        },
        ChainJob {
            source: ProgramSource::Ready(add_job(2)),
            placement: Placement::Unit(1),
            after: vec![0],
        },
        ChainJob {
            source: ProgramSource::Ready(add_job(3)),
            placement: Placement::Unit(2),
            after: vec![1],
        },
    ];
    let handles = client
        .submit_pipeline(chain, Priority::Normal)
        .expect("chain accepted");
    let results: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    assert!(
        matches!(results[0], Err(ServeError::Crashed)),
        "head exhausted its crash retries: {:?}",
        results[0]
    );
    for (i, r) in results.iter().enumerate().skip(1) {
        assert!(r.is_err(), "dependent {i} resolved Ok under total panics");
    }
    let stats = server.shutdown().expect("drain succeeds");
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.lost, 0);
}
