//! Fault-injection campaigns spanning the full stack: shift faults
//! detected and repaired by position codes, TR faults corrected by
//! N-modular redundancy, and the end-to-end arithmetic staying correct
//! once the protections are applied.

use coruscant::core::add::MultiOperandAdder;
use coruscant::core::nmr::NmrVoter;
use coruscant::mem::{Dbc, MemoryConfig, Row};
use coruscant::racetrack::{
    Alignment, CostMeter, FaultConfig, FaultInjector, Nanowire, NanowireSpec, PositionCode,
};

/// A wire hit by repeated shift faults recovers its data through periodic
/// position-code checks, mirroring the check-after-access discipline the
/// cited fault-tolerance schemes use.
#[test]
fn shift_fault_storm_recovered_by_position_codes() {
    let cfg = FaultConfig::NONE.with_shift_fault_rate(0.2); // heavy acceleration
    let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7))
        .with_fault_injector(FaultInjector::new(cfg, 99));
    let code = PositionCode::plan(&wire, 6).unwrap();
    code.install(&mut wire).unwrap();
    for r in 0..32 {
        wire.set_row(r, r % 5 == 0).unwrap();
    }

    let mut meter = CostMeter::new();
    let mut repairs = 0;
    let mut out_of_range = 0;
    for round in 0..200 {
        // A nominal round trip that faults may corrupt.
        let delta = if round % 2 == 0 { 2 } else { -2 };
        let _ = wire.shift(delta, &mut meter);
        let _ = wire.shift(-delta, &mut meter);
        // Periodic check-and-repair.
        match code.check_and_repair(&mut wire, &mut meter).unwrap() {
            Alignment::Aligned => {}
            Alignment::OutOfRange => out_of_range += 1,
            _ => repairs += 1,
        }
    }
    assert!(repairs > 0, "the storm must have caused repairable drift");
    assert_eq!(out_of_range, 0, "per-round checking keeps drift in range");
    // Data is intact after the storm.
    for r in 0..32 {
        assert_eq!(wire.row(r), Some(r % 5 == 0), "row {r}");
    }
}

/// TMR-protected five-operand additions stay correct under accelerated TR
/// faults that frequently corrupt unprotected runs.
#[test]
fn tmr_protected_addition_campaign() {
    let config = MemoryConfig::tiny();
    let adder = MultiOperandAdder::new(&config);
    let voter = NmrVoter::new(&config);
    let fault = FaultConfig::NONE.with_tr_fault_rate(3e-3);

    let operands: Vec<Row> = (1..=5u64)
        .map(|k| Row::pack(64, 8, &[k * 11 % 256, 250, 3, k, 99, 0, 1, 200]))
        .collect();
    let golden = MultiOperandAdder::reference(&operands, 8);

    let trials = 150;
    let mut raw_errors = 0;
    let mut voted_errors = 0;
    for t in 0..trials {
        let mut dbc = Dbc::pim_enabled(&config).with_faults(fault, 7_000 + t);
        let mut m = CostMeter::new();
        let raw = adder.add_rows(&mut dbc, &operands, 8, &mut m).unwrap();
        if raw != golden {
            raw_errors += 1;
        }

        let mut replicas = Vec::with_capacity(3);
        for r in 0..3u64 {
            let mut dbc = Dbc::pim_enabled(&config).with_faults(fault, 50_000 + t * 3 + r);
            let mut m = CostMeter::new();
            replicas.push(adder.add_rows(&mut dbc, &operands, 8, &mut m).unwrap());
        }
        let mut vote_dbc = Dbc::pim_enabled(&config);
        let mut m = CostMeter::new();
        let voted = voter.vote_rows(&mut vote_dbc, &replicas, &mut m).unwrap();
        if voted != golden {
            voted_errors += 1;
        }
    }
    assert!(
        raw_errors > trials / 20,
        "acceleration must corrupt unprotected runs ({raw_errors}/{trials})"
    );
    // Voting only fails when two replicas err in the SAME bit position;
    // since faults land on random bits, suppression is strong even at
    // this heavy acceleration (where per-replica error rates are ~0.3).
    assert!(
        voted_errors * 5 < raw_errors.max(5),
        "TMR must suppress errors ({voted_errors} vs {raw_errors})"
    );
}

/// The empirical unprotected error rate tracks the analytic model within
/// a loose band when scaled to the accelerated fault probability.
#[test]
fn empirical_rate_tracks_analytic_model() {
    let config = MemoryConfig::tiny();
    let adder = MultiOperandAdder::new(&config);
    let p = 2e-3;
    let fault = FaultConfig::NONE.with_tr_fault_rate(p);
    let operands: Vec<Row> = (1..=5u64)
        .map(|k| Row::pack(64, 8, &[k * 37 % 256; 8]))
        .collect();
    let golden = MultiOperandAdder::reference(&operands, 8);

    let trials = 400;
    let mut errors = 0;
    for t in 0..trials {
        let mut dbc = Dbc::pim_enabled(&config).with_faults(fault, 123_000 + t);
        let mut m = CostMeter::new();
        if adder.add_rows(&mut dbc, &operands, 8, &mut m).unwrap() != golden {
            errors += 1;
        }
    }
    let empirical = errors as f64 / trials as f64;
    // 8 lanes x 8 TRs per add = 64 fault-prone senses; a single fault can
    // additionally corrupt following bits through the C/C' chain, so the
    // empirical rate sits somewhat above the naive single-TR union
    // 1 - (1-p)^64 but within a small factor of it.
    let naive = 1.0 - (1.0 - p).powi(64);
    assert!(
        empirical <= naive * 2.5,
        "empirical {empirical:.3} vs naive union {naive:.3}"
    );
    assert!(
        empirical >= naive * 0.3,
        "empirical {empirical:.3} suspiciously low vs {naive:.3}"
    );
}

use coruscant::core::bulk::{BulkExecutor, BulkOp};
use coruscant::reliability::nmr::p_word_fails;
use proptest::prelude::*;

/// Empirical NMR word-error rate of one trial batch: vote `n` faulty XOR
/// replicas per trial and count trials whose voted 64-bit word is wrong.
///
/// The replica computation is a row-wide XOR of bit-complementary
/// operands, so every wire's transverse read holds exactly one `1`: an
/// injected ±1 level error always flips that wire's output bit and never
/// clamps at a window boundary. The per-bit replica error rate is
/// therefore *exactly* the injector's per-draw rate, which is what makes
/// the analytic comparison tight.
fn empirical_nmr_word_error(n: usize, q: f64, trials: u64, seed: u64) -> f64 {
    let config = MemoryConfig::tiny();
    let exec = BulkExecutor::new(&config);
    let voter = NmrVoter::new(&config);
    let fault = FaultConfig::NONE.with_tr_fault_rate(q);
    let operands = [Row::pack(64, 8, &[0xAA; 8]), Row::pack(64, 8, &[0x55; 8])];
    let golden = Row::pack(64, 8, &[0xFF; 8]);

    let mut failures = 0u64;
    for t in 0..trials {
        let mut replicas = Vec::with_capacity(n);
        for r in 0..n as u64 {
            let mut dbc = Dbc::pim_enabled(&config).with_faults(fault, seed + t * 31 + r * 7_919);
            let mut m = CostMeter::new();
            replicas.push(
                exec.execute(&mut dbc, BulkOp::Xor, &operands, &mut m)
                    .unwrap(),
            );
        }
        let mut vote_dbc = Dbc::pim_enabled(&config);
        let mut m = CostMeter::new();
        let voted = voter.vote_rows(&mut vote_dbc, &replicas, &mut m).unwrap();
        if voted != golden {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The hardware NMR voter's empirical word-error rate under
    /// accelerated TR faults agrees with the analytic
    /// `reliability::nmr::p_word_fails` within Monte-Carlo tolerance,
    /// for every supported redundancy degree.
    #[test]
    fn nmr_word_error_matches_analytic(seed in 1_000u64..1_000_000) {
        // Per-degree rates chosen so the analytic word-error probability
        // is large enough to estimate with a few hundred trials.
        for (n, q) in [(3usize, 0.05f64), (5, 0.08)] {
            let analytic = p_word_fails(n as u64, q, 64);
            prop_assume!(analytic > 0.05);
            let empirical = empirical_nmr_word_error(n, q, 250, seed);
            let rel = (empirical - analytic).abs() / analytic;
            prop_assert!(
                rel < 0.45,
                "n={} q={}: empirical {:.3} vs analytic {:.3} (rel {:.2})",
                n, q, empirical, analytic, rel
            );
        }
    }
}
