//! Serving PIM jobs through the execution runtime: the bitmap query
//! decomposed into bank-parallel chunk jobs, dispatched in the paper's
//! circular-bank order (§V-C) versus forced onto a single bank.
//!
//! Run with: `cargo run --example runtime_serve`

use coruscant::mem::MemoryConfig;
use coruscant::runtime::{DispatchMode, RuntimeOptions};
use coruscant::workloads::bitmap::BitmapDataset;
use coruscant::workloads::serve::serve_bitmap_query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::tiny();
    let users = 50_000;
    let ds = BitmapDataset::generate(users, 4, 1);
    println!("Dataset: {users} users, 4 weekly activity bitmaps");
    println!(
        "Geometry: {} banks, {} PIM units\n",
        config.banks,
        config.banks * config.subarrays_per_bank * config.tiles_per_subarray
    );

    let trace = std::env::temp_dir().join("runtime_serve_trace.jsonl");
    for (mode, label) in [
        (DispatchMode::Circular, "circular (§V-C)"),
        (DispatchMode::SingleBank, "single-bank"),
    ] {
        let mut options = RuntimeOptions::default().with_dispatch(mode);
        if mode == DispatchMode::Circular {
            options.trace_path = Some(trace.clone());
        }
        let (count, report) = serve_bitmap_query(&ds, 3, &config, options)?;
        assert_eq!(count, ds.reference_count(3), "PIM answer must be exact");
        println!("{label}:");
        println!(
            "  {} jobs, {} matching users, makespan {} cycles, {:.2} jobs/us",
            report.stats.jobs, count, report.stats.makespan_cycles, report.stats.jobs_per_us
        );
        for bank in &report.stats.per_bank {
            println!(
                "  bank {}: {:>4} jobs, {:>7} busy cycles, {:>7} wait cycles",
                bank.bank, bank.jobs, bank.busy_cycles, bank.wait_cycles
            );
        }
    }

    let lines = std::fs::read_to_string(&trace)?.lines().count();
    println!("\nEvent trace: {lines} JSONL events at {}", trace.display());
    std::fs::remove_file(&trace).ok();
    Ok(())
}
