//! CNN inference served end-to-end through the full stack: model
//! weights pinned resident once per layer, per-request layer chains
//! gated on their predecessors, logits decoded on the host — and the
//! whole thing bit-identical to the standalone `nn::pim_exec` engine.
//!
//! Run with: `cargo run --example nn_serving`

use coruscant::mem::MemoryConfig;
use coruscant::nn::infer::{proxy_lenet5, run_pim, synth_image, synth_weights};
use coruscant::nn::quant::Precision;
use coruscant::pipeline::serve::ServingSession;
use coruscant::pipeline::Pipeline;
use coruscant::server::{Priority, Server, ServerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sixteen tiles: each layer of the network gets its own hosting
    // unit, with storage DBCs beside the compute DBC for the weights.
    let config = MemoryConfig {
        banks: 4,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    };

    let net = proxy_lenet5();
    let precision = Precision::Full;
    let weights = synth_weights(&net, precision, 3);
    let images: Vec<_> = (0..4).map(|s| synth_image(&net, 7 + s)).collect();

    // --- 1. Build the pipeline and pin residencies. -------------------
    let pipeline = Pipeline::new(&config, net.clone(), weights.clone(), 0)?;
    println!(
        "{} @ {precision:?}: {} layers, {} resident weight rows",
        net.name,
        net.layers.len(),
        pipeline.resident_rows()
    );
    for li in 0..net.layers.len() {
        println!("  layer {li} pinned on unit {}", pipeline.unit_for(li));
    }

    let server = Server::start(config.clone(), ServerOptions::default())?;
    let session = ServingSession::pin(server.client(), pipeline)?;

    // --- 2. Per-request handles: one dependency-gated chain each. -----
    let handles = session.submit_batch(&images, Priority::Normal)?;
    println!("\nSubmitted {} inference requests:", handles.len());
    for (i, h) in handles.into_iter().enumerate() {
        let logits = h.wait()?;
        let expect = run_pim(&config, &net, &weights, &images[i])?;
        assert_eq!(logits, expect, "served logits must equal nn::pim_exec");
        println!("  image {i}: logits {logits:?} (bit-identical to standalone)");
    }

    // --- 3. Streaming: logits arrive in input order. ------------------
    let mut stream = session.stream_batch(&images, Priority::Normal)?;
    let mut got = 0;
    while let Some(next) = stream.next() {
        next?;
        got += 1;
    }
    println!("\nStreamed batch: {got} results in input order");

    let stats = server.shutdown()?;
    println!(
        "Accounting: {} submitted = {} completed (balanced: {})",
        stats.submitted,
        stats.completed,
        stats.balanced()
    );
    Ok(())
}
