//! QoS in three acts: seeded open-loop arrival schedules, a mini
//! offered-rate sweep against the serving frontend, and the two-tenant
//! weighted-fair quota demo (a compliant deadline-carrying client next
//! to a misbehaving one offered at 5× its quota).
//!
//! Run with: `cargo run --release --example qos`

use coruscant::mem::MemoryConfig;
use coruscant::qos::{ArrivalGen, ArrivalSpec, ClientConfig, QosOptions, RateQuota};
use coruscant::runtime::{IssuePolicy, RuntimeOptions};
use coruscant::server::{AdmissionOptions, Rejected, Server, ServerOptions, SubmitOptions};
use coruscant::workloads::bitmap::BitmapDataset;
use coruscant::workloads::serve::{compile_bitmap_query_with, QueryPlan};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::tiny();
    let ds = BitmapDataset::generate(4_000, 3, 7);
    let programs: Arc<[_]> = compile_bitmap_query_with(&ds, 3, &config, QueryPlan::Fused)?.into();

    // --- 1. Open-loop arrival schedules are seeded and replayable. ----
    let spec = ArrivalSpec::Poisson {
        rate_per_sec: 200.0,
    };
    let horizon = Duration::from_millis(500);
    let schedule = ArrivalGen::new(spec, 42).schedule_for(horizon);
    let replay = ArrivalGen::new(spec, 42).schedule_for(horizon);
    assert_eq!(schedule, replay, "same seed, same schedule");
    println!(
        "Poisson @ {:.0}/s over {:?}: {} arrivals (expected ≈ {:.0}); replayable from seed",
        spec.offered_rate(),
        horizon,
        schedule.len(),
        spec.offered_rate() * horizon.as_secs_f64(),
    );
    let bursty = ArrivalSpec::Bursty {
        base_rate_per_sec: 50.0,
        burst_rate_per_sec: 800.0,
        mean_burst_ms: 20.0,
        mean_gap_ms: 80.0,
    };
    println!(
        "Bursty (MMPP-2) long-run rate {:.0}/s; rescaled to 100/s keeps the shape: {:.0}/s\n",
        bursty.offered_rate(),
        bursty.at_rate(100.0).offered_rate(),
    );

    // --- 2. Mini open-loop sweep: offered vs achieved throughput. -----
    // The generator submits on its wall-clock schedule no matter how the
    // server is doing; with admission on, over-saturation sheds instead
    // of silently slowing the clock (no coordinated omission).
    println!("Open-loop sweep ({:?} per point):", horizon);
    println!(
        "{:>10} {:>10} {:>9} {:>7}",
        "offered/s", "achieved/s", "p99 µs", "shed"
    );
    for rate in [100.0, 400.0, 1600.0] {
        let server = Server::start(
            config.clone(),
            ServerOptions {
                admission: AdmissionOptions::enabled(),
                ..ServerOptions::default()
            },
        )?;
        let client = server.client();
        // A concurrent collector resolves handles as they complete, so
        // latency is measured from each job's *scheduled* arrival to its
        // actual completion — not to when a post-hoc drain gets to it.
        let (tx, rx) = std::sync::mpsc::channel::<(Instant, coruscant::server::JobHandle)>();
        let collector = std::thread::spawn(move || {
            let mut latencies = Vec::new();
            while let Ok((at, handle)) = rx.recv() {
                if handle.wait().is_ok() {
                    latencies.push(at.elapsed());
                }
            }
            latencies
        });
        let mut gen = ArrivalGen::new(spec.at_rate(rate), 0xDEED);
        let start = Instant::now();
        let (mut sent, mut shed) = (0usize, 0u64);
        while let Some(offset) = gen.next_offset() {
            if offset >= horizon {
                break;
            }
            while start.elapsed() < offset {
                std::thread::sleep(Duration::from_micros(50));
            }
            let program = programs[sent % programs.len()].clone();
            match client.submit_with(program, SubmitOptions::default()) {
                Ok(handle) => {
                    sent += 1;
                    tx.send((start + offset, handle)).expect("collector alive");
                }
                Err(Rejected::Overload | Rejected::QueueFull) => shed += 1,
                Err(e) => return Err(e.to_string().into()),
            }
        }
        drop(tx);
        let mut latencies = collector.join().expect("collector joins");
        latencies.sort_unstable();
        let p99 = latencies[latencies
            .len()
            .saturating_sub(1)
            .min(latencies.len() * 99 / 100)];
        // Rate over the full drain (not just the generation window), so
        // past saturation this caps at service capacity while the
        // latency percentiles blow up — the knee signature.
        let achieved = latencies.len() as f64 / start.elapsed().as_secs_f64();
        server.shutdown()?;
        println!(
            "{:>10.0} {:>10.0} {:>9.0} {:>7}",
            rate,
            achieved,
            p99.as_secs_f64() * 1e6,
            shed
        );
    }

    // --- 3. Weighted-fair quotas: the misbehaving tenant is clipped. --
    // "tenant-a" is weighted 4× and tags a deadline on every job;
    // "tenant-b" has a 100 req/s quota but offers ~500 req/s.
    let wall = Duration::from_secs(1);
    let server = Server::start(
        config.clone(),
        ServerOptions {
            runtime: RuntimeOptions::default().with_issue_policy(IssuePolicy::Edf),
            admission: AdmissionOptions::enabled(),
            qos: QosOptions::default()
                .enabled()
                .with_client(ClientConfig::new("tenant-a", 4.0))
                .with_client(
                    ClientConfig::new("tenant-b", 1.0).with_quota(RateQuota::new(100.0, 8.0)),
                ),
        },
    )?;
    let client = server.client();
    let compliant = SubmitOptions::default()
        .for_client("tenant-a")
        .with_deadline(Duration::from_millis(50));
    let greedy = SubmitOptions::default().for_client("tenant-b");
    // Pre-draw both tenants' schedules and merge them into one
    // wall-clock submission plan; a real load generator runs one thread
    // per client instead (see `bench_server`).
    let mut plan: Vec<(Duration, &SubmitOptions)> = ArrivalGen::new(spec.at_rate(150.0), 1)
        .schedule_for(wall)
        .into_iter()
        .map(|at| (at, &compliant))
        .chain(
            ArrivalGen::new(spec.at_rate(500.0), 2)
                .schedule_for(wall)
                .into_iter()
                .map(|at| (at, &greedy)),
        )
        .collect();
    plan.sort_unstable_by_key(|(at, _)| *at);
    let mut handles = Vec::new();
    let start = Instant::now();
    for (at, options) in plan {
        while start.elapsed() < at {
            std::thread::sleep(Duration::from_micros(50));
        }
        let program = programs[handles.len() % programs.len()].clone();
        if let Ok(h) = client.submit_with(program, (*options).clone()) {
            handles.push(h);
        }
    }
    for handle in handles {
        let _ = handle.wait();
    }
    let stats = server.shutdown()?;
    println!("\nTwo-tenant fairness over {wall:?} (quota on tenant-b: 100 req/s):");
    for tenant in &stats.qos.clients {
        println!(
            "  {:<9} weight {:.0}: {:>4} accepted, {:>4} throttled, {:>4} served, hit rate {:.3}",
            tenant.client,
            tenant.weight,
            tenant.accepted,
            tenant.throttled,
            tenant.served,
            tenant.deadline_hit_rate(),
        );
    }
    let greedy = stats.qos.client("tenant-b").expect("tenant-b submitted");
    assert!(
        greedy.throttled > 0,
        "the over-quota tenant must be clipped"
    );
    println!(
        "Accounting balanced: {} ({} submitted, {} throttled at the QoS stage)",
        stats.balanced(),
        stats.submitted,
        stats.rejected_throttled,
    );
    Ok(())
}
