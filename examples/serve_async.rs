//! The async serving frontend: per-job completion handles, ordered
//! result streaming, priorities with admission control, and deadline
//! expiry — all over one live runtime session.
//!
//! Run with: `cargo run --example serve_async`

use coruscant::mem::MemoryConfig;
use coruscant::runtime::RuntimeOptions;
use coruscant::server::{
    AdmissionOptions, Priority, Rejected, ServeError, Server, ServerOptions, SubmitOptions,
};
use coruscant::workloads::bitmap::BitmapDataset;
use coruscant::workloads::serve::{compile_bitmap_query, serve_bitmap_query_streamed, QueryPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::tiny();
    let ds = BitmapDataset::generate(20_000, 4, 1);

    // --- 1. Streamed serving: results arrive per job, in order. -------
    let (count, stats) =
        serve_bitmap_query_streamed(&ds, 3, &config, ServerOptions::default(), QueryPlan::Fused)?;
    assert_eq!(count, ds.reference_count(3), "served answer must be exact");
    println!(
        "Streamed query: {count} matching users across {} chunk jobs",
        stats.completed
    );
    println!(
        "Accounting: {} submitted = {} completed + {} rejected (balanced: {})\n",
        stats.submitted,
        stats.completed,
        stats.rejected(),
        stats.balanced()
    );

    // --- 2. Raw handles: submit, then block (or .await) per job. ------
    let server = Server::start(config.clone(), ServerOptions::default())?;
    let client = server.client();
    let mut handles = Vec::new();
    for program in compile_bitmap_query(&ds, 2, &config)? {
        handles.push(client.submit(program).map_err(|r| r.to_string())?);
    }
    println!("Submitted {} jobs; first resolution:", handles.len());
    let first = handles.remove(0).wait().expect("job completes");
    println!(
        "  job {} on bank {} (attempt {}), {} labeled readouts",
        first.job_id,
        first.bank,
        first.attempt,
        first.outputs.len()
    );
    for h in handles {
        h.wait().expect("job completes");
    }
    server.shutdown().map_err(|e| e.to_string())?;

    // --- 3. Admission control: gate the scheduler, watch Low shed. ----
    let mut runtime = RuntimeOptions::default().paused();
    runtime.queue_capacity = 4;
    let server = Server::start(
        config.clone(),
        ServerOptions {
            runtime,
            admission: AdmissionOptions::enabled(),
            ..ServerOptions::default()
        },
    )?;
    let client = server.client();
    let mut admitted = 0;
    let mut shed = 0;
    for (i, program) in compile_bitmap_query(&ds, 1, &config)?
        .into_iter()
        .enumerate()
    {
        let priority = if i % 2 == 0 {
            Priority::High
        } else {
            Priority::Low
        };
        match client.submit_with(program, SubmitOptions::priority(priority)) {
            Ok(_) => admitted += 1,
            Err(Rejected::Overload | Rejected::QueueFull) => shed += 1,
            Err(other) => return Err(other.to_string().into()),
        }
    }
    let stats = server.shutdown().map_err(|e| e.to_string())?;
    println!("\nAdmission-controlled burst into a gated queue of 4:");
    println!(
        "  {admitted} admitted, {shed} shed; server counted {} overload rejections",
        stats.rejected_overload
    );

    // --- 4. Deadlines: a queued job expires before the gate opens. ----
    let server = Server::start(
        config.clone(),
        ServerOptions {
            runtime: RuntimeOptions::default().paused(),
            admission: AdmissionOptions::default(),
            ..ServerOptions::default()
        },
    )?;
    let client = server.client();
    let mut programs = compile_bitmap_query(&ds, 1, &config)?.into_iter();
    let doomed = client
        .submit_with(
            programs.next().unwrap(),
            SubmitOptions::default().with_deadline(std::time::Duration::from_millis(20)),
        )
        .map_err(|r| r.to_string())?;
    std::thread::sleep(std::time::Duration::from_millis(100));
    server.resume();
    assert_eq!(doomed.wait(), Err(ServeError::Expired));
    let stats = server.shutdown().map_err(|e| e.to_string())?;
    println!(
        "\nDeadline demo: {} job expired while queued (runtime cancelled {}), never touched a bank",
        stats.expired, stats.runtime.cancelled
    );
    Ok(())
}
