//! Quickstart: the CORUSCANT polymorphic gate in action.
//!
//! Builds a PIM-enabled domain-block cluster, runs a 7-operand bulk
//! bitwise operation with a single transverse read, performs a 5-operand
//! addition and an 8-bit multiplication, and prints the cycle/energy
//! costs next to the paper's Table III.
//!
//! Run with: `cargo run --example quickstart`

use coruscant::core::add::MultiOperandAdder;
use coruscant::core::bulk::{BulkExecutor, BulkOp};
use coruscant::core::mult::Multiplier;
use coruscant::mem::{Dbc, MemoryConfig, Row};
use coruscant::racetrack::{CostMeter, OpClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::tiny(); // 64-bit rows, 32 rows per DBC, TRD = 7
    println!(
        "DBC: {} nanowires x {} rows, TRD = {}",
        config.nanowires_per_dbc, config.rows_per_dbc, config.trd
    );

    // --- Multi-operand bulk-bitwise: 7 rows OR'd in ONE transverse read ---
    let mut dbc = Dbc::pim_enabled(&config);
    let exec = BulkExecutor::new(&config);
    let operands: Vec<Row> = (0..7u64)
        .map(|k| Row::from_u64_words(64, &[1 << (k * 8)]))
        .collect();
    let mut meter = CostMeter::new();
    let or = exec.execute(&mut dbc, BulkOp::Or, &operands, &mut meter)?;
    println!(
        "\n7-operand OR  = {:#018x}  ({})",
        or.to_u64_words()[0],
        meter.total()
    );

    // --- Five-operand addition: one pass of the spatial carry chain ---
    let mut dbc = Dbc::pim_enabled(&config);
    let adder = MultiOperandAdder::new(&config);
    let addends: Vec<Row> = [3u64, 14, 15, 92, 65]
        .iter()
        .map(|&v| Row::pack(64, 8, &[v; 8]))
        .collect();
    let mut meter = CostMeter::new();
    let sum = adder.add_rows(&mut dbc, &addends, 8, &mut meter)?;
    println!(
        "3+14+15+92+65 = {} per 8-bit lane ({}) [paper Table III: 26 cycles]",
        sum.unpack(8)[0],
        meter.total()
    );

    // --- 8-bit multiplication via carry-save 7->3 reductions ---
    let mut dbc = Dbc::pim_enabled(&config);
    let mult = Multiplier::new(&config);
    let mut meter = CostMeter::new();
    let product = mult.multiply_values(
        &mut dbc,
        &[173, 250, 3, 99],
        &[219, 2, 255, 44],
        8,
        &mut meter,
    )?;
    println!(
        "173*219, 250*2, 3*255, 99*44 = {product:?} ({})",
        meter.total()
    );
    assert_eq!(product, vec![173 * 219, 500, 765, 4356]);

    // Energy breakdown of the multiplication by micro-operation class.
    println!("\nmultiplication energy breakdown:");
    for class in OpClass::ALL {
        let c = meter.class_total(class);
        if c.energy_pj > 0.0 {
            println!(
                "  {class:<6} {:>8.1} pJ over {:>4} cycles",
                c.energy_pj, c.cycles
            );
        }
    }

    println!("\nAll results verified against scalar references.");
    Ok(())
}
