//! A reduced LeNet-style ternary network running END TO END on the PIM
//! engine (paper §IV): convolution via sign-split carry-save sums, max
//! pooling via transverse writes, fully-connected + ReLU via predicated
//! refresh — every layer verified against the integer reference.
//!
//! Run with: `cargo run --release --example lenet_pim`

use coruscant::mem::MemoryConfig;
use coruscant::nn::layers::maxpool as ref_maxpool;
use coruscant::nn::pim_exec::{reference_conv_ternary, reference_fc_ternary, PimCnn};
use coruscant::nn::tensor::Tensor3;

fn ternary_filters(oc: usize, ic: usize, k: usize, seed: u64) -> Vec<Tensor3> {
    (0..oc)
        .map(|f| {
            let mut t = Tensor3::zeros(ic, k, k);
            t.fill_pattern(seed + f as u64, 1);
            t
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::tiny();
    let mut pim = PimCnn::new(&config);

    // A 14x14 grayscale "digit" with a simple stroke pattern.
    let mut input = Tensor3::zeros(1, 14, 14);
    input.fill_pattern(2026, 6);
    let input = input.map(|v| v.abs().min(15));

    // conv1: 4 ternary 3x3 filters -> ReLU -> 12x12x4
    let w1 = ternary_filters(4, 1, 3, 100);
    let c1 = pim.conv2d_ternary(&input, &w1, 3)?;
    assert_eq!(c1, reference_conv_ternary(&input, &w1, 3));
    println!(
        "conv1 verified: {:?} ({} device cycles so far)",
        c1.shape(),
        pim.cost().cycles
    );

    // pool1: 2x2 max -> 6x6x4
    let p1 = pim.maxpool(&c1, 2)?;
    assert_eq!(p1, ref_maxpool(&c1, 2));
    println!("pool1 verified: {:?}", p1.shape());

    // conv2: 6 ternary 3x3x4 filters -> ReLU -> 4x4x6
    let q1 = PimCnn::requantize(&p1, 0);
    let w2 = ternary_filters(6, 4, 3, 200);
    let c2 = pim.conv2d_ternary(&q1, &w2, 3)?;
    assert_eq!(c2, reference_conv_ternary(&q1, &w2, 3));
    println!("conv2 verified: {:?}", c2.shape());

    // pool2: 2x2 max -> 2x2x6 = 24 features
    let p2 = pim.maxpool(&c2, 2)?;
    assert_eq!(p2, ref_maxpool(&c2, 2));
    let q2 = PimCnn::requantize(&p2, 4); // rescale to 8-bit activations
    let flat: Vec<u64> = q2.as_slice().iter().map(|&v| v as u64).collect();

    // fc: 24 -> 10 classes (ternary weights), ReLU
    let fc_w: Vec<Vec<i8>> = (0..10)
        .map(|o| {
            (0..flat.len())
                .map(|i| (((o * 31 + i * 7) % 3) as i8) - 1)
                .collect()
        })
        .collect();
    let logits = pim.fc_ternary(&flat, &fc_w)?;
    assert_eq!(logits, reference_fc_ternary(&flat, &fc_w));

    let class = logits
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap();
    println!("fc verified; logits = {logits:?}");
    println!("\npredicted class: {class}");
    println!("total PIM device cost: {}", pim.cost());
    println!("every layer's output matched the integer reference exactly.");
    Ok(())
}
