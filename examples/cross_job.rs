//! Cross-job optimization knobs: the compiled-program cache and
//! same-bank batch fusion, demonstrated on a repeated-query stream.
//!
//! Run with: `cargo run --example cross_job`

use coruscant::mem::{DbcLocation, MemoryConfig};
use coruscant::runtime::{BatchOptions, CacheOptions, Placement, Runtime, RuntimeOptions};
use coruscant::workloads::bitmap::BitmapDataset;
use coruscant::workloads::serve::{compile_bitmap_query_with, QueryPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::tiny();
    let ds = BitmapDataset::generate(64, 4, 7);
    // One DBC-width chunk of the 4-week query, emitted as the pairwise
    // chain a conventional PIM code generator would produce.
    let query = compile_bitmap_query_with(&ds, 4, &config, QueryPlan::PairwiseChain)?.remove(0);
    let repeats = 500;

    // The same query arriving over and over: the cache compiles it once
    // and serves every later submission from the optimized entry.
    let options = RuntimeOptions::default().with_cache(CacheOptions {
        capacity: 512, // entries across all cache shards
        ..CacheOptions::default()
    });
    let rt = Runtime::new(config.clone(), options)?;
    for _ in 0..repeats {
        rt.submit(query.clone(), Placement::Auto)?;
    }
    let report = rt.finish()?;
    let c = &report.stats.cache;
    println!(
        "cache: {} submissions -> {} miss, {} hits, ~{} device cycles of \
         recompilation skipped",
        repeats, c.misses, c.hits, c.est_cycles_saved
    );

    // The same stream pinned to one PIM unit, with and without batch
    // fusion: batching splices queued same-unit jobs into one program,
    // optimizes across the job boundary, and demuxes per-job outputs.
    let unit = DbcLocation::new(0, 0, 0, 0);
    let pinned_run = |batch: BatchOptions| -> Result<_, Box<dyn std::error::Error>> {
        let rt = Runtime::new(config.clone(), RuntimeOptions::default().with_batch(batch))?;
        for _ in 0..repeats {
            rt.submit(query.clone(), Placement::Fixed(unit))?;
        }
        Ok(rt.finish()?)
    };
    let sequential = pinned_run(BatchOptions::default())?;
    let batched = pinned_run(BatchOptions::enabled())?;
    println!(
        "batch: {} jobs in {} batched dispatches, {} device cycles vs {} sequential",
        batched.stats.batch.batched_jobs,
        batched.stats.batch.batches,
        batched.stats.device_cycles,
        sequential.stats.device_cycles
    );
    // Outputs stay bit-exact under batching — every chunk reports the
    // same population-count rows either way.
    for (s, b) in sequential.outcomes.iter().zip(&batched.outcomes) {
        assert_eq!(s.outputs, b.outputs, "batch fusion must not change results");
    }
    Ok(())
}
