//! In-memory database analytics: bitmap-accelerated table scans with
//! multi-operand predicates, min/max aggregates and PIM subtraction —
//! the "database searching" use case from the paper's introduction.
//!
//! Run with: `cargo run --example table_scan`

use coruscant::core::arith::ArithmeticUnit;
use coruscant::core::bulk::{BulkExecutor, BulkOp};
use coruscant::core::maxpool::MaxExecutor;
use coruscant::mem::{Dbc, MemoryConfig, Row};
use coruscant::racetrack::CostMeter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::tiny();
    let mut meter = CostMeter::new();

    // A toy "orders" table: 64 rows, one bit per row in each predicate
    // bitmap (columns are pre-indexed as bitmaps, as in Fig. 12).
    let n = 64usize;
    let premium: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let recent: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let high_value: Vec<bool> = (0..n).map(|i| i % 5 == 0).collect();
    let eu_region: Vec<bool> = (0..n).map(|i| i % 4 != 0).collect();

    let to_row = |bits: &Vec<bool>| Row::from_bits(bits.clone());

    // Predicate: premium AND recent AND high_value AND eu_region — one
    // 4-operand bulk AND, a single transverse read.
    let exec = BulkExecutor::new(&config);
    let mut dbc = Dbc::pim_enabled(&config);
    let hits = exec.execute(
        &mut dbc,
        BulkOp::And,
        &[
            to_row(&premium),
            to_row(&recent),
            to_row(&high_value),
            to_row(&eu_region),
        ],
        &mut meter,
    )?;
    let expect = (0..n)
        .filter(|&i| premium[i] && recent[i] && high_value[i] && eu_region[i])
        .count();
    assert_eq!(hits.popcount(), expect);
    println!(
        "conjunctive scan: {} matching orders (single TR for 4 predicates)",
        hits.popcount()
    );

    // Disjunctive scan: any of the four flags — bulk OR.
    let mut dbc = Dbc::pim_enabled(&config);
    let any = exec.execute(
        &mut dbc,
        BulkOp::Or,
        &[
            to_row(&premium),
            to_row(&recent),
            to_row(&high_value),
            to_row(&eu_region),
        ],
        &mut meter,
    )?;
    println!(
        "disjunctive scan: {} orders match at least one flag",
        any.popcount()
    );

    // Aggregates over a packed numeric column: order totals as 8-bit
    // lanes, 8 per row chunk.
    let totals: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % 251).collect();
    let maxer = MaxExecutor::new(&config);
    let arith = ArithmeticUnit::new(&config);
    let chunk_maxes: Vec<Row> = totals.chunks(8).map(|c| Row::pack(64, 8, c)).collect();
    // 16-bit accumulation lanes fit four values per 64-bit row.
    let chunk_sums: Vec<Row> = totals.chunks(4).map(|c| Row::pack(64, 16, c)).collect();
    // MAX aggregate: lane-wise max across chunk rows, then a final host
    // fold over the 8 lane winners.
    let mut dbc = Dbc::pim_enabled(&config);
    let lane_max = maxer.max_rows(
        &mut dbc,
        &chunk_maxes[..7.min(chunk_maxes.len())],
        8,
        &mut meter,
    )?;
    let pim_max = lane_max.unpack(8).into_iter().max().unwrap();
    let host_max = totals[..7 * 8].iter().copied().max().unwrap();
    assert_eq!(pim_max, host_max);
    println!("MAX(total) over the first 56 orders = {pim_max} (verified)");

    // SUM aggregate via carry-save accumulation (16-bit lanes).
    let mut dbc = Dbc::pim_enabled(&config);
    let lane_sums = arith.sum_rows(&mut dbc, &chunk_sums, 16, &mut meter)?;
    let pim_sum: u64 = lane_sums.unpack(16).iter().sum();
    let host_sum: u64 = totals.iter().sum();
    assert_eq!(pim_sum, host_sum);
    println!("SUM(total) = {pim_sum} (verified)");

    // Difference of two daily revenue vectors with PIM subtraction.
    let today = Row::pack(64, 16, &[500, 800, 250, 900]);
    let yesterday = Row::pack(64, 16, &[450, 850, 250, 100]);
    let mut dbc = Dbc::pim_enabled(&config);
    let delta = arith.subtract(&mut dbc, &today, &yesterday, 16, &mut meter)?;
    println!(
        "revenue delta (two's complement lanes): {:?}",
        delta.unpack(16)
    );

    println!("\ntotal device cost: {}", meter.total());
    Ok(())
}
