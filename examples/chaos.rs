//! Seeded chaos demo: a supervised serving session under injected
//! worker panics, stalls, and delays — fully replayable by seed.
//!
//! Runs the same campaign twice with the same [`ChaosPlan`] and shows
//! that both runs resolve every job to the same fate, then once more
//! with a different seed to show the fault pattern (not the contract)
//! changes. Run with `cargo run --release --example chaos`.

use coruscant::core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant::core::program::{PimProgram, Step};
use coruscant::mem::{DbcLocation, MemoryConfig, RowAddress};
use coruscant::runtime::{
    install_quiet_hook, ChaosPlan, RuntimeOptions, SuperviseOptions, WatchdogOptions,
};
use coruscant::server::{ServeError, Server, ServerOptions};

fn add_job(a: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(loc, 4),
                values: vec![a; 8],
                lane: 8,
            },
            Step::Load {
                addr: RowAddress::new(loc, 5),
                values: vec![3; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(loc, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(loc, 20),
                lane: 8,
            },
        ],
    }
}

fn config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

/// One campaign: 32 jobs through a chaos-injected supervised server.
/// Returns each job's fate tag plus the final server stats line.
fn campaign(plan: ChaosPlan) -> (Vec<&'static str>, String) {
    let runtime = RuntimeOptions::default()
        .with_shards(4)
        .with_chaos(plan)
        .with_supervise(SuperviseOptions {
            backoff_base_ms: 1,
            backoff_max_ms: 8,
            max_job_retries: 3,
            drain_deadline_ms: 10_000,
            ..SuperviseOptions::default()
        })
        .with_watchdog(WatchdogOptions {
            enabled: true,
            base_ms: 200,
            per_step_us: 50,
            slack_pct: 400,
            poison_strikes: u32::MAX,
        });
    let server = Server::start(
        config(),
        ServerOptions {
            runtime,
            ..ServerOptions::default()
        },
    )
    .expect("server starts");
    let client = server.client();
    let handles: Vec<_> = (0..32)
        .map(|tag| client.submit(add_job(tag)).expect("accepted"))
        .collect();
    let fates: Vec<&str> = handles
        .into_iter()
        .map(|h| match h.wait() {
            Ok(_) => "ok",
            Err(ServeError::Crashed) => "crashed",
            Err(ServeError::Hung) => "hung",
            Err(_) => "other",
        })
        .collect();
    let stats = server.shutdown().expect("drain succeeds");
    assert!(stats.balanced(), "accounting must balance: {stats:?}");
    let sup = stats.runtime.supervision;
    let line = format!(
        "completed={} crashed={} hung={} lost={} | panics_caught={} restarts={} redispatches={}",
        stats.completed,
        stats.crashed,
        stats.hung,
        stats.lost,
        sup.panics_caught,
        sup.shard_restarts,
        sup.crash_redispatches,
    );
    (fates, line)
}

fn main() {
    install_quiet_hook();
    let plan = ChaosPlan::mixed(0xC0FFEE, 100, 1_500, 200);

    println!("== run 1 (seed {:#x}) ==", plan.seed);
    let (fates1, line1) = campaign(plan);
    println!("{line1}");

    println!("== run 2 (same seed) ==");
    let (fates2, line2) = campaign(plan);
    println!("{line2}");
    assert_eq!(fates1, fates2, "same seed must replay the same fates");
    println!("replay check: {} fates identical", fates1.len());

    let other = ChaosPlan::mixed(0xBEEF, 100, 1_500, 200);
    println!("== run 3 (seed {:#x}) ==", other.seed);
    let (fates3, line3) = campaign(other);
    println!("{line3}");
    let diff = fates1.iter().zip(&fates3).filter(|(a, b)| a != b).count();
    println!("different seed: {diff} of {} fates differ", fates3.len());
}
