//! CNN inference case study (paper §IV, Table IV): functional LeNet-style
//! layers verified against PIM arithmetic, plus the full Table IV
//! throughput model.
//!
//! Run with: `cargo run --example cnn_inference`

use coruscant::core::mult::Multiplier;
use coruscant::mem::{Dbc, MemoryConfig};
use coruscant::nn::layers::{conv2d, fc_relu, maxpool};
use coruscant::nn::mapping::{model_fps, Scheme};
use coruscant::nn::models::{alexnet, lenet5};
use coruscant::nn::quant::Precision;
use coruscant::nn::tensor::Tensor3;
use coruscant::racetrack::CostMeter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A tiny functional conv -> pool -> fc pipeline ---
    let mut input = Tensor3::zeros(1, 8, 8);
    input.fill_pattern(42, 5);
    let mut kernel = Tensor3::zeros(1, 3, 3);
    kernel.fill_pattern(7, 3);
    let conv = conv2d(&input, &[kernel.clone()], 1, 3);
    let pooled = maxpool(&conv, 2);
    let flat: Vec<i64> = pooled.as_slice().to_vec();
    let weights = vec![vec![1i64; flat.len()], vec![-1i64; flat.len()]];
    let out = fc_relu(&flat, &weights, &[0, 0]);
    println!(
        "tiny network outputs: {out:?} (second output ReLU-clamped: {})",
        out[1] == 0
    );

    // --- One convolution MAC batch executed on the actual PIM engine ---
    let config = MemoryConfig::tiny();
    let mut dbc = Dbc::pim_enabled(&config);
    let mult = Multiplier::new(&config);
    let acts: Vec<u64> = vec![17, 3, 250, 99];
    let wts: Vec<u64> = vec![5, 111, 2, 7];
    let mut meter = CostMeter::new();
    let prods = mult.multiply_values(&mut dbc, &acts, &wts, 8, &mut meter)?;
    let mac: u64 = prods.iter().sum();
    let oracle: u64 = acts.iter().zip(&wts).map(|(a, w)| a * w).sum();
    assert_eq!(mac, oracle);
    println!(
        "PIM MAC batch: sum(products) = {mac} (verified; {})",
        meter.total()
    );

    // --- Table IV: inference throughput across schemes ---
    println!("\nModeled inference throughput (FPS):");
    for net in [lenet5(), alexnet()] {
        println!("  {} ({:.2e} MACs):", net.name, net.total_macs() as f64);
        for (scheme, precision) in [
            (Scheme::Spim, Precision::Full),
            (Scheme::Coruscant(7), Precision::Full),
            (Scheme::Elp2im, Precision::Twn),
            (Scheme::Coruscant(7), Precision::Twn),
        ] {
            println!(
                "    {:<14} {:?}: {:>9.1}",
                scheme.to_string(),
                precision,
                model_fps(scheme, &net, precision)
            );
        }
    }
    Ok(())
}
