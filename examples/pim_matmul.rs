//! In-memory matrix multiplication: a polybench-style GEMM computed
//! entirely with CORUSCANT PIM operations (multiplications via carry-save
//! reductions, accumulations via multi-operand addition), verified
//! against a scalar reference, plus the Fig. 10/11 memory-wall summary.
//!
//! Run with: `cargo run --example pim_matmul`

use coruscant::core::add::MultiOperandAdder;
use coruscant::core::mult::Multiplier;
use coruscant::mem::{Dbc, MemoryConfig, Row};
use coruscant::racetrack::{Cost, CostMeter};
use coruscant::workloads::memwall::{compare, geomean, MemWallResult};
use coruscant::workloads::polybench::suite;

/// Multiplies two n x n matrices of 8-bit values on the PIM engine:
/// each output row's dot products run as lane-parallel multiplies followed
/// by grouped multi-operand additions of the partial sums.
type Matrix = Vec<Vec<u64>>;

fn pim_matmul(
    a: &[Vec<u64>],
    b: &[Vec<u64>],
    config: &MemoryConfig,
) -> Result<(Matrix, Cost), Box<dyn std::error::Error>> {
    let n = a.len();
    let mult = Multiplier::new(config);
    let adder = MultiOperandAdder::new(config);
    let lanes = config.nanowires_per_dbc / 16;
    let mut meter = CostMeter::new();
    let mut c = vec![vec![0u64; n]; n];
    for i in 0..n {
        for j in 0..n {
            // Lane-parallel products a[i][k] * b[k][j] for all k.
            let mut products = Vec::with_capacity(n);
            for chunk_start in (0..n).step_by(lanes) {
                let end = (chunk_start + lanes).min(n);
                let av: Vec<u64> = (chunk_start..end).map(|k| a[i][k]).collect();
                let bv: Vec<u64> = (chunk_start..end).map(|k| b[k][j]).collect();
                let mut dbc = Dbc::pim_enabled(config);
                products.extend(mult.multiply_values(&mut dbc, &av, &bv, 8, &mut meter)?);
            }
            // Accumulate the n products with grouped 5-operand adds
            // (16-bit lanes are wide enough for these magnitudes).
            while products.len() > 1 {
                let take = config.max_add_operands().min(products.len());
                let chunk: Vec<u64> = products.drain(..take).collect();
                if chunk.len() == 1 {
                    products.push(chunk[0]);
                    continue;
                }
                let rows: Vec<Row> = chunk
                    .iter()
                    .map(|&v| Row::pack(config.nanowires_per_dbc, 32, &[v]))
                    .collect();
                let mut dbc = Dbc::pim_enabled(config);
                let sum = adder.add_rows(&mut dbc, &rows, 32, &mut meter)?;
                products.insert(0, sum.unpack(32)[0]);
            }
            c[i][j] = products[0];
        }
    }
    Ok((c, meter.total()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::tiny();
    let n = 6;
    let a: Vec<Vec<u64>> = (0..n)
        .map(|i| (0..n).map(|j| ((i * 7 + j * 13) % 251) as u64).collect())
        .collect();
    let b: Vec<Vec<u64>> = (0..n)
        .map(|i| (0..n).map(|j| ((i * 11 + j * 3) % 251) as u64).collect())
        .collect();

    let (c, cost) = pim_matmul(&a, &b, &config)?;

    // Scalar oracle.
    for i in 0..n {
        for j in 0..n {
            let want: u64 = (0..n).map(|k| a[i][k] * b[k][j]).sum();
            assert_eq!(c[i][j], want, "C[{i}][{j}]");
        }
    }
    println!("{n}x{n} GEMM on PIM verified against the scalar reference ({cost})");

    println!("\nMemory-wall summary over the polybench suite (paper Figs. 10-11):");
    let paper_cfg = MemoryConfig::paper();
    let results: Vec<MemWallResult> = suite(48).iter().map(|k| compare(k, &paper_cfg)).collect();
    for r in results.iter().take(4) {
        println!(
            "  {:<8} speedup vs CPU+DWM {:.2}x, energy reduction {:.1}x",
            r.kernel,
            r.speedup_vs_dwm(),
            r.energy_reduction()
        );
    }
    println!(
        "  average: {:.2}x speedup (paper 2.07x), {:.1}x energy (paper >25x)",
        geomean(results.iter().map(MemWallResult::speedup_vs_dwm)),
        geomean(results.iter().map(MemWallResult::energy_reduction))
    );
    Ok(())
}
