//! Bitmap-index database query (paper Fig. 12): how many male users were
//! active in each of the last `w` weeks — resolved with one multi-operand
//! AND per 64-bit chunk via the transverse read, then compared against
//! the Ambit/ELP2IM/DRAM-CPU cost models at 16M-user scale.
//!
//! Run with: `cargo run --example bitmap_query`

use coruscant::mem::MemoryConfig;
use coruscant::workloads::bitmap::{
    cost_ambit, cost_coruscant, cost_dram_cpu, cost_elp2im, run_coruscant, BitmapDataset,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Functional run at reduced scale (exact answers, real PIM DBC ops).
    let users = 200_000;
    let ds = BitmapDataset::generate(users, 4, 1);
    let config = MemoryConfig::tiny();
    println!("Dataset: {users} users, 4 weekly activity bitmaps\n");
    for w in 1..=4 {
        let out = run_coruscant(&ds, w, &config)?;
        assert_eq!(out.count, ds.reference_count(w), "PIM answer must be exact");
        println!(
            "male AND active last {w} week(s): {:>6} users  ({} memory cycles, {:.1} nJ)",
            out.count,
            out.cycles,
            out.energy_pj / 1000.0
        );
    }

    // Cost-model comparison at the paper's 16M-user scale.
    println!("\nSpeedup over a DRAM-CPU system at 16M users (paper Fig. 12):");
    let paper_cfg = MemoryConfig::paper();
    for w in 2..=4 {
        let cpu = cost_dram_cpu(16_000_000, w).cycles as f64;
        println!(
            "  {} criteria: Ambit {:.1}x, ELP2IM {:.1}x, CORUSCANT {:.1}x",
            w + 1,
            cpu / cost_ambit(16_000_000, w, 512).cycles as f64,
            cpu / cost_elp2im(16_000_000, w, 512).cycles as f64,
            cpu / cost_coruscant(16_000_000, w, &paper_cfg).cycles as f64,
        );
    }
    Ok(())
}
