//! Inspecting the optimizing compiler: a conventional pairwise-chain
//! emission of the bitmap query run through the pass pipeline, with the
//! per-pass before/after statistics table and the differential-verifier
//! verdict printed for each stage.
//!
//! Run with: `cargo run --example compile_inspect`

use coruscant::compiler::{differential_verify, CompileOptions, Compiler, VerifyOutcome};
use coruscant::mem::MemoryConfig;
use coruscant::workloads::bitmap::BitmapDataset;
use coruscant::workloads::serve::{compile_bitmap_query_with, QueryPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::tiny();
    let ds = BitmapDataset::generate(5_000, 4, 7);
    println!("Dataset: 5000 users, 4 weekly activity bitmaps");
    println!("Query: users active in all 4 weeks (w = 4)\n");

    for (plan, label) in [
        (
            QueryPlan::PairwiseChain,
            "pairwise chain (Ambit-style emission)",
        ),
        (QueryPlan::Fused, "fused multi-operand TR (native emission)"),
    ] {
        let programs = compile_bitmap_query_with(&ds, 4, &config, plan)?;
        let compiler = Compiler::new(config.clone(), &CompileOptions::default().with_verify(true));
        let (optimized, report) = compiler.optimize(&programs[0])?;

        println!("== {label} — one chunk program ==");
        print!("{}", report.render_table());
        match differential_verify(&programs[0], &optimized, &config)? {
            VerifyOutcome::Match => println!("differential verify: outputs identical\n"),
            VerifyOutcome::OriginalFailed => println!("differential verify: skipped\n"),
        }
    }
    Ok(())
}
