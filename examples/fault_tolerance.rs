//! Fault tolerance with N-modular redundancy (paper §III-F, §V-F):
//! injects transverse-read faults at an accelerated rate, shows
//! unprotected operations failing, and recovers the correct results by
//! voting through the super-carry majority gate. A second section serves
//! the same accelerated faults through the execution runtime with
//! re-execute-and-compare protection and prints its fault counters.
//!
//! Run with: `cargo run --example fault_tolerance`

use coruscant::core::bulk::{BulkExecutor, BulkOp};
use coruscant::core::nmr::NmrVoter;
use coruscant::mem::{Dbc, FaultPlan, MemoryConfig, Row};
use coruscant::racetrack::{CostMeter, FaultConfig};
use coruscant::reliability::model::OpReliability;
use coruscant::reliability::nmr::NmrReliability;
use coruscant::runtime::{HealthPolicy, ProtectionPolicy, RuntimeOptions};
use coruscant::workloads::bitmap::BitmapDataset;
use coruscant::workloads::serve::serve_bitmap_query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::tiny();
    let exec = BulkExecutor::new(&config);
    let voter = NmrVoter::new(&config);

    // Accelerated fault rate so failures are visible in a short demo.
    let p = 5e-3;
    let faults = FaultConfig::NONE.with_tr_fault_rate(p);
    let operands: Vec<Row> = (0..7u64)
        .map(|k| Row::from_u64_words(64, &[0x0123_4567_89AB_CDEFu64.rotate_left(k as u32 * 8)]))
        .collect();
    let oracle = BulkExecutor::reference(BulkOp::Xor, &operands);

    let trials = 200;
    let mut raw_errors = 0;
    let mut voted_errors = 0;
    for t in 0..trials {
        // Unprotected op.
        let mut dbc = Dbc::pim_enabled(&config).with_faults(faults, 1000 + t);
        let mut m = CostMeter::new();
        let raw = exec.execute(&mut dbc, BulkOp::Xor, &operands, &mut m)?;
        if raw != oracle {
            raw_errors += 1;
        }
        // Triple-modular redundancy: three replicas + C'-majority vote.
        let mut replicas = Vec::new();
        for r in 0..3 {
            let mut dbc = Dbc::pim_enabled(&config).with_faults(faults, 9000 + t * 3 + r);
            let mut m = CostMeter::new();
            replicas.push(exec.execute(&mut dbc, BulkOp::Xor, &operands, &mut m)?);
        }
        let mut vote_dbc = Dbc::pim_enabled(&config);
        let mut m = CostMeter::new();
        let voted = voter.vote_rows(&mut vote_dbc, &replicas, &mut m)?;
        if voted != oracle {
            voted_errors += 1;
        }
    }
    println!("accelerated TR fault rate p = {p}");
    println!("unprotected 7-operand XOR: {raw_errors}/{trials} wrong results");
    println!("TMR-protected:             {voted_errors}/{trials} wrong results");
    assert!(voted_errors < raw_errors || raw_errors == 0);

    // Analytic rates at the intrinsic fault probability.
    println!("\nAnalytic rates at the intrinsic p = 1e-6 (paper Table V):");
    for trd in [3usize, 5, 7] {
        let r = OpReliability::at(trd);
        println!(
            "  TRD={trd}: AND/OR/C' {:.1e}, XOR {:.1e}, add(8b) {:.1e}, mult(8b) {:.1e}",
            r.and_or_cp, r.xor, r.add8, r.mult8
        );
    }
    let tmr = NmrReliability::at(3, 7);
    let n5 = NmrReliability::at(5, 7);
    println!("  TMR 8-bit add: {:.1e};  N=5: {:.1e}", tmr.add8, n5.add8);

    // ---- Fault-tolerant serving through the runtime ----------------
    // The same accelerated faults, but now injected under a whole
    // serving session: the bitmap query is chunked into jobs, every
    // bank's DBCs draw seeded fault streams, and the runtime's
    // re-execute-and-compare policy verifies each job before it counts.
    println!("\nFault-tolerant serving (runtime, accelerated p = 2e-3):");
    let ds = BitmapDataset::generate(2000, 3, 17);
    let reference = ds.reference_count(3);
    let plan = || FaultPlan::uniform(FaultConfig::NONE.with_tr_fault_rate(2e-3), 0xFA11).unwrap();
    // Uniform faults hit every bank, so disable quarantine and let the
    // retry loop do the work.
    let health = HealthPolicy {
        suspect_after: 10_000,
        quarantine_after: 100_000,
        scrub_on_suspect: false,
        ..HealthPolicy::default()
    };

    let (count_off, off) = serve_bitmap_query(
        &ds,
        3,
        &config,
        RuntimeOptions::default()
            .with_faults(plan())
            .with_health(health),
    )?;
    println!(
        "  protection off: count {count_off} vs reference {reference} ({})",
        if count_off == reference {
            "correct by luck"
        } else {
            "CORRUPTED"
        }
    );

    let (count_on, on) = serve_bitmap_query(
        &ds,
        3,
        &config,
        RuntimeOptions::default()
            .with_faults(plan())
            .with_health(health)
            .with_protection(ProtectionPolicy::Reexecute { max_retries: 6 }),
    )?;
    let f = &on.stats.faults;
    println!("  protection on:  count {count_on} vs reference {reference}");
    assert_eq!(count_on, reference, "re-execution must verify every chunk");
    println!(
        "    jobs {} | replicas run {} | faults detected {} | retries {} | unverified {}",
        f.protected_jobs, f.replicas_run, f.faults_detected, f.retries, f.unverified_jobs
    );
    println!(
        "    makespan {} cycles (unprotected: {})",
        on.stats.makespan_cycles, off.stats.makespan_cycles
    );
    Ok(())
}
