//! Memory-trace replay: drive the command-level controller with synthetic
//! traces of different locality, compare DWM vs DRAM timing, and inspect
//! per-bank load distribution — the system-simulation machinery behind
//! the paper's Fig. 10 methodology.
//!
//! Run with: `cargo run --example trace_replay`

use coruscant::mem::timing::DeviceTiming;
use coruscant::mem::trace::{replay, Trace};
use coruscant::mem::{MemoryConfig, MemoryController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::paper();
    println!(
        "memory: {} banks x {} subarrays, {}-wire DBCs\n",
        config.banks, config.subarrays_per_bank, config.nanowires_per_dbc
    );

    let traces = [
        ("streaming", Trace::streaming(&config, 8000)),
        ("strided x3", Trace::strided(&config, 8000, 3)),
        ("pointer chase", Trace::pointer_chase(&config, 8000, 0, 7)),
        (
            "chase + compute gaps",
            Trace::pointer_chase(&config, 4000, 20, 9),
        ),
    ];

    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>10}",
        "trace", "DWM cyc", "DRAM cyc", "hit rate", "DWM gain"
    );
    for (name, trace) in &traces {
        let dwm = replay(
            trace,
            &mut MemoryController::with_timing(config.clone(), DeviceTiming::DWM_PAPER),
        )?;
        let dram = replay(
            trace,
            &mut MemoryController::with_timing(config.clone(), DeviceTiming::DRAM_PAPER),
        )?;
        println!(
            "{:<22} {:>10} {:>10} {:>8.0}% {:>9.2}x",
            name,
            dwm.finish_cycles,
            dram.finish_cycles,
            dwm.hit_rate() * 100.0,
            dram.finish_cycles as f64 / dwm.finish_cycles as f64
        );
    }

    // Bank distribution of the strided trace.
    let mut ctrl = MemoryController::new(config.clone());
    replay(&Trace::strided(&config, 8000, 3), &mut ctrl)?;
    let bs = ctrl.bank_stats();
    let (hot, n) = bs.hottest().unwrap();
    println!(
        "\nstrided trace bank load: hottest bank {hot} with {n} requests, imbalance {:.2}",
        bs.imbalance()
    );
    println!(
        "controller stats: {} requests, {} shift cycles, {} queue cycles",
        ctrl.stats().requests,
        ctrl.stats().shift_cycles,
        ctrl.stats().queue_cycles
    );
    Ok(())
}
