//! Memory-trace replay: drive the command-level controller with synthetic
//! traces of different locality, compare DWM vs DRAM timing, and inspect
//! per-bank load distribution — the system-simulation machinery behind
//! the paper's Fig. 10 methodology. Then replay the same kind of traces
//! through the DWM cache frontend, comparing shift-aware placement
//! policies and converting the misses into real served PIM jobs.
//!
//! Run with: `cargo run --example trace_replay`

use coruscant::dwmcache::{
    replay::ReplayConfig, CacheConfig, EagerRestore, HotnessWeighted, Mix, NaiveStatic,
    PlacementPolicy, SynthSpec,
};
use coruscant::mem::timing::DeviceTiming;
use coruscant::mem::trace::{replay, Trace};
use coruscant::mem::{MemoryConfig, MemoryController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::paper();
    println!(
        "memory: {} banks x {} subarrays, {}-wire DBCs\n",
        config.banks, config.subarrays_per_bank, config.nanowires_per_dbc
    );

    let traces = [
        ("streaming", Trace::streaming(&config, 8000)),
        ("strided x3", Trace::strided(&config, 8000, 3)),
        ("pointer chase", Trace::pointer_chase(&config, 8000, 0, 7)),
        (
            "chase + compute gaps",
            Trace::pointer_chase(&config, 4000, 20, 9),
        ),
    ];

    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>10}",
        "trace", "DWM cyc", "DRAM cyc", "hit rate", "DWM gain"
    );
    for (name, trace) in &traces {
        let dwm = replay(
            trace,
            &mut MemoryController::with_timing(config.clone(), DeviceTiming::DWM_PAPER),
        )?;
        let dram = replay(
            trace,
            &mut MemoryController::with_timing(config.clone(), DeviceTiming::DRAM_PAPER),
        )?;
        println!(
            "{:<22} {:>10} {:>10} {:>8.0}% {:>9.2}x",
            name,
            dwm.finish_cycles,
            dram.finish_cycles,
            dwm.hit_rate() * 100.0,
            dram.finish_cycles as f64 / dwm.finish_cycles as f64
        );
    }

    // Bank distribution of the strided trace.
    let mut ctrl = MemoryController::new(config.clone());
    replay(&Trace::strided(&config, 8000, 3), &mut ctrl)?;
    let bs = ctrl.bank_stats();
    let (hot, n) = bs.hottest().unwrap();
    println!(
        "\nstrided trace bank load: hottest bank {hot} with {n} requests, imbalance {:.2}",
        bs.imbalance()
    );
    println!(
        "controller stats: {} requests, {} shift cycles, {} queue cycles",
        ctrl.stats().requests,
        ctrl.stats().shift_cycles,
        ctrl.stats().queue_cycles
    );

    // ── DWM cache frontend ──────────────────────────────────────────
    // The same locality story one level up: a set-associative cache
    // whose data blocks live on DBC rows, replayed under each
    // shift-aware placement policy; every miss becomes a real PIM fill
    // + filter job served end to end through the runtime.
    let cache_mem = MemoryConfig::tiny();
    let replay_config = ReplayConfig {
        memory: cache_mem.clone(),
        cache: CacheConfig::new(16, 8),
        jobs: Default::default(),
        shards: 2,
    };
    let hot_trace = SynthSpec {
        mix: Mix::HotCold {
            hot_lines: 64,
            hot_pct: 90,
        },
        accesses: 4000,
        lines: 1024,
        line_bytes: (cache_mem.nanowires_per_dbc / 8) as u64,
        write_pct: 25,
        seed: 42,
    }
    .generate();

    println!(
        "\nDWM cache frontend: {}-set x {}-way over {}-wire DBC rows, hot/cold trace",
        replay_config.cache.sets, replay_config.cache.ways, cache_mem.nanowires_per_dbc
    );
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>10} {:>12}",
        "policy", "hit%", "shift_cyc", "demand_cyc", "missjobs", "filter_ones"
    );
    let policies: Vec<Box<dyn PlacementPolicy>> = vec![
        Box::new(NaiveStatic),
        Box::new(EagerRestore),
        Box::new(HotnessWeighted::default()),
    ];
    for policy in policies {
        let outcome = coruscant::dwmcache::replay::replay(&hot_trace, policy, &replay_config)?;
        let r = &outcome.report;
        println!(
            "{:<18} {:>8.2} {:>12} {:>12} {:>10} {:>12}",
            r.policy,
            r.hit_rate * 100.0,
            r.total_shift_cycles,
            r.demand_shift_cycles,
            r.miss_jobs,
            r.filter_ones
        );
    }
    Ok(())
}
