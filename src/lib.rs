//! CORUSCANT: a processing-in-memory architecture for Domain-Wall
//! (Racetrack) Memory — a full-system Rust reproduction of the MICRO 2022
//! paper "CORUSCANT: Fast Efficient Processing-in-Racetrack Memories".
//!
//! This facade crate re-exports the workspace:
//!
//! * [`racetrack`] — the device model: nanowires, shifts, access ports,
//!   transverse reads and writes, fault injection, cycle/energy costs.
//! * [`mem`] — the DWM main-memory architecture: banks, subarrays, tiles,
//!   domain-block clusters, row buffers, DDR-style timing, controller.
//! * [`core`] — the PIM engine: polymorphic TR gates, multi-operand
//!   bulk-bitwise logic and addition, carry-save multiplication, max,
//!   ReLU, N-modular redundancy, the `cpim` ISA and its executor.
//! * [`compiler`] — the optimizing pass pipeline over `cpim` programs:
//!   multi-operand TR fusion, shift-minimizing scheduling, dead-step
//!   elimination, differential verification.
//! * [`dwmcache`] — the trace-driven DWM cache frontend: shift-aware
//!   placement/port policies over DBC rows and miss-to-PIM job
//!   conversion through the serving stack.
//! * [`baselines`] — Ambit, ELP²IM, DW-NN, SPIM, ISAAC and CPU models.
//! * [`nn`] — the CNN case study (LeNet-5, AlexNet; full/BWN/TWN modes).
//! * [`workloads`] — polybench kernel models and bitmap-index queries.
//! * [`runtime`] — the request-serving execution runtime: job queue,
//!   bank-parallel circular dispatch (§V-C), sharded executor, stats.
//! * [`server`] — the async serving frontend over the runtime: per-job
//!   completion handles, admission control, deadlines, streaming.
//! * [`reliability`] — analytic fault rates, NMR math, Monte-Carlo.
//!
//! # Quickstart
//!
//! ```
//! use coruscant::core::add::MultiOperandAdder;
//! use coruscant::mem::{Dbc, MemoryConfig, Row};
//! use coruscant::racetrack::CostMeter;
//!
//! # fn main() -> Result<(), coruscant::core::PimError> {
//! let config = MemoryConfig::tiny();
//! let mut dbc = Dbc::pim_enabled(&config);
//! let adder = MultiOperandAdder::new(&config);
//!
//! let operands: Vec<Row> = (1..=5u64)
//!     .map(|k| Row::pack(64, 8, &[k, k + 10, 0, 255, 1, 2, 3, 4]))
//!     .collect();
//! let mut meter = CostMeter::new();
//! let sum = adder.add_rows(&mut dbc, &operands, 8, &mut meter)?;
//! assert_eq!(sum.unpack(8)[0], 15);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use coruscant_baselines as baselines;
pub use coruscant_compiler as compiler;
pub use coruscant_core as core;
pub use coruscant_dwmcache as dwmcache;
pub use coruscant_mem as mem;
pub use coruscant_nn as nn;
pub use coruscant_pipeline as pipeline;
pub use coruscant_qos as qos;
pub use coruscant_racetrack as racetrack;
pub use coruscant_reliability as reliability;
pub use coruscant_runtime as runtime;
pub use coruscant_server as server;
pub use coruscant_workloads as workloads;
