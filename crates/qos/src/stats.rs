//! Per-client QoS accounting surfaced through the server's stats.

use serde::{Deserialize, Serialize};

/// One client's QoS ledger.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClientQosStats {
    /// Client identity as given on `SubmitOptions`.
    pub client: String,
    /// The WFQ weight the client was served with.
    pub weight: f64,
    /// Submissions that passed the fair-queueing stage.
    pub accepted: u64,
    /// Submissions refused by quota or fair-share lag.
    pub throttled: u64,
    /// Accepted jobs that executed to a result.
    pub served: u64,
    /// Accepted jobs cancelled by deadline expiry before execution.
    pub expired: u64,
    /// Total admitted service demand (job cost units, unweighted).
    pub attained_service: f64,
    /// Served jobs that carried a deadline and finished inside it.
    pub deadline_hits: u64,
    /// Served jobs that carried a deadline and finished past it.
    pub deadline_misses: u64,
}

impl ClientQosStats {
    /// Fraction of deadline-carrying served jobs that met their
    /// deadline; 1.0 when no served job carried one.
    pub fn deadline_hit_rate(&self) -> f64 {
        let total = self.deadline_hits + self.deadline_misses;
        if total == 0 {
            return 1.0;
        }
        self.deadline_hits as f64 / total as f64
    }
}

/// Snapshot of every client's ledger, sorted by client name so the
/// serialized form is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QosStats {
    /// Per-client ledgers, name-sorted.
    pub clients: Vec<ClientQosStats>,
}

impl QosStats {
    /// The ledger for `name`, if that client ever submitted.
    pub fn client(&self, name: &str) -> Option<&ClientQosStats> {
        self.clients.iter().find(|c| c.client == name)
    }

    /// Throttled submissions across all clients.
    pub fn total_throttled(&self) -> u64 {
        self.clients.iter().map(|c| c.throttled).sum()
    }

    /// Accepted submissions across all clients.
    pub fn total_accepted(&self) -> u64 {
        self.clients.iter().map(|c| c.accepted).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QosStats {
        QosStats {
            clients: vec![
                ClientQosStats {
                    client: "batch".into(),
                    weight: 1.0,
                    accepted: 40,
                    throttled: 160,
                    served: 38,
                    expired: 2,
                    attained_service: 40.0,
                    deadline_hits: 0,
                    deadline_misses: 0,
                },
                ClientQosStats {
                    client: "latency".into(),
                    weight: 4.0,
                    accepted: 100,
                    throttled: 0,
                    served: 100,
                    expired: 0,
                    attained_service: 100.0,
                    deadline_hits: 99,
                    deadline_misses: 1,
                },
            ],
        }
    }

    #[test]
    fn hit_rate_handles_deadline_free_clients() {
        let stats = sample();
        assert_eq!(stats.client("batch").unwrap().deadline_hit_rate(), 1.0);
        assert!((stats.client("latency").unwrap().deadline_hit_rate() - 0.99).abs() < 1e-9);
    }

    #[test]
    fn totals_aggregate_across_clients() {
        let stats = sample();
        assert_eq!(stats.total_throttled(), 160);
        assert_eq!(stats.total_accepted(), 140);
        assert!(stats.client("nobody").is_none());
    }

    #[test]
    fn qos_stats_round_trip_through_json() {
        let stats = sample();
        let json = serde::json::to_string(&stats);
        let back: QosStats = serde::json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        assert!(json.contains("\"attained_service\""));
        assert!(json.contains("\"deadline_hits\""));
    }

    #[test]
    fn client_entry_round_trips_through_json() {
        let entry = sample().clients[1].clone();
        let json = serde::json::to_string(&entry);
        let back: ClientQosStats = serde::json::from_str(&json).unwrap();
        assert_eq!(back, entry);
    }
}
