//! Open-loop arrival processes.
//!
//! An [`ArrivalGen`] turns an [`ArrivalSpec`] plus a seed into a
//! wall-clock submission schedule: a monotone sequence of offsets from
//! the load-generation epoch. The generator is *open-loop* by
//! construction — the schedule is fixed before the first job is
//! submitted, so submission times never react to completions and the
//! offered rate is exactly what the spec says it is.

use crate::SplitMix64;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A seeded arrival process at a target offered rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Memoryless arrivals: independent exponential gaps.
    Poisson {
        /// Mean arrival rate, jobs per second.
        rate_per_sec: f64,
    },
    /// Evenly spaced arrivals (an isochronous client).
    Deterministic {
        /// Arrival rate, jobs per second.
        rate_per_sec: f64,
    },
    /// Two-state Markov-modulated Poisson process (MMPP-2): Poisson
    /// arrivals whose rate switches between a quiet `base` phase and a
    /// `burst` phase, with exponentially distributed phase dwell times.
    Bursty {
        /// Arrival rate during the quiet phase, jobs per second.
        base_rate_per_sec: f64,
        /// Arrival rate during the burst phase, jobs per second.
        burst_rate_per_sec: f64,
        /// Mean dwell time of the burst phase, milliseconds.
        mean_burst_ms: f64,
        /// Mean dwell time of the quiet phase, milliseconds.
        mean_gap_ms: f64,
    },
}

impl ArrivalSpec {
    /// The long-run average offered rate in jobs per second (for MMPP
    /// the dwell-time-weighted mix of the two phase rates).
    pub fn offered_rate(&self) -> f64 {
        match *self {
            ArrivalSpec::Poisson { rate_per_sec } | ArrivalSpec::Deterministic { rate_per_sec } => {
                rate_per_sec
            }
            ArrivalSpec::Bursty {
                base_rate_per_sec,
                burst_rate_per_sec,
                mean_burst_ms,
                mean_gap_ms,
            } => {
                let total = mean_burst_ms + mean_gap_ms;
                if total <= 0.0 {
                    return 0.0;
                }
                (burst_rate_per_sec * mean_burst_ms + base_rate_per_sec * mean_gap_ms) / total
            }
        }
    }

    /// The same process shape rescaled to a new offered rate — the knob
    /// a load sweep turns. For MMPP both phase rates scale
    /// proportionally, so burstiness (the rate ratio and dwell times)
    /// is preserved.
    pub fn at_rate(&self, rate_per_sec: f64) -> ArrivalSpec {
        match *self {
            ArrivalSpec::Poisson { .. } => ArrivalSpec::Poisson { rate_per_sec },
            ArrivalSpec::Deterministic { .. } => ArrivalSpec::Deterministic { rate_per_sec },
            ArrivalSpec::Bursty {
                base_rate_per_sec,
                burst_rate_per_sec,
                mean_burst_ms,
                mean_gap_ms,
            } => {
                let current = self.offered_rate();
                let scale = if current > 0.0 {
                    rate_per_sec / current
                } else {
                    0.0
                };
                ArrivalSpec::Bursty {
                    base_rate_per_sec: base_rate_per_sec * scale,
                    burst_rate_per_sec: burst_rate_per_sec * scale,
                    mean_burst_ms,
                    mean_gap_ms,
                }
            }
        }
    }
}

/// A seeded iterator of arrival instants for one client.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    spec: ArrivalSpec,
    rng: SplitMix64,
    /// Seconds since the epoch of the last emitted arrival.
    clock: f64,
    /// MMPP state: currently in the burst phase?
    in_burst: bool,
    /// MMPP state: seconds left in the current phase.
    dwell_left: f64,
}

impl ArrivalGen {
    /// A generator for `spec` seeded with `seed`. MMPP starts in the
    /// quiet phase.
    pub fn new(spec: ArrivalSpec, seed: u64) -> ArrivalGen {
        let mut gen = ArrivalGen {
            spec,
            rng: SplitMix64::new(seed),
            clock: 0.0,
            in_burst: false,
            dwell_left: 0.0,
        };
        if let ArrivalSpec::Bursty { mean_gap_ms, .. } = spec {
            gen.dwell_left = gen
                .rng
                .next_exp(1000.0 / mean_gap_ms.max(f64::MIN_POSITIVE));
        }
        gen
    }

    /// The inter-arrival gap to the next arrival, in seconds;
    /// `f64::INFINITY` when the process can never fire (zero rates).
    fn next_gap(&mut self) -> f64 {
        match self.spec {
            ArrivalSpec::Poisson { rate_per_sec } => self.rng.next_exp(rate_per_sec),
            ArrivalSpec::Deterministic { rate_per_sec } => {
                if rate_per_sec > 0.0 {
                    1.0 / rate_per_sec
                } else {
                    f64::INFINITY
                }
            }
            ArrivalSpec::Bursty {
                base_rate_per_sec,
                burst_rate_per_sec,
                mean_burst_ms,
                mean_gap_ms,
            } => {
                let mut gap = 0.0;
                // Walk phases until an arrival lands inside one.
                for _ in 0..10_000 {
                    let rate = if self.in_burst {
                        burst_rate_per_sec
                    } else {
                        base_rate_per_sec
                    };
                    let candidate = self.rng.next_exp(rate);
                    if candidate <= self.dwell_left {
                        self.dwell_left -= candidate;
                        return gap + candidate;
                    }
                    gap += self.dwell_left;
                    self.in_burst = !self.in_burst;
                    let mean_ms = if self.in_burst {
                        mean_burst_ms
                    } else {
                        mean_gap_ms
                    };
                    self.dwell_left = self.rng.next_exp(1000.0 / mean_ms.max(f64::MIN_POSITIVE));
                }
                f64::INFINITY
            }
        }
    }

    /// The next arrival as an offset from the epoch, or `None` once the
    /// process can no longer fire.
    pub fn next_offset(&mut self) -> Option<Duration> {
        let gap = self.next_gap();
        if !gap.is_finite() {
            return None;
        }
        self.clock += gap;
        Some(Duration::from_secs_f64(self.clock))
    }

    /// The first `n` arrival offsets.
    pub fn schedule(&mut self, n: usize) -> Vec<Duration> {
        let mut offsets = Vec::with_capacity(n);
        while offsets.len() < n {
            match self.next_offset() {
                Some(t) => offsets.push(t),
                None => break,
            }
        }
        offsets
    }

    /// All arrival offsets strictly before `horizon`.
    pub fn schedule_for(&mut self, horizon: Duration) -> Vec<Duration> {
        let mut offsets = Vec::new();
        while let Some(t) = self.next_offset() {
            if t >= horizon {
                break;
            }
            offsets.push(t);
        }
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let spec = ArrivalSpec::Poisson {
            rate_per_sec: 500.0,
        };
        let a = ArrivalGen::new(spec, 9).schedule(256);
        let b = ArrivalGen::new(spec, 9).schedule(256);
        let c = ArrivalGen::new(spec, 10).schedule(256);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn schedules_are_strictly_monotone() {
        for spec in [
            ArrivalSpec::Poisson {
                rate_per_sec: 800.0,
            },
            ArrivalSpec::Deterministic {
                rate_per_sec: 800.0,
            },
            ArrivalSpec::Bursty {
                base_rate_per_sec: 100.0,
                burst_rate_per_sec: 2000.0,
                mean_burst_ms: 5.0,
                mean_gap_ms: 20.0,
            },
        ] {
            let offsets = ArrivalGen::new(spec, 1).schedule(512);
            assert_eq!(offsets.len(), 512);
            for pair in offsets.windows(2) {
                assert!(pair[0] < pair[1], "{spec:?}");
            }
        }
    }

    #[test]
    fn deterministic_spacing_is_exact() {
        let offsets = ArrivalGen::new(
            ArrivalSpec::Deterministic {
                rate_per_sec: 100.0,
            },
            0,
        )
        .schedule(10);
        for (i, t) in offsets.iter().enumerate() {
            let expect = (i + 1) as f64 * 0.01;
            assert!((t.as_secs_f64() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn achieved_rate_tracks_offered_rate() {
        let horizon = Duration::from_secs(20);
        for spec in [
            ArrivalSpec::Poisson {
                rate_per_sec: 300.0,
            },
            ArrivalSpec::Bursty {
                base_rate_per_sec: 50.0,
                burst_rate_per_sec: 1000.0,
                mean_burst_ms: 10.0,
                mean_gap_ms: 30.0,
            },
        ] {
            let n = ArrivalGen::new(spec, 77).schedule_for(horizon).len() as f64;
            let achieved = n / horizon.as_secs_f64();
            let offered = spec.offered_rate();
            assert!(
                (achieved - offered).abs() < offered * 0.15,
                "{spec:?}: achieved {achieved} vs offered {offered}"
            );
        }
    }

    #[test]
    fn rescaling_preserves_shape_and_hits_target() {
        let spec = ArrivalSpec::Bursty {
            base_rate_per_sec: 50.0,
            burst_rate_per_sec: 1000.0,
            mean_burst_ms: 10.0,
            mean_gap_ms: 30.0,
        };
        let doubled = spec.at_rate(spec.offered_rate() * 2.0);
        assert!((doubled.offered_rate() - spec.offered_rate() * 2.0).abs() < 1e-9);
        if let (
            ArrivalSpec::Bursty {
                base_rate_per_sec: b0,
                burst_rate_per_sec: p0,
                ..
            },
            ArrivalSpec::Bursty {
                base_rate_per_sec: b1,
                burst_rate_per_sec: p1,
                ..
            },
        ) = (spec, doubled)
        {
            // Burstiness (the phase-rate ratio) is preserved.
            assert!((p1 / b1 - p0 / b0).abs() < 1e-9);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn zero_rate_process_yields_empty_schedule() {
        let offsets = ArrivalGen::new(ArrivalSpec::Poisson { rate_per_sec: 0.0 }, 5).schedule(4);
        assert!(offsets.is_empty());
    }

    #[test]
    fn arrival_spec_round_trips_through_json() {
        for spec in [
            ArrivalSpec::Poisson {
                rate_per_sec: 123.5,
            },
            ArrivalSpec::Deterministic { rate_per_sec: 10.0 },
            ArrivalSpec::Bursty {
                base_rate_per_sec: 1.0,
                burst_rate_per_sec: 9.0,
                mean_burst_ms: 2.5,
                mean_gap_ms: 7.5,
            },
        ] {
            let json = serde::json::to_string(&spec);
            let back: ArrivalSpec = serde::json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }
}
