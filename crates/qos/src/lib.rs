//! QoS serving subsystem for the CORUSCANT stack.
//!
//! Three pillars, wired through server → runtime → bench:
//!
//! 1. **Open-loop load generation** ([`arrival`]): seeded arrival
//!    processes (Poisson, deterministic, bursty/MMPP-2) that produce a
//!    wall-clock submission schedule *independent of completions*, so a
//!    sweep over offered rate can expose the saturation knee that a
//!    closed-loop client fleet structurally cannot show.
//! 2. **Weighted fair queueing** ([`wfq`]): a virtual-time start-time
//!    fair-queueing stage for server admission — per-client weights,
//!    optional absolute rate quotas (token buckets), and a
//!    congestion-gated lag envelope that throttles clients running too
//!    far ahead of virtual time only when the runtime queue is under
//!    pressure (work conservation when it is not).
//! 3. **Per-client accounting** ([`stats`]): [`QosStats`] /
//!    [`ClientQosStats`] snapshots (accepted / throttled / served /
//!    expired, attained service, deadline hit-rate) that the server
//!    surfaces through its `ServerStats`.
//!
//! The deadline-aware (EDF) *issue* policy itself lives in
//! `coruscant-runtime` (`IssuePolicy`), keeping this crate free of a
//! runtime dependency; this crate owns everything admission-side.

pub mod arrival;
pub mod stats;
pub mod wfq;

pub use arrival::{ArrivalGen, ArrivalSpec};
pub use stats::{ClientQosStats, QosStats};
pub use wfq::{ClientConfig, FairQueue, QosOptions, RateQuota, Throttle};

/// SplitMix64: the seeded generator behind every arrival process.
///
/// Tiny, splittable, and stable across platforms — the same seed always
/// yields the same submission schedule, which is what makes open-loop
/// bench arms replayable.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential draw with rate `rate_per_sec` (mean `1/rate`), in
    /// seconds. A non-positive rate yields `f64::INFINITY` (the event
    /// never fires), which the MMPP state machine relies on for silent
    /// gap phases.
    pub fn next_exp(&mut self, rate_per_sec: f64) -> f64 {
        if rate_per_sec <= 0.0 {
            return f64::INFINITY;
        }
        let u = self.next_f64();
        -(1.0 - u).ln() / rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::SplitMix64;

    #[test]
    fn splitmix_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_draws_stay_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_tracks_rate() {
        let mut r = SplitMix64::new(11);
        let rate = 250.0;
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.next_exp(rate)).sum();
        let mean = total / n as f64;
        let expect = 1.0 / rate;
        assert!(
            (mean - expect).abs() < expect * 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut r = SplitMix64::new(3);
        assert!(r.next_exp(0.0).is_infinite());
        assert!(r.next_exp(-1.0).is_infinite());
    }
}
