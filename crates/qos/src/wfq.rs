//! Virtual-time weighted fair queueing over server admission.
//!
//! [`FairQueue`] implements start-time fair queueing (SFQ) adapted to
//! an admission stage: each client `i` carries a finish tag `F_i`; an
//! admitted job of cost `c` starts at `S = max(V, F_i)` and advances
//! the tag to `F_i = S + c / w_i` where `w_i` is the client's weight.
//! Virtual time `V` advances to the minimum finish tag over *backlogged*
//! clients (those with admitted-but-unresolved jobs), so `V` tracks the
//! normalized service of the slowest backlogged client and is monotone
//! by construction.
//!
//! Two throttles sit on top of the tags:
//!
//! - **Quota** (absolute): an optional per-client token bucket. A
//!   client over its rate quota is refused regardless of system load —
//!   this is what pins a misbehaving client to its contracted rate.
//! - **Share** (relative, congestion-gated): when the runtime queue is
//!   at least `share_shed_at` full, a client whose start tag would run
//!   more than `lag_envelope` virtual-time units ahead of `V` is
//!   refused. With a quiet queue the envelope is not enforced, keeping
//!   admission work-conserving.

use crate::stats::{ClientQosStats, QosStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// An absolute per-client rate contract (token bucket).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateQuota {
    /// Sustained refill rate, jobs per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: f64,
}

impl RateQuota {
    /// A quota of `rate_per_sec` sustained with bursts up to `burst`.
    pub fn new(rate_per_sec: f64, burst: f64) -> RateQuota {
        RateQuota {
            rate_per_sec,
            burst,
        }
    }
}

/// Static per-client configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Client identity as it appears on `SubmitOptions`.
    pub name: String,
    /// WFQ weight: relative share of service under contention.
    pub weight: f64,
    /// Optional absolute rate quota.
    pub quota: Option<RateQuota>,
}

impl ClientConfig {
    /// A client with `weight` and no quota.
    pub fn new(name: impl Into<String>, weight: f64) -> ClientConfig {
        ClientConfig {
            name: name.into(),
            weight,
            quota: None,
        }
    }

    /// Attaches an absolute rate quota.
    pub fn with_quota(mut self, quota: RateQuota) -> ClientConfig {
        self.quota = Some(quota);
        self
    }
}

/// Configuration for the server's fair-queueing admission stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosOptions {
    /// Master switch; off means the stage is bypassed entirely and the
    /// server behaves bit-identically to a QoS-free build.
    pub enabled: bool,
    /// Pre-registered clients. Unknown clients are registered on first
    /// submission with `default_weight` and no quota.
    pub clients: Vec<ClientConfig>,
    /// Weight for clients not listed in `clients`.
    pub default_weight: f64,
    /// How far (virtual-time units) a client's start tag may run ahead
    /// of virtual time before the share throttle refuses it — only
    /// enforced under congestion.
    pub lag_envelope: f64,
    /// Queue-fullness fraction at which the share throttle engages.
    pub share_shed_at: f64,
}

impl Default for QosOptions {
    fn default() -> QosOptions {
        QosOptions {
            enabled: false,
            clients: Vec::new(),
            default_weight: 1.0,
            lag_envelope: 32.0,
            share_shed_at: 0.5,
        }
    }
}

impl QosOptions {
    /// Turns the stage on.
    pub fn enabled(mut self) -> QosOptions {
        self.enabled = true;
        self
    }

    /// Pre-registers a client.
    pub fn with_client(mut self, client: ClientConfig) -> QosOptions {
        self.clients.push(client);
        self
    }

    /// Overrides the weight given to unregistered clients.
    pub fn with_default_weight(mut self, weight: f64) -> QosOptions {
        self.default_weight = weight;
        self
    }

    /// Overrides the share-throttle lag envelope.
    pub fn with_lag_envelope(mut self, envelope: f64) -> QosOptions {
        self.lag_envelope = envelope;
        self
    }

    /// Overrides the congestion threshold for the share throttle.
    pub fn with_share_shed_at(mut self, fraction: f64) -> QosOptions {
        self.share_shed_at = fraction;
        self
    }
}

/// Why the fair-queueing stage refused a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throttle {
    /// The client's absolute rate quota is exhausted.
    Quota,
    /// Under congestion, the client's share of service is used up (its
    /// start tag ran past the lag envelope).
    Share,
}

#[derive(Debug)]
struct Bucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: Option<Instant>,
}

impl Bucket {
    fn new(quota: RateQuota) -> Bucket {
        Bucket {
            rate_per_sec: quota.rate_per_sec,
            burst: quota.burst,
            tokens: quota.burst,
            last: None,
        }
    }

    fn try_take(&mut self, now: Instant) -> bool {
        if let Some(last) = self.last {
            let dt = now.saturating_duration_since(last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        }
        self.last = Some(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[derive(Debug)]
struct ClientState {
    name: String,
    weight: f64,
    bucket: Option<Bucket>,
    finish: f64,
    accepted: u64,
    throttled: u64,
    served: u64,
    expired: u64,
    attained: f64,
    deadline_hits: u64,
    deadline_misses: u64,
}

impl ClientState {
    fn new(name: String, weight: f64, quota: Option<RateQuota>) -> ClientState {
        ClientState {
            name,
            // Degenerate weights would make finish tags jump to
            // infinity; clamp instead of panicking on bad config.
            weight: weight.max(1e-9),
            bucket: quota.map(Bucket::new),
            finish: 0.0,
            accepted: 0,
            throttled: 0,
            served: 0,
            expired: 0,
            attained: 0.0,
            deadline_hits: 0,
            deadline_misses: 0,
        }
    }

    /// Admitted jobs not yet resolved — the backlog signal virtual
    /// time advances on.
    fn inflight(&self) -> u64 {
        self.accepted.saturating_sub(self.served + self.expired)
    }
}

/// The server-side fair-queueing admission stage.
#[derive(Debug)]
pub struct FairQueue {
    options: QosOptions,
    vtime: f64,
    clients: Vec<ClientState>,
    by_name: HashMap<String, usize>,
}

impl FairQueue {
    /// A stage configured by `options`, with its listed clients
    /// pre-registered.
    pub fn new(options: QosOptions) -> FairQueue {
        let mut fq = FairQueue {
            options: options.clone(),
            vtime: 0.0,
            clients: Vec::new(),
            by_name: HashMap::new(),
        };
        for c in options.clients {
            fq.register(&c.name, c.weight, c.quota);
        }
        fq
    }

    /// Whether the stage is switched on at all.
    pub fn is_enabled(&self) -> bool {
        self.options.enabled
    }

    /// Current virtual time (monotone).
    pub fn vtime(&self) -> f64 {
        self.vtime
    }

    /// How far `name`'s finish tag runs ahead of virtual time, if the
    /// client is known.
    pub fn lag(&self, name: &str) -> Option<f64> {
        let id = *self.by_name.get(name)?;
        Some((self.clients[id].finish - self.vtime).max(0.0))
    }

    fn register(&mut self, name: &str, weight: f64, quota: Option<RateQuota>) -> usize {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.clients.len();
        self.clients
            .push(ClientState::new(name.to_string(), weight, quota));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Resolves (registering on first sight) the internal id for
    /// `name`. The id is stable for the stage's lifetime and is what
    /// [`FairQueue::record_served`] / [`FairQueue::record_expired`]
    /// take back.
    pub fn client_id(&mut self, name: &str) -> usize {
        let weight = self.options.default_weight;
        self.register(name, weight, None)
    }

    /// Runs one submission of `cost` service units from `name` through
    /// the quota and share throttles. `queue_len` / `queue_capacity`
    /// describe the runtime queue (the congestion signal); `now` feeds
    /// the quota buckets. Returns the client id on admit.
    pub fn admit(
        &mut self,
        name: &str,
        cost: f64,
        queue_len: usize,
        queue_capacity: usize,
        now: Instant,
    ) -> Result<usize, Throttle> {
        let id = self.client_id(name);
        let congested = queue_capacity > 0
            && queue_len as f64 >= self.options.share_shed_at * queue_capacity as f64;
        let start = self.vtime.max(self.clients[id].finish);
        // Share throttle first: a share-shed submission must not burn
        // quota tokens.
        if congested && start - self.vtime > self.options.lag_envelope {
            self.clients[id].throttled += 1;
            return Err(Throttle::Share);
        }
        if let Some(bucket) = self.clients[id].bucket.as_mut() {
            if !bucket.try_take(now) {
                self.clients[id].throttled += 1;
                return Err(Throttle::Quota);
            }
        }
        let client = &mut self.clients[id];
        client.finish = start + cost / client.weight;
        client.accepted += 1;
        client.attained += cost;
        self.advance_vtime();
        Ok(id)
    }

    /// Advances virtual time to the slowest backlogged client's finish
    /// tag. With no backlog V holds still; `max` keeps it monotone
    /// even if a backlogged client sits behind it.
    fn advance_vtime(&mut self) {
        let min_backlogged = self
            .clients
            .iter()
            .filter(|c| c.inflight() > 0)
            .map(|c| c.finish)
            .fold(f64::INFINITY, f64::min);
        if min_backlogged.is_finite() {
            self.vtime = self.vtime.max(min_backlogged);
        }
    }

    /// Records that an admitted job of client `id` resolved with a
    /// result. `deadline_met` is `Some(hit)` when the job carried a
    /// deadline.
    pub fn record_served(&mut self, id: usize, deadline_met: Option<bool>) {
        let Some(client) = self.clients.get_mut(id) else {
            return;
        };
        client.served += 1;
        match deadline_met {
            Some(true) => client.deadline_hits += 1,
            Some(false) => client.deadline_misses += 1,
            None => {}
        }
        // A resolved job shrinks the backlog, which can unpin V (the
        // resolved client may no longer be the slowest backlogged one).
        self.advance_vtime();
    }

    /// Records that an admitted job of client `id` expired (deadline
    /// cancel) before executing.
    pub fn record_expired(&mut self, id: usize) {
        let Some(client) = self.clients.get_mut(id) else {
            return;
        };
        client.expired += 1;
        self.advance_vtime();
    }

    /// Snapshot of every client's ledger, name-sorted.
    pub fn stats(&self) -> QosStats {
        let mut clients: Vec<ClientQosStats> = self
            .clients
            .iter()
            .map(|c| ClientQosStats {
                client: c.name.clone(),
                weight: c.weight,
                accepted: c.accepted,
                throttled: c.throttled,
                served: c.served,
                expired: c.expired,
                attained_service: c.attained,
                deadline_hits: c.deadline_hits,
                deadline_misses: c.deadline_misses,
            })
            .collect();
        clients.sort_by(|a, b| a.client.cmp(&b.client));
        QosStats { clients }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stage(options: QosOptions) -> FairQueue {
        FairQueue::new(options.enabled())
    }

    #[test]
    fn lone_client_is_never_share_throttled() {
        let mut fq = stage(QosOptions::default().with_lag_envelope(4.0));
        let now = Instant::now();
        for _ in 0..1000 {
            // Fully congested queue the whole time.
            fq.admit("solo", 1.0, 8, 8, now).expect("admitted");
        }
        assert_eq!(fq.stats().client("solo").unwrap().accepted, 1000);
        // Virtual time tracked the lone client's finish tag, so lag
        // stayed inside one job's worth.
        assert!(fq.lag("solo").unwrap() <= 1.0 + 1e-9);
    }

    #[test]
    fn zero_rate_quota_admits_exactly_the_burst() {
        let options = QosOptions::default()
            .with_client(ClientConfig::new("capped", 1.0).with_quota(RateQuota::new(0.0, 3.0)));
        let mut fq = stage(options);
        let now = Instant::now();
        let mut admitted = 0;
        for _ in 0..50 {
            if fq.admit("capped", 1.0, 0, 8, now).is_ok() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 3);
        let entry = fq.stats().client("capped").unwrap().clone();
        assert_eq!(entry.accepted, 3);
        assert_eq!(entry.throttled, 47);
    }

    #[test]
    fn quota_refills_over_wall_clock_time() {
        let options = QosOptions::default()
            .with_client(ClientConfig::new("metered", 1.0).with_quota(RateQuota::new(100.0, 1.0)));
        let mut fq = stage(options);
        let t0 = Instant::now();
        assert!(fq.admit("metered", 1.0, 0, 8, t0).is_ok());
        assert_eq!(fq.admit("metered", 1.0, 0, 8, t0), Err(Throttle::Quota));
        // 50 ms at 100/s refills 5 tokens, capped at burst 1.
        let t1 = t0 + std::time::Duration::from_millis(50);
        assert!(fq.admit("metered", 1.0, 0, 8, t1).is_ok());
        assert_eq!(fq.admit("metered", 1.0, 0, 8, t1), Err(Throttle::Quota));
    }

    #[test]
    fn share_throttle_only_engages_under_congestion() {
        let run = |queue_len: usize| {
            let mut fq = stage(QosOptions::default().with_lag_envelope(2.0));
            let now = Instant::now();
            // "slow" keeps one admit outstanding so virtual time stays
            // pinned near its tag while "greedy" races ahead.
            fq.admit("slow", 1.0, queue_len, 8, now).unwrap();
            let mut greedy_ok = 0;
            for _ in 0..100 {
                if fq.admit("greedy", 1.0, queue_len, 8, now).is_ok() {
                    greedy_ok += 1;
                }
            }
            greedy_ok
        };
        // Congested (8/8 full): the envelope caps the greedy client.
        assert!(run(8) < 10, "congested run admitted {}", run(8));
        // Quiet queue: work conserving, everything goes through.
        assert_eq!(run(0), 100);
    }

    #[test]
    fn resolved_backlog_releases_virtual_time() {
        let mut fq = stage(QosOptions::default().with_lag_envelope(2.0));
        let now = Instant::now();
        let slow = fq.admit("slow", 1.0, 8, 8, now).unwrap();
        for _ in 0..10 {
            let _ = fq.admit("greedy", 1.0, 8, 8, now);
        }
        let pinned = fq.vtime();
        // Once the slow client's backlog resolves, the next admit
        // advances virtual time past its tag.
        fq.record_served(slow, None);
        let _ = fq.admit("greedy", 1.0, 8, 8, now);
        assert!(fq.vtime() > pinned);
    }

    #[test]
    fn options_round_trip_through_json() {
        let options = QosOptions::default()
            .enabled()
            .with_default_weight(2.0)
            .with_lag_envelope(16.0)
            .with_share_shed_at(0.75)
            .with_client(ClientConfig::new("latency", 4.0))
            .with_client(ClientConfig::new("batch", 1.0).with_quota(RateQuota::new(250.0, 16.0)));
        let json = serde::json::to_string(&options);
        let back: QosOptions = serde::json::from_str(&json).unwrap();
        assert_eq!(back, options);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Virtual time never moves backwards, whatever the mix of
        /// admits, throttles, and resolutions.
        #[test]
        fn virtual_time_is_monotone(
            ops in proptest::collection::vec(
                (0usize..4, 1u32..6, 0usize..9, any::<bool>()),
                1..300,
            ),
        ) {
            let mut fq = stage(QosOptions::default().with_lag_envelope(4.0));
            let now = Instant::now();
            let mut last = fq.vtime();
            for (client, cost, depth, resolve) in ops {
                let name = format!("c{client}");
                let admitted = fq.admit(&name, cost as f64, depth, 8, now);
                prop_assert!(fq.vtime() >= last);
                last = fq.vtime();
                if resolve {
                    if let Ok(id) = admitted {
                        fq.record_served(id, None);
                    }
                }
            }
        }

        /// Under congestion every admitted job leaves its client's
        /// finish tag within `lag_envelope + cost/weight` of virtual
        /// time — the bounded-lag envelope the share throttle enforces.
        #[test]
        fn admitted_lag_is_bounded_under_congestion(
            envelope in 1u32..16,
            ops in proptest::collection::vec((0usize..4, 1u32..6), 1..300),
        ) {
            let envelope = envelope as f64;
            let mut fq = stage(
                QosOptions::default()
                    .with_lag_envelope(envelope)
                    .with_default_weight(1.0),
            );
            let now = Instant::now();
            for (client, cost) in ops {
                let name = format!("c{client}");
                let cost = cost as f64;
                // Queue pinned at capacity: the envelope always applies.
                if fq.admit(&name, cost, 8, 8, now).is_ok() {
                    let lag = fq.lag(&name).unwrap();
                    prop_assert!(
                        lag <= envelope + cost + 1e-9,
                        "lag {lag} vs envelope {envelope} + cost {cost}",
                    );
                }
            }
        }

        /// Two continuously backlogged clients receive service in
        /// proportion to their weights, within the envelope bound:
        /// |A1/w1 - A2/w2| <= lag_envelope + 2/w1 + 2/w2. (The doubled
        /// per-client term covers the SFQ join offset: the second
        /// client's first start tag is the virtual time the first
        /// client already advanced by one admit.)
        #[test]
        fn attained_service_tracks_weights(
            w1 in 1u32..8,
            w2 in 1u32..8,
            rounds in 50usize..400,
        ) {
            let (w1, w2) = (w1 as f64, w2 as f64);
            let envelope = 8.0;
            let mut fq = stage(
                QosOptions::default()
                    .with_lag_envelope(envelope)
                    .with_client(ClientConfig::new("a", w1))
                    .with_client(ClientConfig::new("b", w2)),
            );
            let now = Instant::now();
            for _ in 0..rounds {
                // Strictly alternating offers, always congested, never
                // resolved: both clients stay backlogged throughout.
                let _ = fq.admit("a", 1.0, 8, 8, now);
                let _ = fq.admit("b", 1.0, 8, 8, now);
            }
            let stats = fq.stats();
            let a = stats.client("a").unwrap();
            let b = stats.client("b").unwrap();
            let gap = (a.attained_service / w1 - b.attained_service / w2).abs();
            let bound = envelope + 2.0 / w1 + 2.0 / w2 + 1e-9;
            prop_assert!(
                gap <= bound,
                "normalized attained gap {gap} vs bound {bound} (w1={w1} w2={w2})",
            );
        }
    }
}
