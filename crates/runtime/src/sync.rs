//! Poison-tolerant locking helpers.
//!
//! A `Mutex` is *poisoned* when a thread panics while holding it; every
//! later `lock().unwrap()` then propagates the panic, so one software
//! fault cascades through every thread that touches the same state.
//! None of the runtime's shared state holds cross-field invariants that
//! a mid-update panic could break (counters, queues of owned values,
//! already-validated messages), so recovery is always safe: take the
//! inner guard and keep going. These helpers centralize that decision —
//! shared paths say [`lock`] instead of `lock().unwrap()` and survive a
//! panicking peer.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering from poison.
pub fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering from poison.
pub fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, recovering the guard from poison.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv` with a timeout, recovering the guard from poison. The
/// timed-out flag is dropped — callers re-check their predicate and
/// deadline anyway.
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, timeout) {
        Ok((guard, _)) => guard,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn poisoned_mutex_recovers_instead_of_cascading() {
        let shared = Arc::new(Mutex::new(7u32));
        let clone = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(shared.is_poisoned(), "the panic poisoned the mutex");
        // A poison-tolerant lock still reads (and can repair) the state.
        assert_eq!(*lock(&shared), 7);
        *lock(&shared) = 8;
        assert_eq!(*lock(&shared), 8);
    }

    #[test]
    fn poisoned_rwlock_recovers() {
        let shared = Arc::new(RwLock::new(1u32));
        let clone = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = clone.write().unwrap();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*read(&shared), 1);
        *write(&shared) = 2;
        assert_eq!(*read(&shared), 2);
    }

    #[test]
    fn condvar_wait_survives_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let clone = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let mut started = lock(&clone.0);
            *started = true;
            clone.1.notify_all();
            panic!("poison while holding the condvar mutex");
        })
        .join();
        let (m, cv) = (&pair.0, &pair.1);
        let mut guard = lock(m);
        while !*guard {
            guard = wait_timeout(cv, guard, Duration::from_millis(10));
        }
        assert!(*guard);
    }
}
