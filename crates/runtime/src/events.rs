//! Optional JSONL event trace of a runtime session.
//!
//! Each event is one JSON object on its own line — `submit`, `issue`, and
//! `complete` records carrying the job id, bank, and modeled times — so a
//! session can be replayed or inspected with standard line-oriented
//! tooling.

use serde::Serialize;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Event {
    /// A job entered the queue.
    Submit {
        /// Job id.
        job: u64,
    },
    /// A submission was served from the compiled-program cache (the pass
    /// pipeline was skipped).
    CacheHit {
        /// Job id.
        job: u64,
    },
    /// The scheduler spliced two or more same-unit jobs into one batched
    /// program and issued it under a single sequence number.
    Batch {
        /// Issue sequence number shared by the whole batch.
        seq: u64,
        /// Resolved bank.
        bank: usize,
        /// Member job ids, in splice order.
        jobs: Vec<u64>,
    },
    /// The scheduler issued a job to a worker.
    Issue {
        /// Job id.
        job: u64,
        /// Issue sequence number.
        seq: u64,
        /// Resolved bank.
        bank: usize,
        /// Worker shard the job went to.
        shard: usize,
    },
    /// A job completed, with its modeled times.
    Complete {
        /// Job id.
        job: u64,
        /// Resolved bank.
        bank: usize,
        /// Memory cycles waited before starting.
        wait: u64,
        /// Modeled completion time (memory cycles).
        done: u64,
    },
    /// A still-queued job was dropped by [`Runtime::cancel`](crate::Runtime::cancel);
    /// it never reached a bank and reports no outcome.
    Cancelled {
        /// Job id.
        job: u64,
    },
    /// A still-queued job was found past its deadline at issue time and
    /// dropped as expired; it never reached a bank and reports no
    /// outcome.
    Expired {
        /// Job id.
        job: u64,
    },
    /// A protected job attempt detected at least one fault.
    FaultDetected {
        /// Job id.
        job: u64,
        /// Bank the faulty attempt ran on.
        bank: usize,
        /// Dispatch attempt (0 = first placement).
        attempt: u32,
        /// Faults the protection detected in this attempt.
        faults: u64,
    },
    /// An unverified job was re-dispatched to a different bank.
    Redispatch {
        /// Job id.
        job: u64,
        /// Bank the unverified attempt ran on.
        from_bank: usize,
        /// Bank the job was re-routed to.
        to_bank: usize,
        /// The new dispatch attempt number.
        attempt: u32,
    },
    /// A bank crossed the suspect threshold.
    BankSuspect {
        /// Bank index.
        bank: usize,
        /// Leaky-bucket score at the transition.
        score: u32,
    },
    /// A bank was quarantined (sticky for the rest of the session).
    BankQuarantined {
        /// Bank index.
        bank: usize,
        /// Leaky-bucket score at the transition.
        score: u32,
    },
    /// A dependency-gated job's predecessors all retired; the job was
    /// handed to placement.
    Released {
        /// Job id.
        job: u64,
    },
    /// A resident weight pin materialized on a bank.
    ResidentPinned {
        /// Residency id.
        res: u64,
        /// The pin job that loads the weights.
        job: u64,
        /// Bank hosting the resident rows.
        bank: usize,
    },
    /// Quarantine moved a residency: a re-materialization job re-loads
    /// the pinned weights on a healthy bank before any dependent job
    /// re-places there.
    Rematerialized {
        /// Residency id.
        res: u64,
        /// The re-materialization job's id.
        job: u64,
        /// The quarantined bank the weights left.
        from_bank: usize,
        /// The healthy bank now hosting them.
        to_bank: usize,
    },
    /// A position-code scrub pass over a bank completed.
    Scrub {
        /// Bank index.
        bank: usize,
        /// Wires commanded back to canonical alignment.
        realigned: u64,
        /// Wires whose position code repaired a misalignment.
        repaired: u64,
    },
    /// A worker shard went down (panic caught or in-flight attempt
    /// declared hung); its queued work is re-dispatched.
    ShardDown {
        /// Worker shard index.
        shard: usize,
        /// `true` when the watchdog took the shard down, `false` for a
        /// caught panic.
        hung: bool,
    },
    /// A replacement worker took over a down shard.
    ShardRestart {
        /// Worker shard index.
        shard: usize,
        /// Restarts of this shard so far (1 = first restart).
        restarts: u32,
    },
    /// An in-flight attempt exceeded its watchdog budget.
    AttemptHung {
        /// Job id.
        job: u64,
        /// Bank the attempt was running on.
        bank: usize,
        /// Dispatch attempt (0 = first placement).
        attempt: u32,
        /// The budget that was exceeded, in microseconds.
        budget_us: u64,
    },
    /// An idle parallel-scheduling domain stole queued submissions from
    /// a sibling domain's injector.
    Steal {
        /// Domain the submissions were taken from.
        from: usize,
        /// Domain that took (and will place) them.
        to: usize,
        /// Job ids moved, in queue order.
        jobs: Vec<u64>,
    },
    /// A program fingerprint crossed the poison-quarantine threshold;
    /// further submissions of it are refused at admission.
    PoisonQuarantine {
        /// Structural, placement-normalized program hash.
        fingerprint: u64,
        /// Hung attempts attributed to the fingerprint.
        strikes: u32,
    },
}

/// A thread-safe JSONL sink.
#[derive(Debug)]
pub struct EventTrace {
    out: Mutex<BufWriter<File>>,
}

impl EventTrace {
    /// Creates (truncates) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<EventTrace> {
        Ok(EventTrace {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Appends one event as a JSON line. I/O errors are swallowed — the
    /// trace is diagnostics, not a correctness surface.
    pub fn record(&self, event: &Event) {
        let line = serde::json::to_string(event);
        let mut out = crate::sync::lock(&self.out);
        let _ = writeln!(out, "{line}");
    }

    /// Flushes buffered events to disk.
    pub fn flush(&self) {
        let _ = crate::sync::lock(&self.out).flush();
    }
}

impl Drop for EventTrace {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_written_one_json_object_per_line() {
        let path = std::env::temp_dir().join("coruscant_runtime_events_test.jsonl");
        {
            let trace = EventTrace::create(&path).unwrap();
            trace.record(&Event::Submit { job: 1 });
            trace.record(&Event::Issue {
                job: 1,
                seq: 0,
                bank: 3,
                shard: 1,
            });
            trace.record(&Event::Complete {
                job: 1,
                bank: 3,
                wait: 0,
                done: 21,
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("Submit"));
        assert!(lines[1].contains("\"bank\":3"));
        assert!(lines[2].contains("\"done\":21"));
        // Every line parses back as a JSON value.
        for line in lines {
            serde::json::parse(line).unwrap();
        }
    }
}
