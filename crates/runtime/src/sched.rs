//! The bank-parallel scheduler: per-bank FIFOs issued in circular-bank
//! order (paper §V-C).
//!
//! Jobs land in the FIFO of the bank their placement resolves to. Issue
//! then walks the banks in a circular fashion — one job from each
//! non-empty FIFO per sweep — so consecutive issues target *different*
//! banks whenever possible and their internal PIM latencies overlap.
//! Same-bank jobs stay FIFO within their queue and therefore serialize,
//! exactly as the bank-occupancy model in the memory controller charges
//! them.

use crate::job::PimJob;
use crate::stats::Histogram;
use coruscant_core::program::Step;
use coruscant_mem::DbcLocation;
use std::collections::VecDeque;

/// How the runtime places `Placement::Auto` jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Successive jobs go to successive PIM units in bank-major order, so
    /// consecutive jobs occupy different banks (high-throughput mode,
    /// §V-C).
    #[default]
    Circular,
    /// Every job goes to PIM unit 0 — the paper's low-cost baseline where
    /// one bank serves all PIM traffic and operations serialize.
    SingleBank,
}

/// Within-bank issue order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IssuePolicy {
    /// Arrival order: jobs leave a bank's queue exactly as enqueued.
    #[default]
    Fifo,
    /// Earliest-deadline-first within each bank: an enqueued job is
    /// stably inserted before the first queued job with a *strictly*
    /// later deadline; deadline-free jobs sort last (`None` =
    /// +infinity). Equal deadlines — and every deadline-free job —
    /// keep arrival order, so the issue stream stays deterministic and
    /// a deadline-free workload is bit-identical to
    /// [`IssuePolicy::Fifo`]. Cross-bank order is untouched: the
    /// circular sweep, batch grouping, and seq assignment all operate
    /// on the (now deadline-sorted) queues unchanged.
    Edf,
}

/// A job bound to its resolved bank, carrying its issue sequence number
/// once the scheduler emits it.
#[derive(Debug)]
pub struct IssuedJob {
    /// Issue sequence number (global, dense from 0).
    pub seq: u64,
    /// The job, already retargeted to its unit.
    pub job: PimJob,
    /// Resolved bank.
    pub bank: usize,
}

/// A group of jobs issued together under one sequence number: either a
/// single job, or ≥2 consecutive same-unit jobs the batch fuser splices
/// into one program.
#[derive(Debug)]
pub struct IssuedBatch {
    /// Issue sequence number (global, dense from 0) shared by the group.
    pub seq: u64,
    /// Member jobs, in FIFO order; every member targets the same unit
    /// when `jobs.len() >= 2`.
    pub jobs: Vec<PimJob>,
    /// Resolved bank.
    pub bank: usize,
}

/// The PIM unit a placed job's program targets (`None` for an empty
/// program).
fn job_unit(job: &PimJob) -> Option<DbcLocation> {
    job.program.steps.first().map(Step::target)
}

/// The single PIM unit *every* step of the job targets, or `None` for an
/// empty or multi-unit program. Gathering non-consecutive jobs reorders
/// them past interveners, so it needs this stronger confinement check —
/// a first-step match is not enough.
fn confined_unit(job: &PimJob) -> Option<DbcLocation> {
    let mut steps = job.program.steps.iter();
    let first = steps.next().map(Step::target)?;
    steps.all(|s| s.target() == first).then_some(first)
}

/// How [`BankScheduler::issue_next_batch_grouped`] collects the members
/// of a batched dispatch from a bank's FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchGrouping {
    /// Group only *consecutive* same-unit jobs at the head of the FIFO.
    /// Never reorders anything, so it is always semantics-preserving and
    /// keeps the exact issue order of the unbatched scheduler.
    #[default]
    Consecutive,
    /// Additionally gather non-consecutive same-unit jobs from deeper in
    /// the FIFO, hopping over intervening jobs that are provably
    /// hazard-free (confined to a *different* unit, so the reorder
    /// cannot change what either job observes). Any job not confined to
    /// a single unit is a barrier that stops the scan. Deterministic for
    /// a given enqueue order, but the issue order differs from
    /// [`BatchGrouping::Consecutive`] — hence opt-in.
    SameUnit,
}

/// Per-bank FIFO queues plus the circular issue cursor.
#[derive(Debug)]
pub struct BankScheduler {
    fifos: Vec<VecDeque<PimJob>>,
    /// Next bank the circular sweep starts from.
    cursor: usize,
    /// Next issue sequence number.
    next_seq: u64,
    /// Gap between successive sequence numbers (1 for the classic
    /// global scheduler; the domain count for a parallel domain).
    seq_stride: u64,
    /// Queue depth observed at each enqueue.
    depth_hist: Histogram,
    pending: usize,
    /// Within-bank issue order (enforced at enqueue).
    policy: IssuePolicy,
}

impl BankScheduler {
    /// Creates a scheduler over `banks` bank queues.
    pub fn new(banks: usize) -> BankScheduler {
        BankScheduler::with_seq_stride(banks, 0, 1)
    }

    /// Creates a scheduler whose issue sequence numbers start at `start`
    /// and advance by `stride`. The parallel engine gives domain `d` of
    /// `S` the stream `d, d+S, d+2S, …` so sequence numbers stay
    /// globally unique without a shared counter, and the merged drain
    /// can order completions by `seq` alone.
    pub fn with_seq_stride(banks: usize, start: u64, stride: u64) -> BankScheduler {
        assert!(stride > 0, "seq stride must be positive");
        BankScheduler {
            fifos: (0..banks).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            next_seq: start,
            seq_stride: stride,
            depth_hist: Histogram::new(),
            pending: 0,
            policy: IssuePolicy::Fifo,
        }
    }

    /// Sets the within-bank issue order (builder style).
    pub fn with_policy(mut self, policy: IssuePolicy) -> BankScheduler {
        self.policy = policy;
        self
    }

    /// Jobs enqueued but not yet issued.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The distribution of per-bank queue depths sampled at enqueue time.
    pub fn depth_histogram(&self) -> &Histogram {
        &self.depth_hist
    }

    /// Adds a job to its bank's queue: at the back under
    /// [`IssuePolicy::Fifo`], or stably sorted by deadline under
    /// [`IssuePolicy::Edf`].
    pub fn enqueue(&mut self, job: PimJob, bank: usize) {
        let fifo = &mut self.fifos[bank];
        match self.policy {
            IssuePolicy::Fifo => fifo.push_back(job),
            IssuePolicy::Edf => {
                let pos = match job.deadline {
                    None => fifo.len(),
                    Some(d) => fifo
                        .iter()
                        .position(|queued| queued.deadline.is_none_or(|qd| qd > d))
                        .unwrap_or(fifo.len()),
                };
                fifo.insert(pos, job);
            }
        }
        self.depth_hist.record(fifo.len() as u64);
        self.pending += 1;
    }

    /// Issues the next job in circular-bank order: scan banks starting at
    /// the cursor, take the head of the first non-empty FIFO, and advance
    /// the cursor past that bank so the next issue prefers a *different*
    /// bank.
    pub fn issue_next(&mut self) -> Option<IssuedJob> {
        self.issue_next_where(|_| true)
    }

    /// Like [`BankScheduler::issue_next`], but only considers banks the
    /// `eligible` predicate accepts — the fault-aware scheduler passes an
    /// in-flight cap so a failing bank cannot absorb unbounded work
    /// before its health score catches up.
    pub fn issue_next_where<F: FnMut(usize) -> bool>(
        &mut self,
        mut eligible: F,
    ) -> Option<IssuedJob> {
        let banks = self.fifos.len();
        for off in 0..banks {
            let bank = (self.cursor + off) % banks;
            if !eligible(bank) {
                continue;
            }
            if let Some(job) = self.fifos[bank].pop_front() {
                self.cursor = (bank + 1) % banks;
                self.pending -= 1;
                let seq = self.next_seq;
                self.next_seq += self.seq_stride;
                return Some(IssuedJob { seq, job, bank });
            }
        }
        None
    }

    /// Like [`BankScheduler::issue_next_where`], but greedily groups up
    /// to `max_jobs` consecutive head-of-FIFO jobs that target the *same
    /// PIM unit* into one [`IssuedBatch`] under a single sequence number.
    /// With `max_jobs <= 1` every batch is a singleton, reproducing the
    /// unbatched issue order exactly.
    pub fn issue_next_batch_where<F: FnMut(usize) -> bool>(
        &mut self,
        max_jobs: usize,
        eligible: F,
    ) -> Option<IssuedBatch> {
        self.issue_next_batch_grouped(max_jobs, BatchGrouping::Consecutive, eligible)
    }

    /// Like [`BankScheduler::issue_next_batch_where`], with the member
    /// collection strategy chosen by `grouping` (see [`BatchGrouping`]).
    pub fn issue_next_batch_grouped<F: FnMut(usize) -> bool>(
        &mut self,
        max_jobs: usize,
        grouping: BatchGrouping,
        mut eligible: F,
    ) -> Option<IssuedBatch> {
        let banks = self.fifos.len();
        for off in 0..banks {
            let bank = (self.cursor + off) % banks;
            if !eligible(bank) {
                continue;
            }
            let Some(first) = self.fifos[bank].pop_front() else {
                continue;
            };
            self.cursor = (bank + 1) % banks;
            self.pending -= 1;
            let seq = self.next_seq;
            self.next_seq += self.seq_stride;
            let unit = job_unit(&first);
            let mut jobs = vec![first];
            if unit.is_some() {
                // Head run: consecutive same-unit jobs never reorder.
                while jobs.len() < max_jobs
                    && self.fifos[bank]
                        .front()
                        .is_some_and(|j| job_unit(j) == unit)
                {
                    jobs.push(self.fifos[bank].pop_front().expect("front checked"));
                    self.pending -= 1;
                }
                if grouping == BatchGrouping::SameUnit {
                    // Gather past hazard-free interveners: a candidate
                    // must be *confined* to the batch unit, every hopped
                    // job confined to a different unit (disjoint state),
                    // and any non-confined job is a barrier.
                    let mut idx = 0;
                    while jobs.len() < max_jobs && idx < self.fifos[bank].len() {
                        match confined_unit(&self.fifos[bank][idx]) {
                            Some(u) if Some(u) == unit => {
                                jobs.push(
                                    self.fifos[bank].remove(idx).expect("index bounds checked"),
                                );
                                self.pending -= 1;
                            }
                            Some(_) => idx += 1,
                            None => break,
                        }
                    }
                }
            }
            return Some(IssuedBatch { seq, jobs, bank });
        }
        None
    }

    /// Removes and returns every queued job of `bank`, in FIFO order —
    /// used when a bank is quarantined and its backlog must be re-routed.
    pub fn drain_bank(&mut self, bank: usize) -> Vec<PimJob> {
        let drained: Vec<PimJob> = self.fifos[bank].drain(..).collect();
        self.pending -= drained.len();
        drained
    }

    /// Issues everything pending, in circular-bank order.
    pub fn issue_all(&mut self) -> Vec<IssuedJob> {
        let mut out = Vec::with_capacity(self.pending);
        while let Some(issued) = self.issue_next() {
            out.push(issued);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Placement;
    use coruscant_core::program::PimProgram;
    use coruscant_mem::RowAddress;
    use std::sync::Arc;

    fn job(id: u64) -> PimJob {
        PimJob {
            id,
            program: Arc::new(PimProgram::default()),
            placement: Placement::Auto,
            deadline: None,
        }
    }

    fn job_due(id: u64, deadline_ms: u64) -> PimJob {
        PimJob {
            deadline: Some(base_instant() + std::time::Duration::from_millis(deadline_ms)),
            ..job(id)
        }
    }

    /// A fixed epoch so deadline offsets are comparable within a test.
    fn base_instant() -> std::time::Instant {
        use std::sync::OnceLock;
        static BASE: OnceLock<std::time::Instant> = OnceLock::new();
        *BASE.get_or_init(std::time::Instant::now)
    }

    /// A one-step program pinned to `unit`, so batch grouping sees it.
    fn job_at(id: u64, unit: DbcLocation) -> PimJob {
        PimJob {
            id,
            program: Arc::new(PimProgram {
                steps: vec![Step::Readout {
                    label: format!("j{id}"),
                    addr: RowAddress::new(unit, 4),
                    lane: 8,
                }],
            }),
            placement: Placement::Fixed(unit),
            deadline: None,
        }
    }

    #[test]
    fn circular_issue_interleaves_banks() {
        let mut s = BankScheduler::new(4);
        // Two jobs per bank on banks 0 and 1, one on bank 3.
        s.enqueue(job(0), 0);
        s.enqueue(job(1), 0);
        s.enqueue(job(2), 1);
        s.enqueue(job(3), 1);
        s.enqueue(job(4), 3);
        assert_eq!(s.pending(), 5);

        let order: Vec<(u64, usize)> = s.issue_all().iter().map(|i| (i.job.id, i.bank)).collect();
        // Sweep 1: bank 0 (job 0), bank 1 (job 2), bank 3 (job 4);
        // sweep 2: bank 0 (job 1), bank 1 (job 3).
        assert_eq!(order, vec![(0, 0), (2, 1), (4, 3), (1, 0), (3, 1)]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn same_bank_jobs_stay_fifo() {
        let mut s = BankScheduler::new(2);
        for id in 0..5 {
            s.enqueue(job(id), 1);
        }
        let ids: Vec<u64> = s.issue_all().iter().map(|i| i.job.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn seq_numbers_are_dense_and_ordered() {
        let mut s = BankScheduler::new(3);
        for id in 0..7 {
            s.enqueue(job(id), (id % 3) as usize);
        }
        let seqs: Vec<u64> = s.issue_all().iter().map(|i| i.seq).collect();
        assert_eq!(seqs, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn ineligible_banks_are_skipped_until_allowed() {
        let mut s = BankScheduler::new(3);
        s.enqueue(job(0), 0);
        s.enqueue(job(1), 1);
        // Bank 0 gated: the sweep starts at the cursor but takes bank 1.
        let first = s.issue_next_where(|b| b != 0).unwrap();
        assert_eq!((first.job.id, first.bank), (1, 1));
        // Nothing else is eligible.
        assert!(s.issue_next_where(|b| b != 0).is_none());
        assert_eq!(s.pending(), 1);
        // Once ungated, bank 0's job issues with the next dense seq.
        let second = s.issue_next().unwrap();
        assert_eq!((second.job.id, second.bank, second.seq), (0, 0, 1));
    }

    #[test]
    fn strided_seqs_are_disjoint_across_domains() {
        // Two domains with stride 2: evens and odds, no collisions.
        let mut a = BankScheduler::with_seq_stride(2, 0, 2);
        let mut b = BankScheduler::with_seq_stride(2, 1, 2);
        for id in 0..4 {
            a.enqueue(job(id), (id % 2) as usize);
            b.enqueue(job(10 + id), (id % 2) as usize);
        }
        let sa: Vec<u64> = a.issue_all().iter().map(|i| i.seq).collect();
        let sb: Vec<u64> = b.issue_all().iter().map(|i| i.seq).collect();
        assert_eq!(sa, vec![0, 2, 4, 6]);
        assert_eq!(sb, vec![1, 3, 5, 7]);
    }

    #[test]
    fn drain_bank_empties_only_that_bank() {
        let mut s = BankScheduler::new(2);
        s.enqueue(job(0), 0);
        s.enqueue(job(1), 1);
        s.enqueue(job(2), 1);
        let drained: Vec<u64> = s.drain_bank(1).iter().map(|j| j.id).collect();
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.issue_next().unwrap().job.id, 0);
        assert!(s.drain_bank(1).is_empty());
    }

    #[test]
    fn batch_issue_groups_consecutive_same_unit_jobs() {
        let u0 = DbcLocation::new(0, 0, 0, 0);
        let u1 = DbcLocation::new(0, 1, 0, 0); // same bank, different unit
        let mut s = BankScheduler::new(2);
        s.enqueue(job_at(0, u0), 0);
        s.enqueue(job_at(1, u0), 0);
        s.enqueue(job_at(2, u1), 0);
        s.enqueue(job_at(3, u0), 0);
        // First batch: jobs 0 and 1 (same unit); job 2 breaks the run.
        let b = s.issue_next_batch_where(8, |_| true).unwrap();
        let ids: Vec<u64> = b.jobs.iter().map(|j| j.id).collect();
        assert_eq!((b.seq, b.bank, ids), (0, 0, vec![0, 1]));
        let b = s.issue_next_batch_where(8, |_| true).unwrap();
        assert_eq!(b.jobs.len(), 1);
        assert_eq!((b.seq, b.jobs[0].id), (1, 2));
        let b = s.issue_next_batch_where(8, |_| true).unwrap();
        assert_eq!((b.seq, b.jobs[0].id), (2, 3));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn batch_issue_respects_max_jobs_and_singleton_mode() {
        let u0 = DbcLocation::new(0, 0, 0, 0);
        let mut s = BankScheduler::new(1);
        for id in 0..5 {
            s.enqueue(job_at(id, u0), 0);
        }
        let b = s.issue_next_batch_where(3, |_| true).unwrap();
        assert_eq!(b.jobs.len(), 3, "cap respected");
        // max_jobs = 1 degenerates to unbatched issue.
        let b = s.issue_next_batch_where(1, |_| true).unwrap();
        assert_eq!(b.jobs.len(), 1);
        assert_eq!(b.jobs[0].id, 3);
        assert_eq!(s.pending(), 1);
    }

    /// A program with steps on two units — a grouping hazard barrier.
    fn job_spanning(id: u64, a: DbcLocation, b: DbcLocation) -> PimJob {
        PimJob {
            id,
            program: Arc::new(PimProgram {
                steps: vec![
                    Step::Readout {
                        label: format!("j{id}a"),
                        addr: RowAddress::new(a, 4),
                        lane: 8,
                    },
                    Step::Readout {
                        label: format!("j{id}b"),
                        addr: RowAddress::new(b, 4),
                        lane: 8,
                    },
                ],
            }),
            placement: Placement::Fixed(a),
            deadline: None,
        }
    }

    #[test]
    fn same_unit_grouping_gathers_past_confined_interveners() {
        let u0 = DbcLocation::new(0, 0, 0, 0);
        let u1 = DbcLocation::new(0, 1, 0, 0);
        let mut s = BankScheduler::new(1);
        s.enqueue(job_at(0, u0), 0);
        s.enqueue(job_at(1, u1), 0); // intervener confined to another unit
        s.enqueue(job_at(2, u0), 0);
        s.enqueue(job_at(3, u0), 0);
        let b = s
            .issue_next_batch_grouped(8, BatchGrouping::SameUnit, |_| true)
            .unwrap();
        let ids: Vec<u64> = b.jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 2, 3], "u0 jobs gathered past the u1 job");
        // The hopped intervener issues next, still FIFO.
        let b = s
            .issue_next_batch_grouped(8, BatchGrouping::SameUnit, |_| true)
            .unwrap();
        assert_eq!(b.jobs.len(), 1);
        assert_eq!(b.jobs[0].id, 1);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn same_unit_grouping_stops_at_multi_unit_barrier() {
        let u0 = DbcLocation::new(0, 0, 0, 0);
        let u1 = DbcLocation::new(0, 1, 0, 0);
        let mut s = BankScheduler::new(1);
        s.enqueue(job_at(0, u0), 0);
        s.enqueue(job_spanning(1, u1, u0), 0); // touches u0: hazard
        s.enqueue(job_at(2, u0), 0);
        let b = s
            .issue_next_batch_grouped(8, BatchGrouping::SameUnit, |_| true)
            .unwrap();
        assert_eq!(
            b.jobs.len(),
            1,
            "job 2 must not be pulled ahead of the spanning job"
        );
        assert_eq!(b.jobs[0].id, 0);
    }

    #[test]
    fn consecutive_grouping_ignores_non_adjacent_same_unit_jobs() {
        let u0 = DbcLocation::new(0, 0, 0, 0);
        let u1 = DbcLocation::new(0, 1, 0, 0);
        let mut s = BankScheduler::new(1);
        s.enqueue(job_at(0, u0), 0);
        s.enqueue(job_at(1, u1), 0);
        s.enqueue(job_at(2, u0), 0);
        let b = s
            .issue_next_batch_grouped(8, BatchGrouping::Consecutive, |_| true)
            .unwrap();
        assert_eq!(b.jobs.len(), 1, "default grouping never reorders");
    }

    #[test]
    fn empty_programs_never_batch() {
        let mut s = BankScheduler::new(1);
        s.enqueue(job(0), 0);
        s.enqueue(job(1), 0);
        let b = s.issue_next_batch_where(8, |_| true).unwrap();
        assert_eq!(b.jobs.len(), 1, "unit-less jobs issue alone");
    }

    #[test]
    fn depth_histogram_sees_queue_buildup() {
        let mut s = BankScheduler::new(1);
        for id in 0..4 {
            s.enqueue(job(id), 0);
        }
        let h = s.depth_histogram();
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 4);
    }

    #[test]
    fn edf_issues_earliest_deadline_first_within_a_bank() {
        let mut s = BankScheduler::new(1).with_policy(IssuePolicy::Edf);
        s.enqueue(job_due(0, 300), 0);
        s.enqueue(job_due(1, 100), 0);
        s.enqueue(job(2), 0); // deadline-free: sorts last
        s.enqueue(job_due(3, 200), 0);
        let ids: Vec<u64> = s.issue_all().iter().map(|i| i.job.id).collect();
        assert_eq!(ids, vec![1, 3, 0, 2]);
    }

    #[test]
    fn edf_breaks_deadline_ties_in_arrival_order() {
        let mut s = BankScheduler::new(1).with_policy(IssuePolicy::Edf);
        s.enqueue(job_due(0, 100), 0);
        s.enqueue(job_due(1, 100), 0);
        s.enqueue(job_due(2, 50), 0);
        s.enqueue(job_due(3, 100), 0);
        let ids: Vec<u64> = s.issue_all().iter().map(|i| i.job.id).collect();
        assert_eq!(ids, vec![2, 0, 1, 3], "equal deadlines stay FIFO");
    }

    #[test]
    fn edf_without_deadlines_is_bit_identical_to_fifo() {
        let mut fifo = BankScheduler::new(3);
        let mut edf = BankScheduler::new(3).with_policy(IssuePolicy::Edf);
        for id in 0..12 {
            fifo.enqueue(job(id), (id % 3) as usize);
            edf.enqueue(job(id), (id % 3) as usize);
        }
        let a: Vec<(u64, u64, usize)> = fifo
            .issue_all()
            .iter()
            .map(|i| (i.seq, i.job.id, i.bank))
            .collect();
        let b: Vec<(u64, u64, usize)> = edf
            .issue_all()
            .iter()
            .map(|i| (i.seq, i.job.id, i.bank))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn edf_keeps_cross_bank_circular_order() {
        // EDF reorders only *within* a bank; the circular sweep still
        // alternates banks.
        let mut s = BankScheduler::new(2).with_policy(IssuePolicy::Edf);
        s.enqueue(job_due(0, 500), 0);
        s.enqueue(job_due(1, 10), 0);
        s.enqueue(job_due(2, 900), 1);
        let order: Vec<(u64, usize)> = s.issue_all().iter().map(|i| (i.job.id, i.bank)).collect();
        assert_eq!(order, vec![(1, 0), (2, 1), (0, 0)]);
    }

    #[test]
    fn edf_batch_grouping_runs_in_deadline_order() {
        let u0 = DbcLocation::new(0, 0, 0, 0);
        let mut s = BankScheduler::new(1).with_policy(IssuePolicy::Edf);
        let due_at = |id: u64, ms: u64| PimJob {
            deadline: Some(base_instant() + std::time::Duration::from_millis(ms)),
            ..job_at(id, u0)
        };
        s.enqueue(due_at(0, 300), 0);
        s.enqueue(due_at(1, 100), 0);
        s.enqueue(due_at(2, 200), 0);
        // The head run groups same-unit jobs in the deadline-sorted
        // queue order.
        let b = s.issue_next_batch_where(8, |_| true).unwrap();
        let ids: Vec<u64> = b.jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 2, 0]);
    }
}
