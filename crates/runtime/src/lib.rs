//! The CORUSCANT execution runtime: a request-serving engine over the
//! functional PIM stack.
//!
//! The paper's high-throughput dispatch mode (§V-C) observes that a PIM
//! command occupies only its target bank for the internal operation
//! latency, so a stream of `cpim` commands issued to *different* banks in
//! a circular fashion overlaps those latencies — the controller issues
//! one command per bus cycle while every bank computes in parallel. This
//! crate builds the serving layer around that idea:
//!
//! * **Jobs** — a [`PimProgram`] plus a [`Placement`], submitted through
//!   a bounded [`JobQueue`] that applies backpressure to open-loop
//!   clients.
//! * **Scheduling** — the [`BankScheduler`] resolves each job to a PIM
//!   unit, decodes its target bank, keeps per-bank FIFO queues, and
//!   issues in circular-bank order so consecutive issues hit different
//!   banks (§V-C).
//! * **Execution** — worker threads (*shards*) each own a
//!   [`coruscant_core::dispatch::PimMachine`]; banks are
//!   partitioned across shards (`bank % shards`), so same-bank jobs stay
//!   ordered while different banks also run concurrently on the host.
//! * **Compilation** — submitted programs are rewritten by the
//!   `coruscant-compiler` pass pipeline on enqueue (TR fusion, dead-step
//!   elimination, shift-minimizing scheduling), controlled by
//!   [`RuntimeOptions::compile`]; the differential verifier can be
//!   enabled there to prove every optimized job output-equivalent.
//! * **Accounting** — workers report each instruction's measured device
//!   cost, and one [`MemoryController`] replays them in issue order, so
//!   the modeled completion times are exactly what sequential controller
//!   accounting produces: different banks overlap, same-bank jobs
//!   serialize.
//! * **Observability** — serializable [`RuntimeStats`] with per-bank
//!   occupancy, queue-depth and wait-time histograms, plus an optional
//!   JSONL [event trace](events::EventTrace).
//! * **Fault tolerance** — with a [`FaultPlan`] and/or a
//!   [`ProtectionPolicy`] configured, every worker machine runs under
//!   seeded per-bank fault injection, jobs are verified by
//!   re-execute-and-compare or NMR voting, detected faults feed the
//!   per-bank [`HealthTracker`] state machine (Healthy → Suspect →
//!   Quarantined), suspect banks get position-code scrub passes,
//!   quarantined banks are drained and avoided, and unverified jobs are
//!   re-dispatched to healthy banks. The counters surface in
//!   [`stats::FaultStats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod events;
pub mod health;
pub mod job;
pub mod notify;
pub mod queue;
pub mod sched;
pub mod stats;

pub use cache::{CacheOptions, CacheStats};
pub use coruscant_compiler::CompileOptions;
pub use health::{BankState, HealthPolicy, HealthTracker, ProtectionPolicy};
pub use job::{JobOutcome, PimJob, Placement};
pub use notify::JobNotice;
pub use queue::{JobQueue, Pop, PushError};
pub use sched::{BankScheduler, BatchGrouping, DispatchMode, IssuedBatch};
pub use stats::{BankOccupancy, BatchStats, FaultStats, Histogram, RuntimeStats};

use cache::{BatchCache, ProgramCache};
use coruscant_compiler::{splice_programs, CompileError, Compiler};
use coruscant_core::dispatch::PimMachine;
use coruscant_core::nmr::NmrVoter;
use coruscant_core::program::{PimProgram, Step};
use coruscant_core::PimError;
use coruscant_mem::controller::Request;
use coruscant_mem::{
    Dbc, DbcLocation, FaultPlan, MemoryConfig, MemoryController, Row, ScrubOutcome,
};
use coruscant_racetrack::{Cost, CostMeter};
use events::{Event, EventTrace};
use health::Transition;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// A job failed during execution (first failure in issue order).
    Pim(PimError),
    /// The on-enqueue compiler rejected a job (pass failure or
    /// differential-verification divergence).
    Compile(CompileError),
    /// The job queue was closed before the submission.
    QueueClosed,
    /// The runtime options are inconsistent (e.g. an NMR degree the
    /// configured TRD cannot vote on, or zero health thresholds).
    Config(String),
    /// A worker or scheduler thread disappeared (panicked) mid-run.
    WorkerLost,
    /// The event-trace file could not be created.
    Trace(std::io::Error),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Pim(e) => write!(f, "job execution failed: {e}"),
            RuntimeError::Compile(e) => write!(f, "job compilation failed: {e}"),
            RuntimeError::QueueClosed => write!(f, "job queue closed"),
            RuntimeError::Config(msg) => write!(f, "invalid runtime configuration: {msg}"),
            RuntimeError::WorkerLost => write!(f, "worker thread lost"),
            RuntimeError::Trace(e) => write!(f, "event trace: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Pim(e) => Some(e),
            RuntimeError::Compile(e) => Some(e),
            RuntimeError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PimError> for RuntimeError {
    fn from(e: PimError) -> RuntimeError {
        RuntimeError::Pim(e)
    }
}

impl From<coruscant_mem::MemError> for RuntimeError {
    fn from(e: coruscant_mem::MemError) -> RuntimeError {
        RuntimeError::Pim(PimError::from(e))
    }
}

/// Same-bank batch-fusion configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Master switch. Off by default: batch grouping depends on queue
    /// drain timing, so enabling it trades the plain path's cross-shard
    /// issue-order determinism for higher same-bank throughput (outputs
    /// stay exact under any grouping).
    pub enabled: bool,
    /// Most jobs one batched dispatch splices together.
    pub max_jobs: usize,
    /// How members are gathered from a bank FIFO:
    /// [`BatchGrouping::Consecutive`] (default) only fuses the same-unit
    /// run at the head, [`BatchGrouping::SameUnit`] also gathers
    /// non-consecutive same-unit jobs past independent (other-DBC)
    /// entries.
    pub grouping: BatchGrouping,
    /// Batched-splice cache capacity (entries). Repeated same-shape
    /// batches skip the cross-boundary pass pipeline; keyed on the
    /// ordered member structural hashes. `0` disables the cache.
    pub splice_cache: usize,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            enabled: false,
            max_jobs: 8,
            grouping: BatchGrouping::Consecutive,
            splice_cache: 128,
        }
    }
}

impl BatchOptions {
    /// Options with batching on at the default batch size.
    pub fn enabled() -> BatchOptions {
        BatchOptions {
            enabled: true,
            ..BatchOptions::default()
        }
    }

    /// Options with batching on and non-consecutive same-unit grouping.
    pub fn enabled_grouped() -> BatchOptions {
        BatchOptions {
            enabled: true,
            grouping: BatchGrouping::SameUnit,
            ..BatchOptions::default()
        }
    }

    /// The effective per-dispatch job cap (1 when disabled).
    fn cap(&self) -> usize {
        if self.enabled {
            self.max_jobs.max(1)
        } else {
            1
        }
    }

    /// The splice cache this configuration asks for, if any.
    fn splice_cache(&self) -> Option<BatchCache> {
        (self.enabled && self.splice_cache > 0).then(|| BatchCache::new(self.splice_cache))
    }
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Worker threads; banks are partitioned `bank % shards`. Clamped to
    /// `1..=banks`.
    pub shards: usize,
    /// Bounded job-queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Placement policy for [`Placement::Auto`] jobs.
    pub dispatch: DispatchMode,
    /// On-enqueue program optimization (pass pipeline and differential
    /// verification); [`CompileOptions::disabled`] submits programs
    /// verbatim.
    pub compile: CompileOptions,
    /// When set, a JSONL event trace is written here.
    pub trace_path: Option<PathBuf>,
    /// Per-job corruption detection (re-execute-and-compare or NMR).
    pub protection: ProtectionPolicy,
    /// Bank health thresholds and recovery actions. Only consulted when
    /// the fault-aware scheduler runs (a fault plan or an active
    /// protection policy is configured).
    pub health: HealthPolicy,
    /// When set, every worker machine materializes its DBCs with the
    /// plan's seeded per-bank fault injectors.
    pub faults: Option<FaultPlan>,
    /// Compiled-program cache: repeated submissions skip the pass
    /// pipeline (keyed by placement-normalized structural hash).
    pub cache: CacheOptions,
    /// Same-bank batch fusion: splice co-located queued jobs into one
    /// program and optimize across the boundary before dispatch.
    pub batch: BatchOptions,
    /// When set, the runtime sends live [`JobNotice`]s here: one
    /// [`JobNotice::Attempt`] per member job of every executed dispatch
    /// (as banks retire them, before [`Runtime::finish`]), and one
    /// [`JobNotice::Cancelled`] per job dropped by [`Runtime::cancel`].
    pub notify: Option<mpsc::Sender<JobNotice>>,
    /// Start with the scheduler gated: submitted jobs accumulate in the
    /// bounded queue and nothing is placed or issued until
    /// [`Runtime::resume`] (or [`Runtime::finish`], which opens the gate
    /// before draining). Lets tests and staged deployments line up a
    /// backlog — and cancel parts of it — deterministically.
    pub start_paused: bool,
}

impl Default for RuntimeOptions {
    fn default() -> RuntimeOptions {
        RuntimeOptions {
            shards: 4,
            queue_capacity: 64,
            dispatch: DispatchMode::Circular,
            compile: CompileOptions::default(),
            trace_path: None,
            protection: ProtectionPolicy::None,
            health: HealthPolicy::default(),
            faults: None,
            cache: CacheOptions::default(),
            batch: BatchOptions::default(),
            notify: None,
            start_paused: false,
        }
    }
}

impl RuntimeOptions {
    /// Options with a given shard count, defaults elsewhere.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> RuntimeOptions {
        self.shards = shards;
        self
    }

    /// Options with a given dispatch mode, defaults elsewhere.
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> RuntimeOptions {
        self.dispatch = dispatch;
        self
    }

    /// Options with given compile options, defaults elsewhere.
    #[must_use]
    pub fn with_compile(mut self, compile: CompileOptions) -> RuntimeOptions {
        self.compile = compile;
        self
    }

    /// Options with a given protection policy, defaults elsewhere.
    #[must_use]
    pub fn with_protection(mut self, protection: ProtectionPolicy) -> RuntimeOptions {
        self.protection = protection;
        self
    }

    /// Options with given health thresholds, defaults elsewhere.
    #[must_use]
    pub fn with_health(mut self, health: HealthPolicy) -> RuntimeOptions {
        self.health = health;
        self
    }

    /// Options with a fault-injection plan, defaults elsewhere.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> RuntimeOptions {
        self.faults = Some(faults);
        self
    }

    /// Options with given cache settings, defaults elsewhere.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheOptions) -> RuntimeOptions {
        self.cache = cache;
        self
    }

    /// Options with given batch-fusion settings, defaults elsewhere.
    #[must_use]
    pub fn with_batch(mut self, batch: BatchOptions) -> RuntimeOptions {
        self.batch = batch;
        self
    }

    /// Options with a live-completion notice channel, defaults elsewhere.
    #[must_use]
    pub fn with_notify(mut self, notify: mpsc::Sender<JobNotice>) -> RuntimeOptions {
        self.notify = Some(notify);
        self
    }

    /// Options that start the scheduler gated (see
    /// [`RuntimeOptions::start_paused`]), defaults elsewhere.
    #[must_use]
    pub fn paused(mut self) -> RuntimeOptions {
        self.start_paused = true;
        self
    }

    /// Whether these options activate the fault-aware scheduler.
    pub fn fault_aware(&self) -> bool {
        self.faults.is_some() || self.protection.is_active()
    }
}

/// One member job's share of a dispatched (possibly batched) program:
/// identity, how many readouts it owns in the program's output stream,
/// and which dispatch attempt this is for it.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    job_id: u64,
    readouts: usize,
    attempt: u32,
}

/// What the scheduler sends each worker.
enum WorkMsg {
    /// Execute one dispatch: a single job's program, or a batched splice
    /// of several same-unit jobs. `slots` demuxes the outputs per job.
    Job {
        seq: u64,
        unit: DbcLocation,
        program: Arc<PimProgram>,
        slots: Vec<SlotMeta>,
    },
    /// Run a position-code scrub pass over one bank's materialized DBCs.
    Scrub { bank: usize },
}

/// What a worker reports back to [`Runtime::finish`], once per dispatch
/// attempt.
struct DoneMsg {
    seq: u64,
    unit: DbcLocation,
    slots: Vec<SlotMeta>,
    outputs: Vec<(String, Vec<u64>)>,
    instr_costs: Vec<Cost>,
    error: Option<PimError>,
    replicas: u32,
    faults_detected: u64,
    retries: u32,
    votes_overturned: u64,
    verified: bool,
}

/// What a worker reports back to the fault-aware scheduler, so health
/// accounting and re-dispatch can happen while the session is live.
enum AckMsg {
    Job {
        seq: u64,
        bank: usize,
        faults: u64,
        verified: bool,
    },
    Scrub {
        bank: usize,
        outcome: ScrubOutcome,
    },
}

/// What the scheduler thread hands back on shutdown.
struct SchedulerOutput {
    depth_hist: Histogram,
    issued: u64,
    batches: u64,
    batched_jobs: u64,
    splice_hits: u64,
    splice_misses: u64,
    cancelled: u64,
    redispatches: u64,
    scrubs: u64,
    scrub_total: ScrubOutcome,
    suspect_banks: u64,
    quarantined_banks: u64,
    degraded_capacity: f64,
}

impl SchedulerOutput {
    fn plain(
        depth_hist: Histogram,
        issued: u64,
        batches: u64,
        batched_jobs: u64,
        splice: (u64, u64),
        cancelled: u64,
    ) -> SchedulerOutput {
        SchedulerOutput {
            depth_hist,
            issued,
            batches,
            batched_jobs,
            splice_hits: splice.0,
            splice_misses: splice.1,
            cancelled,
            redispatches: 0,
            scrubs: 0,
            scrub_total: ScrubOutcome::default(),
            suspect_banks: 0,
            quarantined_banks: 0,
            degraded_capacity: 0.0,
        }
    }
}

/// The pause gate the scheduler waits on before it starts draining the
/// queue (see [`RuntimeOptions::start_paused`]).
#[derive(Debug)]
struct Gate {
    paused: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new(paused: bool) -> Gate {
        Gate {
            paused: Mutex::new(paused),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the gate is open.
    fn wait_open(&self) {
        let mut paused = self.paused.lock().unwrap();
        while *paused {
            paused = self.cv.wait(paused).unwrap();
        }
    }

    /// Opens the gate (idempotent).
    fn open(&self) {
        *self.paused.lock().unwrap() = false;
        self.cv.notify_all();
    }
}

/// The set of job ids whose cancellation was requested. Cancellation is
/// best-effort: the scheduler consults the set at placement and at issue
/// time and drops matches (sending [`JobNotice::Cancelled`] and counting
/// them); a job already dispatched to a worker always runs to
/// completion.
type CancelSet = Arc<Mutex<HashSet<u64>>>;

/// Shared bookkeeping for cancellation checks in the scheduler loops.
struct Canceller {
    set: CancelSet,
    notify: Option<mpsc::Sender<JobNotice>>,
    trace: Option<Arc<EventTrace>>,
    cancelled: u64,
}

impl Canceller {
    fn new(
        set: CancelSet,
        notify: Option<mpsc::Sender<JobNotice>>,
        trace: Option<Arc<EventTrace>>,
    ) -> Canceller {
        Canceller {
            set,
            notify,
            cancelled: 0,
            trace,
        }
    }

    /// Whether any cancellation has ever been requested — a cheap guard
    /// that keeps the per-job check off the hot path in the common
    /// (no-cancellation) case.
    fn armed(&self) -> bool {
        !self.set.lock().unwrap().is_empty()
    }

    /// If `job_id` was cancelled, record the drop (notice + trace +
    /// counter) and return `true`.
    fn drop_if_cancelled(&mut self, job_id: u64) -> bool {
        if !self.set.lock().unwrap().contains(&job_id) {
            return false;
        }
        self.cancelled += 1;
        if let Some(trace) = &self.trace {
            trace.record(&Event::Cancelled { job: job_id });
        }
        if let Some(tx) = &self.notify {
            let _ = tx.send(JobNotice::Cancelled { job_id });
        }
        true
    }

    /// Drops cancelled members from an issued batch, keeping order.
    fn filter_issue(&mut self, jobs: &mut Vec<PimJob>) {
        if self.armed() {
            // Vec::retain would borrow `self` inside the closure; collect
            // the survivors instead (cancellation is rare).
            let kept: Vec<PimJob> = jobs
                .drain(..)
                .filter_map(|j| (!self.drop_if_cancelled(j.id)).then_some(j))
                .collect();
            *jobs = kept;
        }
    }
}

/// The report a finished session produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Per-job completion records, ordered by job id.
    pub outcomes: Vec<JobOutcome>,
    /// Aggregate statistics.
    pub stats: RuntimeStats,
}

/// The request-serving engine. Create with [`Runtime::new`], feed it with
/// [`Runtime::submit`], and call [`Runtime::finish`] to drain, join the
/// workers, and collect the report.
pub struct Runtime {
    config: MemoryConfig,
    queue: Arc<JobQueue<PimJob>>,
    next_id: AtomicU64,
    scheduler: Option<JoinHandle<SchedulerOutput>>,
    workers: Vec<JoinHandle<()>>,
    // Behind a mutex only so `Runtime` stays `Sync` (an `mpsc::Receiver`
    // is not); `finish` takes it by value.
    done_rx: Mutex<mpsc::Receiver<DoneMsg>>,
    trace: Option<Arc<EventTrace>>,
    shards: usize,
    protection: ProtectionPolicy,
    compiler: Compiler,
    cache: Option<ProgramCache>,
    cancels: CancelSet,
    gate: Arc<Gate>,
    optimized_jobs: AtomicU64,
    instructions_eliminated: AtomicU64,
    est_device_cycles_saved: AtomicU64,
}

impl Runtime {
    /// Starts the runtime: spawns the scheduler thread and one worker per
    /// shard.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Trace`] if the trace file cannot be
    /// created, or [`RuntimeError::Config`] for an NMR degree the
    /// configured TRD cannot vote on or inconsistent health thresholds.
    pub fn new(config: MemoryConfig, options: RuntimeOptions) -> Result<Runtime, RuntimeError> {
        if let ProtectionPolicy::Nmr { n } = options.protection {
            if !NmrVoter::new(&config).supported_n().contains(&n) {
                return Err(RuntimeError::Config(format!(
                    "NMR degree {n} unsupported at TRD {}",
                    config.trd
                )));
            }
        }
        let fault_aware = options.fault_aware();
        if fault_aware {
            options.health.check().map_err(RuntimeError::Config)?;
        }
        let shards = options.shards.clamp(1, config.banks);
        let queue = Arc::new(JobQueue::new(options.queue_capacity));
        let trace = match &options.trace_path {
            Some(path) => Some(Arc::new(
                EventTrace::create(path).map_err(RuntimeError::Trace)?,
            )),
            None => None,
        };

        let cancels: CancelSet = Arc::new(Mutex::new(HashSet::new()));
        let gate = Arc::new(Gate::new(options.start_paused));

        let (done_tx, done_rx) = mpsc::channel::<DoneMsg>();
        let (ack_tx, ack_rx) = mpsc::channel::<AckMsg>();
        let mut work_txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel::<WorkMsg>();
            work_txs.push(tx);
            let done = done_tx.clone();
            let ack = fault_aware.then(|| ack_tx.clone());
            let cfg = config.clone();
            let faults = options.faults.clone();
            let protection = options.protection;
            let notify = options.notify.clone();
            let max_redispatch = options.health.max_redispatch;
            workers.push(std::thread::spawn(move || {
                worker_loop(
                    &cfg,
                    faults,
                    protection,
                    &rx,
                    &done,
                    ack.as_ref(),
                    notify.as_ref(),
                    max_redispatch,
                );
            }));
        }
        drop(done_tx);
        drop(ack_tx);

        let scheduler = {
            let queue = Arc::clone(&queue);
            let cfg = config.clone();
            let trace = trace.clone();
            let dispatch = options.dispatch;
            let protection = options.protection;
            let policy = options.health;
            let batch = options.batch;
            let compile = options.compile;
            let canceller =
                Canceller::new(Arc::clone(&cancels), options.notify.clone(), trace.clone());
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait_open();
                if fault_aware {
                    fault_scheduler_loop(
                        &cfg, &queue, &work_txs, &ack_rx, dispatch, protection, policy, trace,
                        batch, compile, canceller,
                    )
                } else {
                    scheduler_loop(
                        &cfg, &queue, &work_txs, dispatch, trace, batch, compile, canceller,
                    )
                }
            })
        };

        let compiler = Compiler::new(config.clone(), &options.compile);
        let cache = options
            .cache
            .enabled
            .then(|| ProgramCache::new(&options.cache));
        Ok(Runtime {
            config,
            queue,
            next_id: AtomicU64::new(0),
            scheduler: Some(scheduler),
            workers,
            done_rx: Mutex::new(done_rx),
            trace,
            shards,
            protection: options.protection,
            compiler,
            cache,
            cancels,
            gate,
            optimized_jobs: AtomicU64::new(0),
            instructions_eliminated: AtomicU64::new(0),
            est_device_cycles_saved: AtomicU64::new(0),
        })
    }

    /// Runs a program through the on-enqueue compiler, consulting the
    /// compiled-program cache first; a hit skips the whole pass pipeline.
    /// Returns the shared optimized program and whether it was a hit.
    /// The optimization counters accumulate either way, so the reported
    /// savings are identical with and without the cache.
    fn compile(&self, program: &PimProgram) -> Result<(Arc<PimProgram>, bool), CompileError> {
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(program) {
                self.credit_optimization(hit.instructions_saved, hit.cycles_saved);
                return Ok((hit.program, true));
            }
        }
        let (optimized, report) = self.compiler.optimize(program)?;
        let instructions_saved = report.instructions_saved();
        let cycles_saved = report.cycles_saved();
        self.credit_optimization(instructions_saved, cycles_saved);
        let optimized = Arc::new(optimized);
        if let Some(cache) = &self.cache {
            cache.insert(program, &optimized, instructions_saved, cycles_saved);
        }
        Ok((optimized, false))
    }

    fn credit_optimization(&self, instructions_saved: u64, cycles_saved: u64) {
        if instructions_saved > 0 || cycles_saved > 0 {
            self.optimized_jobs.fetch_add(1, Ordering::Relaxed);
            self.instructions_eliminated
                .fetch_add(instructions_saved, Ordering::Relaxed);
            self.est_device_cycles_saved
                .fetch_add(cycles_saved, Ordering::Relaxed);
        }
    }

    /// The memory configuration the runtime serves.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Current depth of the bounded submission queue — the live
    /// admission signal a serving frontend sheds load on (the queue
    /// depth *histograms* in [`RuntimeStats`] cover the same pressure
    /// retrospectively).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Capacity of the bounded submission queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Opens the scheduler gate of a runtime created with
    /// [`RuntimeOptions::start_paused`]. Idempotent; a no-op for
    /// runtimes that started running.
    pub fn resume(&self) {
        self.gate.open();
    }

    /// Requests cancellation of a still-queued job. Best-effort: the
    /// scheduler drops the job (and sends [`JobNotice::Cancelled`], if a
    /// notice channel is configured) if it is still in the submission
    /// queue or a bank FIFO when the request is observed; a job already
    /// issued to a worker runs to completion and reports an outcome as
    /// usual. Cancelled jobs produce no [`JobOutcome`] and count in
    /// [`RuntimeStats::cancelled`].
    pub fn cancel(&self, job_id: u64) {
        self.cancels.lock().unwrap().insert(job_id);
    }

    /// Submits a job, blocking while the queue is full (backpressure).
    /// Returns the job id.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::QueueClosed`] after [`Runtime::finish`].
    pub fn submit(&self, program: PimProgram, placement: Placement) -> Result<u64, RuntimeError> {
        let (program, cache_hit) = self.compile(&program).map_err(RuntimeError::Compile)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Some(trace) = &self.trace {
            trace.record(&Event::Submit { job: id });
            if cache_hit {
                trace.record(&Event::CacheHit { job: id });
            }
        }
        self.queue
            .push(PimJob {
                id,
                program,
                placement,
            })
            .map_err(|_| RuntimeError::QueueClosed)?;
        Ok(id)
    }

    /// Submits without blocking. A refused program is dropped — clients
    /// that want to retry keep their own clone. A program the compiler
    /// rejects is submitted *unoptimized* (the error, if real, surfaces
    /// at execution).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the queue is at capacity (shed load or
    /// retry), [`PushError::Closed`] after [`Runtime::finish`].
    pub fn try_submit(&self, program: PimProgram, placement: Placement) -> Result<u64, PushError> {
        // On compile failure the original program is submitted verbatim;
        // no defensive clone is needed because the compiler borrows it.
        let (program, cache_hit) = match self.compile(&program) {
            Ok(compiled) => compiled,
            Err(_) => (Arc::new(program), false),
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.queue.try_push(PimJob {
            id,
            program,
            placement,
        })?;
        if let Some(trace) = &self.trace {
            trace.record(&Event::Submit { job: id });
            if cache_hit {
                trace.record(&Event::CacheHit { job: id });
            }
        }
        Ok(id)
    }

    /// Closes the queue, drains all pending work, joins the scheduler and
    /// workers, replays the timing accounting, and returns the report.
    ///
    /// # Errors
    ///
    /// Returns the first job error in issue order, or
    /// [`RuntimeError::WorkerLost`] if a worker panicked.
    pub fn finish(mut self) -> Result<RuntimeReport, RuntimeError> {
        self.queue.close();
        // A paused runtime drains on finish: open the gate so the
        // scheduler can run the backlog down.
        self.gate.open();
        let sched_out = self
            .scheduler
            .take()
            .expect("scheduler joined only once")
            .join()
            .map_err(|_| RuntimeError::WorkerLost)?;

        // Workers exit once the scheduler drops their channels; the
        // completion stream ends when the last worker hangs up.
        let done_rx = self.done_rx.lock().map_err(|_| RuntimeError::WorkerLost)?;
        let mut completions: Vec<DoneMsg> = done_rx.iter().collect();
        drop(done_rx);
        for w in self.workers.drain(..) {
            w.join().map_err(|_| RuntimeError::WorkerLost)?;
        }
        if completions.len() as u64 != sched_out.issued {
            return Err(RuntimeError::WorkerLost);
        }
        completions.sort_by_key(|c| c.seq);

        // Timing accounting: replay every instruction's measured device
        // cost through one MemoryController in issue order — the same
        // accounting a sequential dispatcher would produce, so bank
        // conflicts serialize and distinct banks overlap. Every attempt
        // (retries and re-dispatches included) is replayed, so wasted
        // work honestly degrades the modeled throughput; only the final
        // attempt per job becomes its reported outcome.
        let mut timing = MemoryController::new(self.config.clone());
        let mut wait_hist = Histogram::new();
        let mut per_bank: Vec<BankOccupancy> = (0..self.config.banks)
            .map(|bank| BankOccupancy {
                bank,
                ..BankOccupancy::default()
            })
            .collect();
        let mut instructions = 0u64;
        let mut device_cycles = 0u64;
        let mut fstats = FaultStats {
            redispatches: sched_out.redispatches,
            scrubs: sched_out.scrubs,
            scrub: sched_out.scrub_total,
            suspect_banks: sched_out.suspect_banks,
            quarantined_banks: sched_out.quarantined_banks,
            degraded_capacity: sched_out.degraded_capacity,
            ..FaultStats::default()
        };
        // Winning (latest-seq) attempt per job id, with any error it hit.
        let mut winners: HashMap<u64, (JobOutcome, Option<PimError>)> = HashMap::new();
        for c in completions {
            let bank = c.unit.bank;
            let wait = timing.bank_free_at(bank).saturating_sub(timing.now());
            let mut done = 0;
            let mut batch_device = 0;
            for cost in &c.instr_costs {
                let t = timing.submit(Request::Pim {
                    location: c.unit,
                    device_cycles: cost.cycles,
                    energy_pj: cost.energy_pj,
                })?;
                done = done.max(t);
                batch_device += cost.cycles;
            }
            instructions += c.instr_costs.len() as u64;
            device_cycles += batch_device;
            fstats.replicas_run += u64::from(c.replicas);
            fstats.faults_detected += c.faults_detected;
            fstats.retries += u64::from(c.retries);
            fstats.votes_overturned += c.votes_overturned;
            // Demux the batched output stream back into per-job outputs
            // (readout counts were recorded at dispatch; passes neither
            // remove nor reorder readouts, so the slices stay exact) and
            // apportion the batch's measured device cycles evenly, with
            // the remainder on the first member.
            let members = c.slots.len();
            let share = batch_device / members.max(1) as u64;
            let mut remainder = batch_device - share * members as u64;
            let mut cursor = 0usize;
            for slot in &c.slots {
                let end = (cursor + slot.readouts).min(c.outputs.len());
                let start = cursor.min(c.outputs.len());
                cursor += slot.readouts;
                let outputs = c.outputs[start..end].to_vec();
                let job_device = share + remainder;
                remainder = 0;
                wait_hist.record(wait);
                per_bank[bank].jobs += 1;
                per_bank[bank].wait_cycles += wait;
                if let Some(trace) = &self.trace {
                    trace.record(&Event::Complete {
                        job: slot.job_id,
                        bank,
                        wait,
                        done,
                    });
                }
                let outcome = JobOutcome {
                    job_id: slot.job_id,
                    seq: c.seq,
                    unit: c.unit,
                    bank,
                    outputs,
                    device_cycles: job_device,
                    wait_cycles: wait,
                    completion: done,
                    attempt: slot.attempt,
                    replicas: c.replicas,
                    faults_detected: c.faults_detected,
                    retries: c.retries,
                    votes_overturned: c.votes_overturned,
                    verified: c.verified,
                    batch: members as u32,
                };
                // Attempts arrive in seq order, so a later re-dispatch of
                // the same job replaces the unverified earlier outcome.
                winners.insert(slot.job_id, (outcome, c.error.clone()));
            }
        }
        let makespan = timing.drain();
        for (bank, busy) in timing.bank_stats().busy_cycles.iter().enumerate() {
            per_bank[bank].busy_cycles = *busy;
        }
        // Surface the first (issue-order) error among winning attempts.
        let mut first_err: Option<(u64, PimError)> = None;
        let mut outcomes = Vec::with_capacity(winners.len());
        for (outcome, error) in winners.into_values() {
            if let Some(err) = error {
                if first_err.as_ref().is_none_or(|(seq, _)| outcome.seq < *seq) {
                    first_err = Some((outcome.seq, err));
                }
                continue;
            }
            outcomes.push(outcome);
        }
        if let Some((_, err)) = first_err {
            return Err(RuntimeError::Pim(err));
        }
        outcomes.sort_by_key(|o| o.job_id);
        if self.protection.is_active() {
            fstats.protected_jobs = outcomes.len() as u64;
            fstats.unverified_jobs = outcomes.iter().filter(|o| !o.verified).count() as u64;
        }

        let jobs = outcomes.len() as u64;
        let modeled_us = makespan as f64 * self.config.memory_cycle_ns / 1000.0;
        let stats = RuntimeStats {
            jobs,
            cancelled: sched_out.cancelled,
            instructions,
            shards: self.shards,
            optimized_jobs: self.optimized_jobs.load(Ordering::Relaxed),
            instructions_eliminated: self.instructions_eliminated.load(Ordering::Relaxed),
            est_device_cycles_saved: self.est_device_cycles_saved.load(Ordering::Relaxed),
            makespan_cycles: makespan,
            device_cycles,
            jobs_per_us: if modeled_us > 0.0 {
                jobs as f64 / modeled_us
            } else {
                0.0
            },
            per_bank,
            queue_depth: sched_out.depth_hist,
            wait: wait_hist,
            controller: *timing.stats(),
            bank_stats: timing.bank_stats().clone(),
            faults: fstats,
            cache: self
                .cache
                .as_ref()
                .map(ProgramCache::stats)
                .unwrap_or_default(),
            batch: BatchStats {
                batches: sched_out.batches,
                batched_jobs: sched_out.batched_jobs,
                splice_hits: sched_out.splice_hits,
                splice_misses: sched_out.splice_misses,
            },
        };
        if let Some(trace) = &self.trace {
            trace.flush();
        }
        Ok(RuntimeReport { outcomes, stats })
    }
}

/// Convenience: run a batch of [`Placement::Auto`] programs through a
/// fresh runtime and return the report.
///
/// # Errors
///
/// Propagates runtime and job errors.
pub fn run_batch(
    config: &MemoryConfig,
    programs: Vec<PimProgram>,
    options: RuntimeOptions,
) -> Result<RuntimeReport, RuntimeError> {
    let runtime = Runtime::new(config.clone(), options)?;
    for program in programs {
        runtime.submit(program, Placement::Auto)?;
    }
    runtime.finish()
}

/// Readouts a program contributes to its dispatch's output stream.
fn count_readouts(program: &PimProgram) -> usize {
    program
        .steps
        .iter()
        .filter(|s| matches!(s, Step::Readout { .. }))
        .count()
}

/// The program one dispatch executes: a single member's program shared
/// as-is, or the cross-boundary-optimized splice of all members (falling
/// back to the plain splice — still semantics-preserving — if the batch
/// pipeline fails).
fn batch_program(jobs: &[PimJob], compiler: &Compiler) -> Arc<PimProgram> {
    if jobs.len() == 1 {
        return Arc::clone(&jobs[0].program);
    }
    let spliced = splice_programs(jobs.iter().map(|j| (j.id, j.program.as_ref())));
    match compiler.optimize(&spliced.program) {
        Ok((optimized, _)) => Arc::new(optimized),
        Err(_) => Arc::new(spliced.program),
    }
}

/// [`batch_program`] with the batched-splice cache in front: repeated
/// same-shape batches skip splice + cross-boundary optimization.
fn batch_program_cached(
    jobs: &[PimJob],
    compiler: &Compiler,
    cache: &mut Option<BatchCache>,
) -> Arc<PimProgram> {
    if jobs.len() >= 2 {
        if let Some(cache) = cache.as_mut() {
            let members: Vec<&PimProgram> = jobs.iter().map(|j| j.program.as_ref()).collect();
            if let Some(hit) = cache.get(&members) {
                return hit;
            }
            let program = batch_program(jobs, compiler);
            cache.insert_if_missed(&members, &program);
            return program;
        }
    }
    batch_program(jobs, compiler)
}

#[allow(clippy::too_many_arguments)]
fn scheduler_loop(
    config: &MemoryConfig,
    queue: &JobQueue<PimJob>,
    work_txs: &[mpsc::Sender<WorkMsg>],
    dispatch: DispatchMode,
    trace: Option<Arc<EventTrace>>,
    batch_opts: BatchOptions,
    compile: CompileOptions,
    mut canceller: Canceller,
) -> SchedulerOutput {
    // A controller used only for PIM-unit geometry (bank-major indexing).
    let units = MemoryController::new(config.clone());
    let unit_count = units.pim_unit_count();
    let shards = work_txs.len();
    // The scheduler's own compiler optimizes *across* spliced program
    // boundaries; per-job optimization already happened at submit.
    let compiler = Compiler::new(config.clone(), &compile);
    let max_jobs = batch_opts.cap();
    let grouping = batch_opts.grouping;
    let mut splice_cache = batch_opts.splice_cache();
    let mut sched = BankScheduler::new(config.banks);
    let mut place_cursor = 0usize;
    let mut issued = 0u64;
    let mut batches = 0u64;
    let mut batched_jobs = 0u64;
    let mut drained = Vec::new();

    while let Some(first) = queue.pop() {
        drained.clear();
        drained.push(first);
        queue.drain_ready(&mut drained);

        // Resolve placement and enqueue into the per-bank FIFOs,
        // dropping jobs cancelled while they sat in the queue.
        let check_cancel = canceller.armed();
        for job in drained.drain(..) {
            if check_cancel && canceller.drop_if_cancelled(job.id) {
                continue;
            }
            let unit = match job.placement {
                Placement::Auto => match dispatch {
                    DispatchMode::Circular => {
                        // Bank-major unit indexing: consecutive jobs land
                        // on consecutive banks (§V-C).
                        let u = units.pim_unit(place_cursor % unit_count);
                        place_cursor += 1;
                        u
                    }
                    DispatchMode::SingleBank => units.pim_unit(0),
                },
                Placement::Unit(idx) => units.pim_unit(idx % unit_count),
                Placement::Fixed(loc) => loc,
            };
            let retargeted = PimJob {
                id: job.id,
                program: Arc::new(job.program.retarget(unit)),
                placement: job.placement,
            };
            sched.enqueue(retargeted, unit.bank);
        }

        // Issue everything in circular-bank order; route each dispatch to
        // the shard owning its bank so same-bank work stays ordered. With
        // batching on, same-unit jobs splice into one program.
        while let Some(mut issue) = sched.issue_next_batch_grouped(max_jobs, grouping, |_| true) {
            canceller.filter_issue(&mut issue.jobs);
            if issue.jobs.is_empty() {
                continue;
            }
            let shard = issue.bank % shards;
            let program = batch_program_cached(&issue.jobs, &compiler, &mut splice_cache);
            let unit = program
                .steps
                .first()
                .map_or_else(|| units.pim_unit(issue.bank), Step::target);
            if issue.jobs.len() >= 2 {
                batches += 1;
                batched_jobs += issue.jobs.len() as u64;
                if let Some(trace) = &trace {
                    trace.record(&Event::Batch {
                        seq: issue.seq,
                        bank: issue.bank,
                        jobs: issue.jobs.iter().map(|j| j.id).collect(),
                    });
                }
            }
            let slots: Vec<SlotMeta> = issue
                .jobs
                .iter()
                .map(|j| SlotMeta {
                    job_id: j.id,
                    readouts: count_readouts(&j.program),
                    attempt: 0,
                })
                .collect();
            if let Some(trace) = &trace {
                for job in &issue.jobs {
                    trace.record(&Event::Issue {
                        job: job.id,
                        seq: issue.seq,
                        bank: issue.bank,
                        shard,
                    });
                }
            }
            issued += 1;
            // A send only fails if the worker panicked; the missing
            // completion is detected in finish().
            let _ = work_txs[shard].send(WorkMsg::Job {
                seq: issue.seq,
                unit,
                program,
                slots,
            });
        }
    }

    SchedulerOutput::plain(
        sched.depth_histogram().clone(),
        issued,
        batches,
        batched_jobs,
        splice_cache.as_ref().map_or((0, 0), BatchCache::counts),
        canceller.cancelled,
    )
}

/// A dispatched-but-unacknowledged attempt the fault-aware scheduler
/// keeps so it can re-route its member jobs if verification fails. Holds
/// the members' *individual* programs (pre-splice), so an unverified
/// batch re-dispatches each member separately.
struct InflightRec {
    jobs: Vec<PimJob>,
}

/// The fault-aware scheduler's mutable state, factored out so ack
/// handling can be invoked from both the polling and the blocking paths
/// of the loop.
struct FaultSched<'a> {
    units: MemoryController,
    unit_count: usize,
    shards: usize,
    dispatch: DispatchMode,
    policy: HealthPolicy,
    protection_active: bool,
    batch: BatchOptions,
    compiler: Compiler,
    splice_cache: Option<BatchCache>,
    canceller: Canceller,
    trace: Option<Arc<EventTrace>>,
    work_txs: &'a [mpsc::Sender<WorkMsg>],
    sched: BankScheduler,
    health: HealthTracker,
    inflight: HashMap<u64, InflightRec>,
    inflight_per_bank: Vec<usize>,
    /// Re-dispatch count per job id (bounds recovery attempts).
    redispatched: HashMap<u64, u32>,
    place_cursor: usize,
    issued: u64,
    batches: u64,
    batched_jobs: u64,
    redispatches: u64,
    scrubs_outstanding: usize,
    scrubs: u64,
    scrub_total: ScrubOutcome,
}

impl FaultSched<'_> {
    /// The next PIM unit in circular order, skipping quarantined banks
    /// (and `avoid`, when alternatives exist). Falls back to plain
    /// circular order if every unit is excluded.
    fn pick_unit(&mut self, avoid: Option<usize>) -> DbcLocation {
        for _ in 0..self.unit_count {
            let unit = self.units.pim_unit(self.place_cursor % self.unit_count);
            self.place_cursor += 1;
            if self.health.is_quarantined(unit.bank) {
                continue;
            }
            if avoid == Some(unit.bank) && self.unit_count > 1 {
                continue;
            }
            return unit;
        }
        let unit = self.units.pim_unit(self.place_cursor % self.unit_count);
        self.place_cursor += 1;
        unit
    }

    /// Resolves a job's placement (quarantine-aware for anything but
    /// [`Placement::Fixed`]) and enqueues it into the bank FIFOs.
    fn place(&mut self, job: PimJob) {
        let unit = match job.placement {
            Placement::Auto => match self.dispatch {
                DispatchMode::Circular => self.pick_unit(None),
                DispatchMode::SingleBank => {
                    let unit = self.units.pim_unit(0);
                    if self.health.is_quarantined(unit.bank) {
                        self.pick_unit(None)
                    } else {
                        unit
                    }
                }
            },
            Placement::Unit(idx) => {
                let unit = self.units.pim_unit(idx % self.unit_count);
                if self.health.is_quarantined(unit.bank) {
                    self.pick_unit(None)
                } else {
                    unit
                }
            }
            Placement::Fixed(loc) => loc,
        };
        let retargeted = PimJob {
            id: job.id,
            program: Arc::new(job.program.retarget(unit)),
            placement: job.placement,
        };
        self.sched.enqueue(retargeted, unit.bank);
    }

    /// Issues every queued dispatch whose bank is below the in-flight cap.
    fn issue_ready(&mut self) {
        let cap = self.policy.max_inflight_per_bank;
        let max_jobs = self.batch.cap();
        let grouping = self.batch.grouping;
        loop {
            let Some(mut issue) = self
                .sched
                .issue_next_batch_grouped(max_jobs, grouping, |bank| {
                    self.inflight_per_bank[bank] < cap
                })
            else {
                return;
            };
            self.canceller.filter_issue(&mut issue.jobs);
            if issue.jobs.is_empty() {
                // Every member was cancelled: nothing dispatches, nothing
                // counts toward `issued` or the bank's in-flight cap.
                continue;
            }
            self.dispatch_issue(issue);
        }
    }

    /// Sends one issued dispatch to its shard and records it in flight.
    fn dispatch_issue(&mut self, issue: IssuedBatch) {
        let IssuedBatch { seq, jobs, bank } = issue;
        let shard = bank % self.shards;
        let program = batch_program_cached(&jobs, &self.compiler, &mut self.splice_cache);
        let unit = program
            .steps
            .first()
            .map_or_else(|| self.units.pim_unit(bank), Step::target);
        if jobs.len() >= 2 {
            self.batches += 1;
            self.batched_jobs += jobs.len() as u64;
            if let Some(trace) = &self.trace {
                trace.record(&Event::Batch {
                    seq,
                    bank,
                    jobs: jobs.iter().map(|j| j.id).collect(),
                });
            }
        }
        let slots: Vec<SlotMeta> = jobs
            .iter()
            .map(|j| SlotMeta {
                job_id: j.id,
                readouts: count_readouts(&j.program),
                attempt: self.redispatched.get(&j.id).copied().unwrap_or(0),
            })
            .collect();
        if let Some(trace) = &self.trace {
            for job in &jobs {
                trace.record(&Event::Issue {
                    job: job.id,
                    seq,
                    bank,
                    shard,
                });
            }
        }
        self.issued += 1;
        self.inflight_per_bank[bank] += 1;
        let _ = self.work_txs[shard].send(WorkMsg::Job {
            seq,
            unit,
            program,
            slots,
        });
        self.inflight.insert(seq, InflightRec { jobs });
    }

    /// Processes one worker acknowledgement: health accounting, state
    /// transitions (scrub dispatch, quarantine drain), and re-dispatch of
    /// unverified jobs.
    fn handle_ack(&mut self, ack: AckMsg) {
        match ack {
            AckMsg::Scrub { bank, outcome } => {
                self.scrubs_outstanding -= 1;
                self.scrubs += 1;
                self.scrub_total.merge(outcome);
                if let Some(trace) = &self.trace {
                    trace.record(&Event::Scrub {
                        bank,
                        realigned: outcome.realigned,
                        repaired: outcome.repaired,
                    });
                }
            }
            AckMsg::Job {
                seq,
                bank,
                faults,
                verified,
            } => {
                let rec = self
                    .inflight
                    .remove(&seq)
                    .expect("every ack matches a dispatched attempt");
                self.inflight_per_bank[bank] -= 1;
                let faulty = faults > 0;
                if faulty {
                    if let Some(trace) = &self.trace {
                        for job in &rec.jobs {
                            let attempt = self.redispatched.get(&job.id).copied().unwrap_or(0);
                            trace.record(&Event::FaultDetected {
                                job: job.id,
                                bank,
                                attempt,
                                faults,
                            });
                        }
                    }
                }
                match self.health.record(bank, faulty) {
                    Transition::Suspect(score) => {
                        if let Some(trace) = &self.trace {
                            trace.record(&Event::BankSuspect { bank, score });
                        }
                        if self.policy.scrub_on_suspect {
                            self.scrubs_outstanding += 1;
                            let _ = self.work_txs[bank % self.shards].send(WorkMsg::Scrub { bank });
                        }
                    }
                    Transition::Quarantined(score) => {
                        if let Some(trace) = &self.trace {
                            trace.record(&Event::BankQuarantined { bank, score });
                        }
                        // Re-route the quarantined bank's backlog; only
                        // explicitly pinned jobs stay.
                        for queued in self.sched.drain_bank(bank) {
                            if matches!(queued.placement, Placement::Fixed(_)) {
                                self.sched.enqueue(queued, bank);
                            } else {
                                self.place(queued);
                            }
                        }
                    }
                    Transition::None | Transition::Recovered => {}
                }
                if !verified && self.protection_active {
                    // Every member of an unverified dispatch re-routes
                    // individually — re-executions never re-batch with
                    // the same partners, which bounds correlated failure.
                    for member in rec.jobs {
                        let count = self.redispatched.entry(member.id).or_insert(0);
                        if *count < self.policy.max_redispatch
                            && !matches!(member.placement, Placement::Fixed(_))
                        {
                            *count += 1;
                            let next = *count;
                            self.redispatches += 1;
                            let unit = self.pick_unit(Some(bank));
                            if let Some(trace) = &self.trace {
                                trace.record(&Event::Redispatch {
                                    job: member.id,
                                    from_bank: bank,
                                    to_bank: unit.bank,
                                    attempt: next,
                                });
                            }
                            let job = PimJob {
                                id: member.id,
                                program: Arc::new(member.program.retarget(unit)),
                                placement: member.placement,
                            };
                            self.sched.enqueue(job, unit.bank);
                        }
                    }
                }
            }
        }
    }
}

/// The scheduler loop used when fault injection or a protection policy is
/// active: interleaves queue draining with worker-ack processing so bank
/// health transitions and re-dispatch happen while the session is live.
///
/// Unlike [`scheduler_loop`], issue order here depends on completion
/// timing (the in-flight cap gates issue on acks), so reports are *not*
/// bit-deterministic across shard counts — the no-fault path keeps that
/// property by never entering this loop.
#[allow(clippy::too_many_arguments)]
fn fault_scheduler_loop(
    config: &MemoryConfig,
    queue: &JobQueue<PimJob>,
    work_txs: &[mpsc::Sender<WorkMsg>],
    ack_rx: &mpsc::Receiver<AckMsg>,
    dispatch: DispatchMode,
    protection: ProtectionPolicy,
    policy: HealthPolicy,
    trace: Option<Arc<EventTrace>>,
    batch: BatchOptions,
    compile: CompileOptions,
    canceller: Canceller,
) -> SchedulerOutput {
    let units = MemoryController::new(config.clone());
    let unit_count = units.pim_unit_count();
    let splice_cache = batch.splice_cache();
    let mut state = FaultSched {
        unit_count,
        shards: work_txs.len(),
        dispatch,
        policy,
        protection_active: protection.is_active(),
        batch,
        compiler: Compiler::new(config.clone(), &compile),
        splice_cache,
        canceller,
        trace,
        work_txs,
        sched: BankScheduler::new(config.banks),
        health: HealthTracker::new(config.banks, policy),
        inflight: HashMap::new(),
        inflight_per_bank: vec![0; config.banks],
        redispatched: HashMap::new(),
        place_cursor: 0,
        issued: 0,
        batches: 0,
        batched_jobs: 0,
        redispatches: 0,
        scrubs_outstanding: 0,
        scrubs: 0,
        scrub_total: ScrubOutcome::default(),
        units,
    };
    let mut drained: Vec<PimJob> = Vec::new();
    let mut closed = false;

    loop {
        // 1. Pull newly submitted jobs, bounded so acks stay responsive.
        if !closed {
            match queue.pop_timeout(Duration::from_millis(1)) {
                Pop::Item(first) => {
                    drained.push(first);
                    queue.drain_ready(&mut drained);
                }
                Pop::Timeout => {}
                Pop::Closed => closed = true,
            }
        }
        for job in drained.drain(..) {
            if state.canceller.armed() && state.canceller.drop_if_cancelled(job.id) {
                continue;
            }
            state.place(job);
        }

        // 2. Process every acknowledgement already available.
        while let Ok(ack) = ack_rx.try_recv() {
            state.handle_ack(ack);
        }

        // 3. Issue everything the in-flight cap allows.
        state.issue_ready();

        // 4. Termination and anti-spin blocking once the queue is closed.
        if closed {
            if state.sched.pending() == 0 && state.inflight.is_empty() {
                // Only background scrubs can still be outstanding.
                while state.scrubs_outstanding > 0 {
                    match ack_rx.recv() {
                        Ok(ack) => state.handle_ack(ack),
                        Err(_) => break,
                    }
                }
                break;
            }
            // Progress now requires an ack (a free bank slot or a
            // completion that may trigger re-dispatch); block for one.
            if !state.inflight.is_empty() || state.scrubs_outstanding > 0 {
                match ack_rx.recv() {
                    Ok(ack) => state.handle_ack(ack),
                    Err(_) => break,
                }
            }
        }
    }

    SchedulerOutput {
        depth_hist: state.sched.depth_histogram().clone(),
        issued: state.issued,
        batches: state.batches,
        batched_jobs: state.batched_jobs,
        splice_hits: state
            .splice_cache
            .as_ref()
            .map_or(0, |c| BatchCache::counts(c).0),
        splice_misses: state
            .splice_cache
            .as_ref()
            .map_or(0, |c| BatchCache::counts(c).1),
        cancelled: state.canceller.cancelled,
        redispatches: state.redispatches,
        scrubs: state.scrubs,
        scrub_total: state.scrub_total,
        suspect_banks: state.health.suspect_count(),
        quarantined_banks: state.health.quarantined_count(),
        degraded_capacity: state.health.degraded_capacity(),
    }
}

/// What one protected execution of a job produced.
struct ExecOutcome {
    outputs: Vec<(String, Vec<u64>)>,
    instr_costs: Vec<Cost>,
    error: Option<PimError>,
    replicas: u32,
    faults_detected: u64,
    retries: u32,
    votes_overturned: u64,
    verified: bool,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    config: &MemoryConfig,
    faults: Option<FaultPlan>,
    protection: ProtectionPolicy,
    rx: &mpsc::Receiver<WorkMsg>,
    done: &mpsc::Sender<DoneMsg>,
    ack: Option<&mpsc::Sender<AckMsg>>,
    notify: Option<&mpsc::Sender<JobNotice>>,
    max_redispatch: u32,
) {
    // Each shard owns a full machine; storage is sparse, so it only pays
    // for the DBCs of the banks routed to it.
    let mut machine = match faults {
        Some(plan) => PimMachine::with_faults(config.clone(), plan),
        None => PimMachine::new(config.clone()),
    };
    // The NMR majority gate: a fault-free PIM DBC reserved as the voter
    // (paper §III-F models voting as one write per replica plus one TR).
    let mut voter = match protection {
        ProtectionPolicy::Nmr { .. } => Some((NmrVoter::new(config), Dbc::pim_enabled(config))),
        _ => None,
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkMsg::Scrub { bank } => {
                let mut meter = CostMeter::new();
                let outcome = machine
                    .controller_mut()
                    .scrub_bank(bank, &mut meter)
                    .unwrap_or_default();
                if let Some(ack) = ack {
                    let _ = ack.send(AckMsg::Scrub { bank, outcome });
                }
            }
            WorkMsg::Job {
                seq,
                unit,
                program,
                slots,
            } => {
                let out = execute_protected(&mut machine, protection, &program, voter.as_mut());
                if let Some(notify) = notify {
                    // Demux the batched output stream per member exactly
                    // as `finish` does, so a live consumer sees the same
                    // bytes the final report will record.
                    let members = slots.len() as u32;
                    let mut cursor = 0usize;
                    for slot in &slots {
                        let end = (cursor + slot.readouts).min(out.outputs.len());
                        let start = cursor.min(out.outputs.len());
                        cursor += slot.readouts;
                        let _ = notify.send(JobNotice::Attempt {
                            job_id: slot.job_id,
                            attempt: slot.attempt,
                            bank: unit.bank,
                            batch: members,
                            outputs: out.outputs[start..end].to_vec(),
                            error: out.error.clone(),
                            verified: out.verified,
                            protection_active: protection.is_active(),
                            max_redispatch,
                        });
                    }
                }
                if let Some(ack) = ack {
                    let _ = ack.send(AckMsg::Job {
                        seq,
                        bank: unit.bank,
                        faults: out.faults_detected + u64::from(out.error.is_some()),
                        verified: out.verified,
                    });
                }
                let _ = done.send(DoneMsg {
                    seq,
                    unit,
                    slots,
                    outputs: out.outputs,
                    instr_costs: out.instr_costs,
                    error: out.error,
                    replicas: out.replicas,
                    faults_detected: out.faults_detected,
                    retries: out.retries,
                    votes_overturned: out.votes_overturned,
                    verified: out.verified,
                });
            }
        }
    }
}

/// Runs a job under the worker's protection policy.
fn execute_protected(
    machine: &mut PimMachine,
    protection: ProtectionPolicy,
    program: &PimProgram,
    voter: Option<&mut (NmrVoter, Dbc)>,
) -> ExecOutcome {
    match protection {
        ProtectionPolicy::None => {
            let (readouts, instr_costs, error) = run_once(machine, program);
            ExecOutcome {
                outputs: unpack_readouts(&readouts),
                instr_costs,
                error,
                replicas: 1,
                faults_detected: 0,
                retries: 0,
                votes_overturned: 0,
                verified: false,
            }
        }
        ProtectionPolicy::Reexecute { max_retries } => {
            let mut instr_costs = Vec::new();
            let mut replicas = 0u32;
            let mut faults_detected = 0u64;
            let mut retries = 0u32;
            let mut pairs = 0u32;
            loop {
                let (ro_a, c_a, e_a) = run_once(machine, program);
                let (ro_b, c_b, e_b) = run_once(machine, program);
                replicas += 2;
                instr_costs.extend(c_a);
                instr_costs.extend(c_b);
                let clean = e_a.is_none() && e_b.is_none();
                if clean && readout_rows_equal(&ro_a, &ro_b) {
                    return ExecOutcome {
                        outputs: unpack_readouts(&ro_b),
                        instr_costs,
                        error: None,
                        replicas,
                        faults_detected,
                        retries,
                        votes_overturned: 0,
                        verified: true,
                    };
                }
                faults_detected += 1;
                if pairs >= max_retries {
                    // Exhausted: surface the least-broken run unverified;
                    // the scheduler may re-dispatch to another bank.
                    let (readouts, error) = if e_b.is_none() {
                        (ro_b, None)
                    } else if e_a.is_none() {
                        (ro_a, None)
                    } else {
                        (ro_b, e_b)
                    };
                    return ExecOutcome {
                        outputs: unpack_readouts(&readouts),
                        instr_costs,
                        error,
                        replicas,
                        faults_detected,
                        retries,
                        votes_overturned: 0,
                        verified: false,
                    };
                }
                pairs += 1;
                retries += 1;
            }
        }
        ProtectionPolicy::Nmr { n } => {
            let (voter, vote_dbc) = voter.expect("worker allocates a voter for NMR policies");
            let mut instr_costs = Vec::new();
            let mut runs = Vec::with_capacity(n);
            for i in 0..n {
                let (readouts, costs, error) = run_once(machine, program);
                instr_costs.extend(costs);
                if let Some(err) = error {
                    return ExecOutcome {
                        outputs: unpack_readouts(&readouts),
                        instr_costs,
                        error: Some(err),
                        replicas: i as u32 + 1,
                        faults_detected: 0,
                        retries: 0,
                        votes_overturned: 0,
                        verified: false,
                    };
                }
                runs.push(readouts);
            }
            let mut outputs = Vec::with_capacity(runs[0].len());
            let mut faults_detected = 0u64;
            let mut votes_overturned = 0u64;
            let mut meter = CostMeter::new();
            for i in 0..runs[0].len() {
                let (label, lane, _) = &runs[0][i];
                let rows: Vec<Row> = runs.iter().map(|r| r[i].2.clone()).collect();
                let disagree = rows.windows(2).any(|w| w[0] != w[1]);
                if disagree {
                    faults_detected += 1;
                    votes_overturned += 1;
                }
                let voted = voter
                    .vote_rows(vote_dbc, &rows, &mut meter)
                    .unwrap_or_else(|_| NmrVoter::reference(&rows));
                outputs.push((label.clone(), voted.unpack(*lane)));
            }
            let vote_cost = meter.total();
            if vote_cost.cycles > 0 {
                instr_costs.push(vote_cost);
            }
            ExecOutcome {
                outputs,
                instr_costs,
                error: None,
                replicas: n as u32,
                faults_detected,
                retries: 0,
                votes_overturned,
                verified: true,
            }
        }
    }
}

/// Labeled raw readout rows of one program execution.
type Readouts = Vec<(String, usize, Row)>;

/// Unpacks raw readout rows into the per-lane word outputs jobs report.
fn unpack_readouts(readouts: &Readouts) -> Vec<(String, Vec<u64>)> {
    readouts
        .iter()
        .map(|(label, lane, row)| (label.clone(), row.unpack(*lane)))
        .collect()
}

/// Whether two executions produced identical raw readout rows (compared
/// at full row width — stricter than the unpacked lanes).
fn readout_rows_equal(a: &Readouts, b: &Readouts) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.2 == y.2)
}

/// Executes a program once on a shard machine, collecting raw readout
/// rows (for verification) and per-instruction device costs (for the
/// central timing replay).
fn run_once(
    machine: &mut PimMachine,
    program: &PimProgram,
) -> (Readouts, Vec<Cost>, Option<PimError>) {
    let width = machine.controller().config().nanowires_per_dbc;
    let mut meter = CostMeter::new();
    let mut readouts = Vec::new();
    let mut instr_costs = Vec::new();
    for step in &program.steps {
        let result: Result<(), PimError> = (|| {
            match step {
                Step::Load { addr, values, lane } => {
                    let row = Row::pack(width, *lane, values);
                    machine
                        .controller_mut()
                        .store_row(*addr, &row, &mut meter)?;
                }
                Step::Exec(instr) => {
                    let out = machine.execute(instr)?;
                    instr_costs.push(out.cost);
                }
                Step::Readout { label, addr, lane } => {
                    let row = machine.controller_mut().load_row(*addr, &mut meter)?;
                    readouts.push((label.clone(), *lane, row));
                }
            }
            Ok(())
        })();
        if let Err(err) = result {
            return (readouts, instr_costs, Some(err));
        }
    }
    (readouts, instr_costs, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
    use coruscant_mem::RowAddress;

    fn single_add_program() -> PimProgram {
        let loc = DbcLocation::new(0, 0, 0, 0);
        let bs = BlockSize::new(8).unwrap();
        PimProgram {
            steps: vec![
                Step::Load {
                    addr: RowAddress::new(loc, 4),
                    values: vec![11; 8],
                    lane: 8,
                },
                Step::Load {
                    addr: RowAddress::new(loc, 5),
                    values: vec![31; 8],
                    lane: 8,
                },
                Step::Exec(
                    CpimInstr::new(
                        CpimOpcode::Add,
                        RowAddress::new(loc, 4),
                        2,
                        bs,
                        Some(RowAddress::new(loc, 20)),
                    )
                    .unwrap(),
                ),
                Step::Readout {
                    label: "sum".into(),
                    addr: RowAddress::new(loc, 20),
                    lane: 8,
                },
            ],
        }
    }

    #[test]
    fn single_job_round_trips() {
        let config = MemoryConfig::tiny();
        let report = run_batch(
            &config,
            vec![single_add_program()],
            RuntimeOptions::default(),
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        let out = &report.outcomes[0];
        assert_eq!(out.outputs[0].1, vec![42; 8]);
        assert!(out.completion > 0);
        assert_eq!(out.wait_cycles, 0, "first job never waits");
        assert_eq!(report.stats.jobs, 1);
        assert_eq!(report.stats.instructions, 1);
        assert!(report.stats.makespan_cycles >= out.completion);
        assert!(report.stats.jobs_per_us > 0.0);
    }

    #[test]
    fn job_ids_are_unique_and_outcomes_ordered() {
        let config = MemoryConfig::tiny();
        let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
        let ids: Vec<u64> = (0..6)
            .map(|_| rt.submit(single_add_program(), Placement::Auto).unwrap())
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        let report = rt.finish().unwrap();
        let got: Vec<u64> = report.outcomes.iter().map(|o| o.job_id).collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn submit_after_finish_is_rejected() {
        let config = MemoryConfig::tiny();
        let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
        let queue = Arc::clone(&rt.queue);
        rt.finish().unwrap();
        assert_eq!(
            queue.push(PimJob {
                id: 0,
                program: Arc::new(PimProgram::default()),
                placement: Placement::Auto,
            }),
            Err(PushError::Closed)
        );
    }

    #[test]
    fn errors_propagate_from_workers() {
        let config = MemoryConfig::tiny();
        // A storage (non-PIM) DBC: execution must fail with NotPim.
        let storage = DbcLocation::new(0, 0, 0, 2);
        let bad = PimProgram {
            steps: vec![Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Or,
                    RowAddress::new(storage, 0),
                    2,
                    BlockSize::new(8).unwrap(),
                    None,
                )
                .unwrap(),
            )],
        };
        let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
        rt.submit(bad, Placement::Fixed(storage)).unwrap();
        match rt.finish() {
            Err(RuntimeError::Pim(PimError::NotPim)) => {}
            other => panic!("expected NotPim, got {other:?}"),
        }
    }

    #[test]
    fn backpressure_bounds_queue_depth() {
        let config = MemoryConfig::tiny();
        let options = RuntimeOptions {
            queue_capacity: 2,
            ..RuntimeOptions::default()
        };
        let rt = Runtime::new(config, options).unwrap();
        for _ in 0..16 {
            rt.submit(single_add_program(), Placement::Auto).unwrap();
        }
        let depth = rt.queue.max_depth();
        assert!(depth <= 2, "bounded queue never exceeded capacity: {depth}");
        let report = rt.finish().unwrap();
        assert_eq!(report.stats.jobs, 16);
    }
}
