//! The CORUSCANT execution runtime: a request-serving engine over the
//! functional PIM stack.
//!
//! The paper's high-throughput dispatch mode (§V-C) observes that a PIM
//! command occupies only its target bank for the internal operation
//! latency, so a stream of `cpim` commands issued to *different* banks in
//! a circular fashion overlaps those latencies — the controller issues
//! one command per bus cycle while every bank computes in parallel. This
//! crate builds the serving layer around that idea:
//!
//! * **Jobs** — a [`PimProgram`] plus a [`Placement`], submitted through
//!   a bounded [`JobQueue`] that applies backpressure to open-loop
//!   clients.
//! * **Scheduling** — the [`BankScheduler`] resolves each job to a PIM
//!   unit, decodes its target bank, keeps per-bank FIFO queues, and
//!   issues in circular-bank order so consecutive issues hit different
//!   banks (§V-C).
//! * **Execution** — worker threads (*shards*) each own a
//!   [`coruscant_core::dispatch::PimMachine`]; banks are
//!   partitioned across shards (`bank % shards`), so same-bank jobs stay
//!   ordered while different banks also run concurrently on the host.
//! * **Compilation** — submitted programs are rewritten by the
//!   `coruscant-compiler` pass pipeline on enqueue (TR fusion, dead-step
//!   elimination, shift-minimizing scheduling), controlled by
//!   [`RuntimeOptions::compile`]; the differential verifier can be
//!   enabled there to prove every optimized job output-equivalent.
//! * **Accounting** — workers report each instruction's measured device
//!   cost, and one [`MemoryController`] replays them in issue order, so
//!   the modeled completion times are exactly what sequential controller
//!   accounting produces: different banks overlap, same-bank jobs
//!   serialize.
//! * **Observability** — serializable [`RuntimeStats`] with per-bank
//!   occupancy, queue-depth and wait-time histograms, plus an optional
//!   JSONL [event trace](events::EventTrace).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod job;
pub mod queue;
pub mod sched;
pub mod stats;

pub use coruscant_compiler::CompileOptions;
pub use job::{JobOutcome, PimJob, Placement};
pub use queue::{JobQueue, PushError};
pub use sched::{BankScheduler, DispatchMode};
pub use stats::{BankOccupancy, Histogram, RuntimeStats};

use coruscant_compiler::{CompileError, Compiler};
use coruscant_core::dispatch::PimMachine;
use coruscant_core::program::{PimProgram, Step};
use coruscant_core::PimError;
use coruscant_mem::controller::Request;
use coruscant_mem::{DbcLocation, MemoryConfig, MemoryController, Row};
use coruscant_racetrack::{Cost, CostMeter};
use events::{Event, EventTrace};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// A job failed during execution (first failure in issue order).
    Pim(PimError),
    /// The on-enqueue compiler rejected a job (pass failure or
    /// differential-verification divergence).
    Compile(CompileError),
    /// The job queue was closed before the submission.
    QueueClosed,
    /// A worker or scheduler thread disappeared (panicked) mid-run.
    WorkerLost,
    /// The event-trace file could not be created.
    Trace(std::io::Error),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Pim(e) => write!(f, "job execution failed: {e}"),
            RuntimeError::Compile(e) => write!(f, "job compilation failed: {e}"),
            RuntimeError::QueueClosed => write!(f, "job queue closed"),
            RuntimeError::WorkerLost => write!(f, "worker thread lost"),
            RuntimeError::Trace(e) => write!(f, "event trace: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Pim(e) => Some(e),
            RuntimeError::Compile(e) => Some(e),
            RuntimeError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PimError> for RuntimeError {
    fn from(e: PimError) -> RuntimeError {
        RuntimeError::Pim(e)
    }
}

impl From<coruscant_mem::MemError> for RuntimeError {
    fn from(e: coruscant_mem::MemError) -> RuntimeError {
        RuntimeError::Pim(PimError::from(e))
    }
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Worker threads; banks are partitioned `bank % shards`. Clamped to
    /// `1..=banks`.
    pub shards: usize,
    /// Bounded job-queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Placement policy for [`Placement::Auto`] jobs.
    pub dispatch: DispatchMode,
    /// On-enqueue program optimization (pass pipeline and differential
    /// verification); [`CompileOptions::disabled`] submits programs
    /// verbatim.
    pub compile: CompileOptions,
    /// When set, a JSONL event trace is written here.
    pub trace_path: Option<PathBuf>,
}

impl Default for RuntimeOptions {
    fn default() -> RuntimeOptions {
        RuntimeOptions {
            shards: 4,
            queue_capacity: 64,
            dispatch: DispatchMode::Circular,
            compile: CompileOptions::default(),
            trace_path: None,
        }
    }
}

impl RuntimeOptions {
    /// Options with a given shard count, defaults elsewhere.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> RuntimeOptions {
        self.shards = shards;
        self
    }

    /// Options with a given dispatch mode, defaults elsewhere.
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> RuntimeOptions {
        self.dispatch = dispatch;
        self
    }

    /// Options with given compile options, defaults elsewhere.
    #[must_use]
    pub fn with_compile(mut self, compile: CompileOptions) -> RuntimeOptions {
        self.compile = compile;
        self
    }
}

/// What the scheduler sends each worker.
struct WorkMsg {
    seq: u64,
    job_id: u64,
    unit: DbcLocation,
    program: PimProgram,
}

/// What a worker reports back.
struct DoneMsg {
    seq: u64,
    job_id: u64,
    unit: DbcLocation,
    outputs: Vec<(String, Vec<u64>)>,
    instr_costs: Vec<Cost>,
    error: Option<PimError>,
}

/// What the scheduler thread hands back on shutdown.
struct SchedulerOutput {
    depth_hist: Histogram,
    issued: u64,
}

/// The report a finished session produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Per-job completion records, ordered by job id.
    pub outcomes: Vec<JobOutcome>,
    /// Aggregate statistics.
    pub stats: RuntimeStats,
}

/// The request-serving engine. Create with [`Runtime::new`], feed it with
/// [`Runtime::submit`], and call [`Runtime::finish`] to drain, join the
/// workers, and collect the report.
pub struct Runtime {
    config: MemoryConfig,
    queue: Arc<JobQueue<PimJob>>,
    next_id: AtomicU64,
    scheduler: Option<JoinHandle<SchedulerOutput>>,
    workers: Vec<JoinHandle<()>>,
    done_rx: mpsc::Receiver<DoneMsg>,
    trace: Option<Arc<EventTrace>>,
    shards: usize,
    compiler: Compiler,
    optimized_jobs: AtomicU64,
    instructions_eliminated: AtomicU64,
    est_device_cycles_saved: AtomicU64,
}

impl Runtime {
    /// Starts the runtime: spawns the scheduler thread and one worker per
    /// shard.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Trace`] if the trace file cannot be
    /// created.
    pub fn new(config: MemoryConfig, options: RuntimeOptions) -> Result<Runtime, RuntimeError> {
        let shards = options.shards.clamp(1, config.banks);
        let queue = Arc::new(JobQueue::new(options.queue_capacity));
        let trace = match &options.trace_path {
            Some(path) => Some(Arc::new(
                EventTrace::create(path).map_err(RuntimeError::Trace)?,
            )),
            None => None,
        };

        let (done_tx, done_rx) = mpsc::channel::<DoneMsg>();
        let mut work_txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel::<WorkMsg>();
            work_txs.push(tx);
            let done = done_tx.clone();
            let cfg = config.clone();
            workers.push(std::thread::spawn(move || worker_loop(&cfg, &rx, &done)));
        }
        drop(done_tx);

        let scheduler = {
            let queue = Arc::clone(&queue);
            let cfg = config.clone();
            let trace = trace.clone();
            let dispatch = options.dispatch;
            std::thread::spawn(move || scheduler_loop(&cfg, &queue, &work_txs, dispatch, trace))
        };

        let compiler = Compiler::new(config.clone(), &options.compile);
        Ok(Runtime {
            config,
            queue,
            next_id: AtomicU64::new(0),
            scheduler: Some(scheduler),
            workers,
            done_rx,
            trace,
            shards,
            compiler,
            optimized_jobs: AtomicU64::new(0),
            instructions_eliminated: AtomicU64::new(0),
            est_device_cycles_saved: AtomicU64::new(0),
        })
    }

    /// Runs a program through the on-enqueue compiler, accumulating the
    /// optimization counters.
    fn compile(&self, program: PimProgram) -> Result<PimProgram, CompileError> {
        let (optimized, report) = self.compiler.optimize(&program)?;
        if report.instructions_saved() > 0 || report.cycles_saved() > 0 {
            self.optimized_jobs.fetch_add(1, Ordering::Relaxed);
            self.instructions_eliminated
                .fetch_add(report.instructions_saved(), Ordering::Relaxed);
            self.est_device_cycles_saved
                .fetch_add(report.cycles_saved(), Ordering::Relaxed);
        }
        Ok(optimized)
    }

    /// The memory configuration the runtime serves.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Submits a job, blocking while the queue is full (backpressure).
    /// Returns the job id.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::QueueClosed`] after [`Runtime::finish`].
    pub fn submit(&self, program: PimProgram, placement: Placement) -> Result<u64, RuntimeError> {
        let program = self.compile(program).map_err(RuntimeError::Compile)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Some(trace) = &self.trace {
            trace.record(&Event::Submit { job: id });
        }
        self.queue
            .push(PimJob {
                id,
                program,
                placement,
            })
            .map_err(|_| RuntimeError::QueueClosed)?;
        Ok(id)
    }

    /// Submits without blocking. A refused program is dropped — clients
    /// that want to retry keep their own clone. A program the compiler
    /// rejects is submitted *unoptimized* (the error, if real, surfaces
    /// at execution).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the queue is at capacity (shed load or
    /// retry), [`PushError::Closed`] after [`Runtime::finish`].
    pub fn try_submit(&self, program: PimProgram, placement: Placement) -> Result<u64, PushError> {
        let program = match self.compile(program.clone()) {
            Ok(optimized) => optimized,
            Err(_) => program,
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.queue.try_push(PimJob {
            id,
            program,
            placement,
        })?;
        if let Some(trace) = &self.trace {
            trace.record(&Event::Submit { job: id });
        }
        Ok(id)
    }

    /// Closes the queue, drains all pending work, joins the scheduler and
    /// workers, replays the timing accounting, and returns the report.
    ///
    /// # Errors
    ///
    /// Returns the first job error in issue order, or
    /// [`RuntimeError::WorkerLost`] if a worker panicked.
    pub fn finish(mut self) -> Result<RuntimeReport, RuntimeError> {
        self.queue.close();
        let sched_out = self
            .scheduler
            .take()
            .expect("scheduler joined only once")
            .join()
            .map_err(|_| RuntimeError::WorkerLost)?;

        // Workers exit once the scheduler drops their channels; the
        // completion stream ends when the last worker hangs up.
        let mut completions: Vec<DoneMsg> = self.done_rx.iter().collect();
        for w in self.workers.drain(..) {
            w.join().map_err(|_| RuntimeError::WorkerLost)?;
        }
        if completions.len() as u64 != sched_out.issued {
            return Err(RuntimeError::WorkerLost);
        }
        completions.sort_by_key(|c| c.seq);

        // Timing accounting: replay every instruction's measured device
        // cost through one MemoryController in issue order — the same
        // accounting a sequential dispatcher would produce, so bank
        // conflicts serialize and distinct banks overlap.
        let mut timing = MemoryController::new(self.config.clone());
        let mut outcomes = Vec::with_capacity(completions.len());
        let mut wait_hist = Histogram::new();
        let mut per_bank: Vec<BankOccupancy> = (0..self.config.banks)
            .map(|bank| BankOccupancy {
                bank,
                ..BankOccupancy::default()
            })
            .collect();
        let mut instructions = 0u64;
        let mut device_cycles = 0u64;
        for c in completions {
            if let Some(err) = c.error {
                return Err(RuntimeError::Pim(err));
            }
            let bank = c.unit.bank;
            let wait = timing.bank_free_at(bank).saturating_sub(timing.now());
            let mut done = 0;
            let mut job_device = 0;
            for cost in &c.instr_costs {
                let t = timing.submit(Request::Pim {
                    location: c.unit,
                    device_cycles: cost.cycles,
                    energy_pj: cost.energy_pj,
                })?;
                done = done.max(t);
                job_device += cost.cycles;
            }
            instructions += c.instr_costs.len() as u64;
            device_cycles += job_device;
            wait_hist.record(wait);
            per_bank[bank].jobs += 1;
            per_bank[bank].wait_cycles += wait;
            if let Some(trace) = &self.trace {
                trace.record(&Event::Complete {
                    job: c.job_id,
                    bank,
                    wait,
                    done,
                });
            }
            outcomes.push(JobOutcome {
                job_id: c.job_id,
                seq: c.seq,
                unit: c.unit,
                bank,
                outputs: c.outputs,
                device_cycles: job_device,
                wait_cycles: wait,
                completion: done,
            });
        }
        let makespan = timing.drain();
        for (bank, busy) in timing.bank_stats().busy_cycles.iter().enumerate() {
            per_bank[bank].busy_cycles = *busy;
        }
        outcomes.sort_by_key(|o| o.job_id);

        let jobs = outcomes.len() as u64;
        let modeled_us = makespan as f64 * self.config.memory_cycle_ns / 1000.0;
        let stats = RuntimeStats {
            jobs,
            instructions,
            shards: self.shards,
            optimized_jobs: self.optimized_jobs.load(Ordering::Relaxed),
            instructions_eliminated: self.instructions_eliminated.load(Ordering::Relaxed),
            est_device_cycles_saved: self.est_device_cycles_saved.load(Ordering::Relaxed),
            makespan_cycles: makespan,
            device_cycles,
            jobs_per_us: if modeled_us > 0.0 {
                jobs as f64 / modeled_us
            } else {
                0.0
            },
            per_bank,
            queue_depth: sched_out.depth_hist,
            wait: wait_hist,
            controller: *timing.stats(),
            bank_stats: timing.bank_stats().clone(),
        };
        if let Some(trace) = &self.trace {
            trace.flush();
        }
        Ok(RuntimeReport { outcomes, stats })
    }
}

/// Convenience: run a batch of [`Placement::Auto`] programs through a
/// fresh runtime and return the report.
///
/// # Errors
///
/// Propagates runtime and job errors.
pub fn run_batch(
    config: &MemoryConfig,
    programs: Vec<PimProgram>,
    options: RuntimeOptions,
) -> Result<RuntimeReport, RuntimeError> {
    let runtime = Runtime::new(config.clone(), options)?;
    for program in programs {
        runtime.submit(program, Placement::Auto)?;
    }
    runtime.finish()
}

fn scheduler_loop(
    config: &MemoryConfig,
    queue: &JobQueue<PimJob>,
    work_txs: &[mpsc::Sender<WorkMsg>],
    dispatch: DispatchMode,
    trace: Option<Arc<EventTrace>>,
) -> SchedulerOutput {
    // A controller used only for PIM-unit geometry (bank-major indexing).
    let units = MemoryController::new(config.clone());
    let unit_count = units.pim_unit_count();
    let shards = work_txs.len();
    let mut sched = BankScheduler::new(config.banks);
    let mut place_cursor = 0usize;
    let mut issued = 0u64;
    let mut batch = Vec::new();

    while let Some(first) = queue.pop() {
        batch.clear();
        batch.push(first);
        queue.drain_ready(&mut batch);

        // Resolve placement and enqueue into the per-bank FIFOs.
        for job in batch.drain(..) {
            let unit = match job.placement {
                Placement::Auto => match dispatch {
                    DispatchMode::Circular => {
                        // Bank-major unit indexing: consecutive jobs land
                        // on consecutive banks (§V-C).
                        let u = units.pim_unit(place_cursor % unit_count);
                        place_cursor += 1;
                        u
                    }
                    DispatchMode::SingleBank => units.pim_unit(0),
                },
                Placement::Unit(idx) => units.pim_unit(idx % unit_count),
                Placement::Fixed(loc) => loc,
            };
            let retargeted = PimJob {
                id: job.id,
                program: job.program.retarget(unit),
                placement: job.placement,
            };
            sched.enqueue(retargeted, unit.bank);
        }

        // Issue everything in circular-bank order; route each job to the
        // shard owning its bank so same-bank jobs stay ordered.
        while let Some(issue) = sched.issue_next() {
            let shard = issue.bank % shards;
            let unit = issue
                .job
                .program
                .steps
                .first()
                .map_or_else(|| units.pim_unit(issue.bank), Step::target);
            if let Some(trace) = &trace {
                trace.record(&Event::Issue {
                    job: issue.job.id,
                    seq: issue.seq,
                    bank: issue.bank,
                    shard,
                });
            }
            issued += 1;
            // A send only fails if the worker panicked; the missing
            // completion is detected in finish().
            let _ = work_txs[shard].send(WorkMsg {
                seq: issue.seq,
                job_id: issue.job.id,
                unit,
                program: issue.job.program,
            });
        }
    }

    SchedulerOutput {
        depth_hist: sched.depth_histogram().clone(),
        issued,
    }
}

fn worker_loop(config: &MemoryConfig, rx: &mpsc::Receiver<WorkMsg>, done: &mpsc::Sender<DoneMsg>) {
    // Each shard owns a full machine; storage is sparse, so it only pays
    // for the DBCs of the banks routed to it.
    let mut machine = PimMachine::new(config.clone());
    while let Ok(msg) = rx.recv() {
        let mut outputs = Vec::new();
        let mut instr_costs = Vec::new();
        let error = run_program(&mut machine, &msg.program, &mut outputs, &mut instr_costs).err();
        let _ = done.send(DoneMsg {
            seq: msg.seq,
            job_id: msg.job_id,
            unit: msg.unit,
            outputs,
            instr_costs,
            error,
        });
    }
}

/// Executes a program on a shard machine, collecting per-instruction
/// device costs for the central timing replay.
fn run_program(
    machine: &mut PimMachine,
    program: &PimProgram,
    outputs: &mut Vec<(String, Vec<u64>)>,
    instr_costs: &mut Vec<Cost>,
) -> Result<(), PimError> {
    let width = machine.controller().config().nanowires_per_dbc;
    let mut meter = CostMeter::new();
    for step in &program.steps {
        match step {
            Step::Load { addr, values, lane } => {
                let row = Row::pack(width, *lane, values);
                machine
                    .controller_mut()
                    .store_row(*addr, &row, &mut meter)?;
            }
            Step::Exec(instr) => {
                let out = machine.execute(instr)?;
                instr_costs.push(out.cost);
            }
            Step::Readout { label, addr, lane } => {
                let row = machine.controller_mut().load_row(*addr, &mut meter)?;
                outputs.push((label.clone(), row.unpack(*lane)));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
    use coruscant_mem::RowAddress;

    fn single_add_program() -> PimProgram {
        let loc = DbcLocation::new(0, 0, 0, 0);
        let bs = BlockSize::new(8).unwrap();
        PimProgram {
            steps: vec![
                Step::Load {
                    addr: RowAddress::new(loc, 4),
                    values: vec![11; 8],
                    lane: 8,
                },
                Step::Load {
                    addr: RowAddress::new(loc, 5),
                    values: vec![31; 8],
                    lane: 8,
                },
                Step::Exec(
                    CpimInstr::new(
                        CpimOpcode::Add,
                        RowAddress::new(loc, 4),
                        2,
                        bs,
                        Some(RowAddress::new(loc, 20)),
                    )
                    .unwrap(),
                ),
                Step::Readout {
                    label: "sum".into(),
                    addr: RowAddress::new(loc, 20),
                    lane: 8,
                },
            ],
        }
    }

    #[test]
    fn single_job_round_trips() {
        let config = MemoryConfig::tiny();
        let report = run_batch(
            &config,
            vec![single_add_program()],
            RuntimeOptions::default(),
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        let out = &report.outcomes[0];
        assert_eq!(out.outputs[0].1, vec![42; 8]);
        assert!(out.completion > 0);
        assert_eq!(out.wait_cycles, 0, "first job never waits");
        assert_eq!(report.stats.jobs, 1);
        assert_eq!(report.stats.instructions, 1);
        assert!(report.stats.makespan_cycles >= out.completion);
        assert!(report.stats.jobs_per_us > 0.0);
    }

    #[test]
    fn job_ids_are_unique_and_outcomes_ordered() {
        let config = MemoryConfig::tiny();
        let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
        let ids: Vec<u64> = (0..6)
            .map(|_| rt.submit(single_add_program(), Placement::Auto).unwrap())
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        let report = rt.finish().unwrap();
        let got: Vec<u64> = report.outcomes.iter().map(|o| o.job_id).collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn submit_after_finish_is_rejected() {
        let config = MemoryConfig::tiny();
        let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
        let queue = Arc::clone(&rt.queue);
        rt.finish().unwrap();
        assert_eq!(
            queue.push(PimJob {
                id: 0,
                program: PimProgram::default(),
                placement: Placement::Auto,
            }),
            Err(PushError::Closed)
        );
    }

    #[test]
    fn errors_propagate_from_workers() {
        let config = MemoryConfig::tiny();
        // A storage (non-PIM) DBC: execution must fail with NotPim.
        let storage = DbcLocation::new(0, 0, 0, 2);
        let bad = PimProgram {
            steps: vec![Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Or,
                    RowAddress::new(storage, 0),
                    2,
                    BlockSize::new(8).unwrap(),
                    None,
                )
                .unwrap(),
            )],
        };
        let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
        rt.submit(bad, Placement::Fixed(storage)).unwrap();
        match rt.finish() {
            Err(RuntimeError::Pim(PimError::NotPim)) => {}
            other => panic!("expected NotPim, got {other:?}"),
        }
    }

    #[test]
    fn backpressure_bounds_queue_depth() {
        let config = MemoryConfig::tiny();
        let options = RuntimeOptions {
            queue_capacity: 2,
            ..RuntimeOptions::default()
        };
        let rt = Runtime::new(config, options).unwrap();
        for _ in 0..16 {
            rt.submit(single_add_program(), Placement::Auto).unwrap();
        }
        let depth = rt.queue.max_depth();
        assert!(depth <= 2, "bounded queue never exceeded capacity: {depth}");
        let report = rt.finish().unwrap();
        assert_eq!(report.stats.jobs, 16);
    }
}
