//! The CORUSCANT execution runtime: a request-serving engine over the
//! functional PIM stack.
//!
//! The paper's high-throughput dispatch mode (§V-C) observes that a PIM
//! command occupies only its target bank for the internal operation
//! latency, so a stream of `cpim` commands issued to *different* banks in
//! a circular fashion overlaps those latencies — the controller issues
//! one command per bus cycle while every bank computes in parallel. This
//! crate builds the serving layer around that idea:
//!
//! * **Jobs** — a [`PimProgram`] plus a [`Placement`], submitted through
//!   a bounded [`JobQueue`] that applies backpressure to open-loop
//!   clients.
//! * **Scheduling** — the [`BankScheduler`] resolves each job to a PIM
//!   unit, decodes its target bank, keeps per-bank FIFO queues, and
//!   issues in circular-bank order so consecutive issues hit different
//!   banks (§V-C).
//! * **Execution** — worker threads (*shards*) each own a
//!   [`coruscant_core::dispatch::PimMachine`]; banks are
//!   partitioned across shards (`bank % shards`), so same-bank jobs stay
//!   ordered while different banks also run concurrently on the host.
//! * **Compilation** — submitted programs are rewritten by the
//!   `coruscant-compiler` pass pipeline on enqueue (TR fusion, dead-step
//!   elimination, shift-minimizing scheduling), controlled by
//!   [`RuntimeOptions::compile`]; the differential verifier can be
//!   enabled there to prove every optimized job output-equivalent.
//! * **Accounting** — workers report each instruction's measured device
//!   cost, and one [`MemoryController`] replays them in issue order, so
//!   the modeled completion times are exactly what sequential controller
//!   accounting produces: different banks overlap, same-bank jobs
//!   serialize.
//! * **Observability** — serializable [`RuntimeStats`] with per-bank
//!   occupancy, queue-depth and wait-time histograms, plus an optional
//!   JSONL [event trace](events::EventTrace).
//! * **Fault tolerance** — with a [`FaultPlan`] and/or a
//!   [`ProtectionPolicy`] configured, every worker machine runs under
//!   seeded per-bank fault injection, jobs are verified by
//!   re-execute-and-compare or NMR voting, detected faults feed the
//!   per-bank [`HealthTracker`] state machine (Healthy → Suspect →
//!   Quarantined), suspect banks get position-code scrub passes,
//!   quarantined banks are drained and avoided, and unverified jobs are
//!   re-dispatched to healthy banks. The counters surface in
//!   [`stats::FaultStats`].

// `deny`, not `forbid`: the one sanctioned exception is [`cputime`]'s
// single `clock_gettime` FFI call (thread CPU time has no safe std
// surface), which opts itself back in with a scoped `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod cputime;
pub mod deps;
pub mod events;
pub mod health;
pub mod job;
pub mod notify;
pub mod queue;
pub mod sched;
pub mod stats;
pub mod supervise;
pub mod sync;

pub use cache::{CacheOptions, CacheStats};
pub use chaos::{install_quiet_hook, ChaosAction, ChaosPanic, ChaosPlan, CrossingPoint};
pub use coruscant_compiler::CompileOptions;
pub use deps::{Binder, DepOutputs};
pub use health::{BankState, HealthPolicy, HealthTracker, ProtectionPolicy};
pub use job::{JobOutcome, PimJob, Placement};
pub use notify::JobNotice;
pub use queue::{JobQueue, Pop, PushError};
pub use sched::{BankScheduler, BatchGrouping, DispatchMode, IssuePolicy, IssuedBatch};
pub use stats::{
    BankOccupancy, BatchStats, DomainStats, FaultStats, Histogram, PipelineStats, RuntimeStats,
    SchedStats,
};
pub use supervise::{
    PoisonEntry, PoisonRegistry, PoisonReport, SuperviseOptions, SupervisionStats, WatchdogOptions,
};

use cache::{BatchCache, ProgramCache};
use coruscant_compiler::{splice_programs, CompileError, Compiler};
use coruscant_core::dispatch::PimMachine;
use coruscant_core::nmr::NmrVoter;
use coruscant_core::program::{PimProgram, Step};
use coruscant_core::PimError;
use coruscant_mem::controller::Request;
use coruscant_mem::{
    Dbc, DbcLocation, FaultPlan, MemoryConfig, MemoryController, Row, ScrubOutcome,
};
use coruscant_racetrack::{Cost, CostMeter};
use deps::{DepTracker, GatedJob, GatedSource, Released};
use events::{Event, EventTrace};
use health::Transition;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use supervise::{Down, DownCause, Supervisor};

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// A job failed during execution (first failure in issue order).
    Pim(PimError),
    /// The on-enqueue compiler rejected a job (pass failure or
    /// differential-verification divergence).
    Compile(CompileError),
    /// The job queue was closed before the submission.
    QueueClosed,
    /// The runtime options are inconsistent (e.g. an NMR degree the
    /// configured TRD cannot vote on, or zero health thresholds).
    Config(String),
    /// A worker or scheduler thread disappeared (panicked) mid-run.
    WorkerLost,
    /// The program's fingerprint is quarantined by the poison registry:
    /// earlier submissions of the same (placement-normalized) program
    /// kept hanging their workers, so admission refuses it.
    Poisoned {
        /// The quarantined structural program fingerprint.
        fingerprint: u64,
    },
    /// The event-trace file could not be created.
    Trace(std::io::Error),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Pim(e) => write!(f, "job execution failed: {e}"),
            RuntimeError::Compile(e) => write!(f, "job compilation failed: {e}"),
            RuntimeError::QueueClosed => write!(f, "job queue closed"),
            RuntimeError::Config(msg) => write!(f, "invalid runtime configuration: {msg}"),
            RuntimeError::WorkerLost => write!(f, "worker thread lost"),
            RuntimeError::Poisoned { fingerprint } => write!(
                f,
                "program fingerprint {fingerprint:#018x} is quarantined (kept hanging workers)"
            ),
            RuntimeError::Trace(e) => write!(f, "event trace: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Pim(e) => Some(e),
            RuntimeError::Compile(e) => Some(e),
            RuntimeError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PimError> for RuntimeError {
    fn from(e: PimError) -> RuntimeError {
        RuntimeError::Pim(e)
    }
}

impl From<coruscant_mem::MemError> for RuntimeError {
    fn from(e: coruscant_mem::MemError) -> RuntimeError {
        RuntimeError::Pim(PimError::from(e))
    }
}

/// Same-bank batch-fusion configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Master switch. Off by default: batch grouping depends on queue
    /// drain timing, so enabling it trades the plain path's cross-shard
    /// issue-order determinism for higher same-bank throughput (outputs
    /// stay exact under any grouping).
    pub enabled: bool,
    /// Most jobs one batched dispatch splices together.
    pub max_jobs: usize,
    /// How members are gathered from a bank FIFO:
    /// [`BatchGrouping::Consecutive`] (default) only fuses the same-unit
    /// run at the head, [`BatchGrouping::SameUnit`] also gathers
    /// non-consecutive same-unit jobs past independent (other-DBC)
    /// entries.
    pub grouping: BatchGrouping,
    /// Batched-splice cache capacity (entries). Repeated same-shape
    /// batches skip the cross-boundary pass pipeline; keyed on the
    /// ordered member structural hashes. `0` disables the cache.
    pub splice_cache: usize,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            enabled: false,
            max_jobs: 8,
            grouping: BatchGrouping::Consecutive,
            splice_cache: 128,
        }
    }
}

impl BatchOptions {
    /// Options with batching on at the default batch size.
    pub fn enabled() -> BatchOptions {
        BatchOptions {
            enabled: true,
            ..BatchOptions::default()
        }
    }

    /// Options with batching on and non-consecutive same-unit grouping.
    pub fn enabled_grouped() -> BatchOptions {
        BatchOptions {
            enabled: true,
            grouping: BatchGrouping::SameUnit,
            ..BatchOptions::default()
        }
    }

    /// The effective per-dispatch job cap (1 when disabled).
    fn cap(&self) -> usize {
        if self.enabled {
            self.max_jobs.max(1)
        } else {
            1
        }
    }

    /// The splice cache this configuration asks for, if any.
    fn splice_cache(&self) -> Option<BatchCache> {
        (self.enabled && self.splice_cache > 0).then(|| BatchCache::new(self.splice_cache))
    }
}

/// Which scheduling engine drives the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// The single scheduler thread + worker shards pipeline. This is the
    /// determinism baseline: with batching off and no faults, reports
    /// are bit-identical across runs and shard counts.
    #[default]
    Classic,
    /// Sharded scheduling with merged accounting: each of `shards` fused
    /// scheduler+executor domains owns the banks `bank % shards == d`
    /// (its own FIFOs, placement cursor, batch splicer, and injector
    /// queue), executes dispatches inline, and pushes completions into a
    /// per-domain ring that [`Runtime::finish`] merges and replays
    /// through one [`MemoryController`] — so `RuntimeStats` and the
    /// event-trace `Complete` records stay exactly as accounted on the
    /// classic path. Idle domains steal [`Placement::Auto`] submissions
    /// from sibling injectors. Produces the same *set* of per-job
    /// outcomes as classic (not the same seqs/banks); rejects dependency
    /// chains, resident pins, the watchdog, and chaos stall injection
    /// with [`RuntimeError::Config`].
    Parallel,
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Worker threads; banks are partitioned `bank % shards`. Clamped to
    /// `1..=banks`.
    pub shards: usize,
    /// Bounded job-queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Placement policy for [`Placement::Auto`] jobs.
    pub dispatch: DispatchMode,
    /// On-enqueue program optimization (pass pipeline and differential
    /// verification); [`CompileOptions::disabled`] submits programs
    /// verbatim.
    pub compile: CompileOptions,
    /// When set, a JSONL event trace is written here.
    pub trace_path: Option<PathBuf>,
    /// Per-job corruption detection (re-execute-and-compare or NMR).
    pub protection: ProtectionPolicy,
    /// Bank health thresholds and recovery actions. Only consulted when
    /// the fault-aware scheduler runs (a fault plan or an active
    /// protection policy is configured).
    pub health: HealthPolicy,
    /// When set, every worker machine materializes its DBCs with the
    /// plan's seeded per-bank fault injectors.
    pub faults: Option<FaultPlan>,
    /// Compiled-program cache: repeated submissions skip the pass
    /// pipeline (keyed by placement-normalized structural hash).
    pub cache: CacheOptions,
    /// Same-bank batch fusion: splice co-located queued jobs into one
    /// program and optimize across the boundary before dispatch.
    pub batch: BatchOptions,
    /// When set, the runtime sends live [`JobNotice`]s here: one
    /// [`JobNotice::Attempt`] per member job of every executed dispatch
    /// (as banks retire them, before [`Runtime::finish`]), and one
    /// [`JobNotice::Cancelled`] per job dropped by [`Runtime::cancel`].
    pub notify: Option<mpsc::Sender<JobNotice>>,
    /// Start with the scheduler gated: submitted jobs accumulate in the
    /// bounded queue and nothing is placed or issued until
    /// [`Runtime::resume`] (or [`Runtime::finish`], which opens the gate
    /// before draining). Lets tests and staged deployments line up a
    /// backlog — and cancel parts of it — deterministically.
    pub start_paused: bool,
    /// Shard restart policy: backoff bounds, per-job crash-retry budget,
    /// and the hard drain deadline [`Runtime::finish`] honors.
    pub supervise: SuperviseOptions,
    /// Execution watchdog: per-attempt wall-clock budgets, hung-attempt
    /// classification, and the poison-job quarantine. Enabling it routes
    /// scheduling through the resilient (ack-polling) loop.
    pub watchdog: WatchdogOptions,
    /// Seeded software-fault injection (worker panics, stalls, delays at
    /// named crossing points). An active plan routes scheduling through
    /// the resilient loop; `None` (or a quiet plan) leaves the
    /// deterministic path untouched.
    pub chaos: Option<ChaosPlan>,
    /// Which scheduling engine runs the session (see [`SchedMode`]).
    /// Classic by default.
    pub sched: SchedMode,
    /// Within-bank issue order (see [`IssuePolicy`]). FIFO by default;
    /// [`IssuePolicy::Edf`] issues earliest-deadline-first with
    /// arrival-order tie-breaking, in every engine.
    pub issue_policy: IssuePolicy,
}

impl Default for RuntimeOptions {
    fn default() -> RuntimeOptions {
        RuntimeOptions {
            shards: 4,
            queue_capacity: 64,
            dispatch: DispatchMode::Circular,
            compile: CompileOptions::default(),
            trace_path: None,
            protection: ProtectionPolicy::None,
            health: HealthPolicy::default(),
            faults: None,
            cache: CacheOptions::default(),
            batch: BatchOptions::default(),
            notify: None,
            start_paused: false,
            supervise: SuperviseOptions::default(),
            watchdog: WatchdogOptions::default(),
            chaos: None,
            sched: SchedMode::Classic,
            issue_policy: IssuePolicy::default(),
        }
    }
}

impl RuntimeOptions {
    /// Options with a given shard count, defaults elsewhere.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> RuntimeOptions {
        self.shards = shards;
        self
    }

    /// Options with a given dispatch mode, defaults elsewhere.
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> RuntimeOptions {
        self.dispatch = dispatch;
        self
    }

    /// Options with a given within-bank issue policy, defaults
    /// elsewhere.
    #[must_use]
    pub fn with_issue_policy(mut self, issue_policy: IssuePolicy) -> RuntimeOptions {
        self.issue_policy = issue_policy;
        self
    }

    /// Options with given compile options, defaults elsewhere.
    #[must_use]
    pub fn with_compile(mut self, compile: CompileOptions) -> RuntimeOptions {
        self.compile = compile;
        self
    }

    /// Options with a given protection policy, defaults elsewhere.
    #[must_use]
    pub fn with_protection(mut self, protection: ProtectionPolicy) -> RuntimeOptions {
        self.protection = protection;
        self
    }

    /// Options with given health thresholds, defaults elsewhere.
    #[must_use]
    pub fn with_health(mut self, health: HealthPolicy) -> RuntimeOptions {
        self.health = health;
        self
    }

    /// Options with a fault-injection plan, defaults elsewhere.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> RuntimeOptions {
        self.faults = Some(faults);
        self
    }

    /// Options with given cache settings, defaults elsewhere.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheOptions) -> RuntimeOptions {
        self.cache = cache;
        self
    }

    /// Options with given batch-fusion settings, defaults elsewhere.
    #[must_use]
    pub fn with_batch(mut self, batch: BatchOptions) -> RuntimeOptions {
        self.batch = batch;
        self
    }

    /// Options with a live-completion notice channel, defaults elsewhere.
    #[must_use]
    pub fn with_notify(mut self, notify: mpsc::Sender<JobNotice>) -> RuntimeOptions {
        self.notify = Some(notify);
        self
    }

    /// Options that start the scheduler gated (see
    /// [`RuntimeOptions::start_paused`]), defaults elsewhere.
    #[must_use]
    pub fn paused(mut self) -> RuntimeOptions {
        self.start_paused = true;
        self
    }

    /// Options with a given shard restart policy, defaults elsewhere.
    #[must_use]
    pub fn with_supervise(mut self, supervise: SuperviseOptions) -> RuntimeOptions {
        self.supervise = supervise;
        self
    }

    /// Options with a given watchdog policy, defaults elsewhere.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: WatchdogOptions) -> RuntimeOptions {
        self.watchdog = watchdog;
        self
    }

    /// Options with a seeded chaos plan, defaults elsewhere.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> RuntimeOptions {
        self.chaos = Some(chaos);
        self
    }

    /// Options with a given scheduling engine, defaults elsewhere.
    #[must_use]
    pub fn with_sched_mode(mut self, sched: SchedMode) -> RuntimeOptions {
        self.sched = sched;
        self
    }

    /// Whether these options activate the fault-aware scheduler.
    pub fn fault_aware(&self) -> bool {
        self.faults.is_some() || self.protection.is_active()
    }

    /// The active chaos plan, if one is configured and nonzero.
    fn active_chaos(&self) -> Option<ChaosPlan> {
        self.chaos.filter(ChaosPlan::is_active)
    }

    /// Whether these options route scheduling through the resilient
    /// (ack-polling) loop: device-fault awareness, an active chaos plan,
    /// or the watchdog all require interleaved ack processing.
    fn resilient(&self) -> bool {
        self.fault_aware() || self.active_chaos().is_some() || self.watchdog.enabled
    }
}

/// One member job's share of a dispatched (possibly batched) program:
/// identity, how many readouts it owns in the program's output stream,
/// and which dispatch attempt this is for it.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    job_id: u64,
    readouts: usize,
    attempt: u32,
}

/// What the scheduler sends each worker. Cloneable so the plain
/// scheduler can keep a copy of every outstanding dispatch and re-send
/// it verbatim to a restarted shard (programs are shared by `Arc`, so a
/// clone is cheap).
#[derive(Clone)]
enum WorkMsg {
    /// Execute one dispatch: a single job's program, or a batched splice
    /// of several same-unit jobs. `slots` demuxes the outputs per job.
    Job {
        seq: u64,
        unit: DbcLocation,
        program: Arc<PimProgram>,
        slots: Vec<SlotMeta>,
    },
    /// Run a position-code scrub pass over one bank's materialized DBCs.
    Scrub { bank: usize },
}

/// What a worker reports back to [`Runtime::finish`], once per dispatch
/// attempt.
struct DoneMsg {
    seq: u64,
    unit: DbcLocation,
    slots: Vec<SlotMeta>,
    outputs: Vec<(String, Vec<u64>)>,
    instr_costs: Vec<Cost>,
    error: Option<PimError>,
    replicas: u32,
    faults_detected: u64,
    retries: u32,
    votes_overturned: u64,
    verified: bool,
}

/// What a worker reports back to the scheduler after every dispatch:
/// the fault-aware loop uses it for health accounting and re-dispatch;
/// both loops use the per-member outputs to resolve dependency gates
/// and feed deferred binders.
enum AckMsg {
    /// Heartbeat: the worker dequeued dispatch `seq` and is about to
    /// execute it. Sent only when the watchdog is enabled; it stamps the
    /// attempt's wall-clock start for budget accounting.
    Started {
        seq: u64,
    },
    Job {
        seq: u64,
        bank: usize,
        faults: u64,
        verified: bool,
        /// Whether the dispatch hit an execution error.
        errored: bool,
        /// Per-member demuxed outputs, in slot order: `(job_id, outputs)`.
        members: Vec<(u64, DepOutputs)>,
    },
    Scrub {
        bank: usize,
        outcome: ScrubOutcome,
    },
    /// Terminal: the worker caught a panic and is exiting. `generation`
    /// guards against late reports from already-replaced incarnations;
    /// `panicked_seq` is the dispatch that was executing when the panic
    /// hit (its attempt died; queued dispatches are re-sent from the
    /// scheduler's own outstanding records, never from the worker).
    ShardDown {
        shard: usize,
        generation: u64,
        panicked_seq: Option<u64>,
    },
}

/// What flows through the submission queue: independent jobs, atomic
/// dependency chains, and resident weight pins.
enum Submission {
    /// An independent job (the classic `submit` path).
    Job(PimJob),
    /// An atomically admitted group of dependency-gated jobs.
    Chain(Vec<GatedJob>),
    /// A resident weight pin: `job` loads the weights on the unit with
    /// index `unit_idx` and registers residency `res` there.
    Pin {
        res: u64,
        unit_idx: usize,
        job: PimJob,
    },
}

/// Where a chain member's program comes from (public mirror of the
/// scheduler-side [`GatedSource`]).
pub enum ProgramSource {
    /// The program is known at submission and is submitted verbatim —
    /// chain members bypass the on-enqueue compiler because their
    /// programs may read rows produced by predecessors or resident
    /// pins, which per-program analysis cannot see.
    Ready(PimProgram),
    /// The program is built by `build` once every job at the listed
    /// chain indices has retired, from their labeled outputs (binder
    /// argument order = `deps` order).
    Deferred {
        /// Chain-member indices this binder consumes (must be earlier
        /// members of the same chain).
        deps: Vec<usize>,
        /// The program builder.
        build: Binder,
    },
}

/// One member of a dependency chain handed to
/// [`Runtime::submit_chain`].
pub struct ChainJob {
    /// The member's program (ready or deferred).
    pub source: ProgramSource,
    /// Requested placement. [`Placement::Auto`] members consume the
    /// circular placement cursor when placed; pipelines that need
    /// determinism across shard counts pin members with
    /// [`Placement::Unit`] or [`Placement::Resident`].
    pub placement: Placement,
    /// Chain-member indices that must retire before this member places
    /// (ordering-only gates; data dependencies in a deferred source are
    /// added automatically).
    pub after: Vec<usize>,
}

/// The receipt of a [`Runtime::pin_resident`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentPin {
    /// Residency id — used as [`Placement::Resident`] by jobs that read
    /// the pinned rows.
    pub res: u64,
    /// The pin job's id (it reports a normal [`JobOutcome`] whose
    /// readouts echo the pinned rows).
    pub job: u64,
}

/// Relocates a program onto `unit`'s tile: every address keeps its DBC
/// index and row but moves to the unit's bank/subarray/tile. This is
/// the multi-DBC analogue of [`PimProgram::retarget`] used for resident
/// jobs, whose programs address both the tile's PIM DBC and its storage
/// DBCs.
fn relocate_to_tile(program: &PimProgram, unit: DbcLocation) -> PimProgram {
    use coruscant_mem::RowAddress;
    let mv = |a: &RowAddress| {
        RowAddress::new(
            DbcLocation::new(unit.bank, unit.subarray, unit.tile, a.location.dbc),
            a.row,
        )
    };
    let steps = program
        .steps
        .iter()
        .map(|s| match s {
            Step::Load { addr, values, lane } => Step::Load {
                addr: mv(addr),
                values: values.clone(),
                lane: *lane,
            },
            Step::Exec(i) => {
                let mut i = *i;
                i.src = mv(&i.src);
                i.dst = i.dst.map(|d| mv(&d));
                Step::Exec(i)
            }
            Step::Readout { label, addr, lane } => Step::Readout {
                label: label.clone(),
                addr: mv(addr),
                lane: *lane,
            },
        })
        .collect();
    PimProgram { steps }
}

/// Per-stage occupancy counters a scheduler loop accumulates as it
/// runs. Stage busy times are thread-CPU micros (see [`cputime`]), so
/// they measure work done, not wall time lost to preemption;
/// `wall_micros` is the loop's wall-clock lifetime.
#[derive(Clone, Default)]
struct SchedProfile {
    pop_micros: u64,
    admit_micros: u64,
    place_micros: u64,
    dispatch_micros: u64,
    ack_micros: u64,
    wall_micros: u64,
    /// Dispatches issued per worker shard (`bank % shards`).
    per_shard_issued: Vec<u64>,
    /// Member jobs issued per worker shard.
    per_shard_jobs: Vec<u64>,
}

/// What the scheduler thread hands back on shutdown.
struct SchedulerOutput {
    depth_hist: Histogram,
    issued: u64,
    batches: u64,
    batched_jobs: u64,
    splice_hits: u64,
    splice_misses: u64,
    cancelled: u64,
    /// Jobs dropped at issue time because their deadline had passed.
    expired: u64,
    redispatches: u64,
    scrubs: u64,
    scrub_total: ScrubOutcome,
    suspect_banks: u64,
    quarantined_banks: u64,
    degraded_capacity: f64,
    deferred: u64,
    released: u64,
    cascaded: u64,
    pins: u64,
    remats: u64,
    /// Scheduler-side supervision counters (the supervisor itself keeps
    /// the panic/restart/retire counts; `finish` merges both).
    supervision: SupervisionStats,
    /// Issue sequence numbers that will never produce a completion: the
    /// dispatch died with its shard (and was re-issued under a new seq,
    /// abandoned, or declared hung). `finish` excludes them from the
    /// expected completion count and discards late results under them.
    lost: Vec<u64>,
    /// Scheduler-occupancy counters (stage busy CPU micros, per-shard
    /// issue counts).
    profile: SchedProfile,
}

impl SchedulerOutput {
    #[allow(clippy::too_many_arguments)]
    fn plain(
        depth_hist: Histogram,
        issued: u64,
        batches: u64,
        batched_jobs: u64,
        splice: (u64, u64),
        dropped: (u64, u64),
        pipeline: (u64, u64, u64, u64),
        supervision: SupervisionStats,
        lost: Vec<u64>,
        profile: SchedProfile,
    ) -> SchedulerOutput {
        SchedulerOutput {
            depth_hist,
            issued,
            batches,
            batched_jobs,
            splice_hits: splice.0,
            splice_misses: splice.1,
            cancelled: dropped.0,
            expired: dropped.1,
            redispatches: 0,
            scrubs: 0,
            scrub_total: ScrubOutcome::default(),
            suspect_banks: 0,
            quarantined_banks: 0,
            degraded_capacity: 0.0,
            deferred: pipeline.0,
            released: pipeline.1,
            cascaded: pipeline.2,
            pins: pipeline.3,
            remats: 0,
            supervision,
            lost,
            profile,
        }
    }
}

/// What either scheduling engine hands `finish` once fully drained:
/// the merged scheduler output, the completion stream sorted by seq,
/// the assembled supervision counters, and the occupancy profile. The
/// replay and stats assembly downstream are engine-agnostic — that is
/// the "merged accounting" half of sharded scheduling.
struct DrainedSession {
    sched_out: SchedulerOutput,
    completions: Vec<DoneMsg>,
    supervision: SupervisionStats,
    sched_stats: SchedStats,
}

/// The pause gate the scheduler waits on before it starts draining the
/// queue (see [`RuntimeOptions::start_paused`]).
#[derive(Debug)]
struct Gate {
    paused: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new(paused: bool) -> Gate {
        Gate {
            paused: Mutex::new(paused),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the gate is open.
    fn wait_open(&self) {
        let mut paused = sync::lock(&self.paused);
        while *paused {
            paused = sync::wait(&self.cv, paused);
        }
    }

    /// Opens the gate (idempotent).
    fn open(&self) {
        *sync::lock(&self.paused) = false;
        self.cv.notify_all();
    }
}

/// The set of job ids whose cancellation was requested. Cancellation is
/// best-effort: the scheduler consults the set at placement and at issue
/// time and drops matches (sending [`JobNotice::Cancelled`] and counting
/// them); a job already dispatched to a worker always runs to
/// completion.
type CancelSet = Arc<Mutex<HashSet<u64>>>;

/// Shared bookkeeping for cancellation checks in the scheduler loops.
struct Canceller {
    set: CancelSet,
    notify: Option<mpsc::Sender<JobNotice>>,
    trace: Option<Arc<EventTrace>>,
    cancelled: u64,
    /// Jobs dropped at issue time because their deadline had passed.
    expired: u64,
}

impl Canceller {
    fn new(
        set: CancelSet,
        notify: Option<mpsc::Sender<JobNotice>>,
        trace: Option<Arc<EventTrace>>,
    ) -> Canceller {
        Canceller {
            set,
            notify,
            cancelled: 0,
            expired: 0,
            trace,
        }
    }

    /// Whether any cancellation has ever been requested — a cheap guard
    /// that keeps the per-job check off the hot path in the common
    /// (no-cancellation) case.
    fn armed(&self) -> bool {
        !sync::lock(&self.set).is_empty()
    }

    /// If `job_id` was cancelled, record the drop (notice + trace +
    /// counter) and return `true`.
    fn drop_if_cancelled(&mut self, job_id: u64) -> bool {
        if !sync::lock(&self.set).contains(&job_id) {
            return false;
        }
        self.cancelled += 1;
        if let Some(trace) = &self.trace {
            trace.record(&Event::Cancelled { job: job_id });
        }
        if let Some(tx) = &self.notify {
            let _ = tx.send(JobNotice::Cancelled { job_id });
        }
        true
    }

    /// Drops cancelled members from an issued batch, keeping order, and
    /// returns the ids of the members it dropped (so the dependency
    /// tracker can cascade their dependents).
    fn filter_issue(&mut self, jobs: &mut Vec<PimJob>) -> Vec<u64> {
        let mut dropped = Vec::new();
        if self.armed() {
            // Vec::retain would borrow `self` inside the closure; collect
            // the survivors instead (cancellation is rare).
            let kept: Vec<PimJob> = jobs
                .drain(..)
                .filter_map(|j| {
                    if self.drop_if_cancelled(j.id) {
                        dropped.push(j.id);
                        None
                    } else {
                        Some(j)
                    }
                })
                .collect();
            *jobs = kept;
        }
        dropped
    }

    /// Drops members of an issued batch whose queueing deadline has
    /// already passed, keeping order, and returns the dropped ids (for
    /// dependency cascade). The deadline sweep companion to
    /// [`Canceller::filter_issue`]: checked at issue time so an
    /// expired-in-queue job can never occupy a bank, even between
    /// server sweeper wakeups.
    fn filter_expired(&mut self, jobs: &mut Vec<PimJob>) -> Vec<u64> {
        let mut dropped = Vec::new();
        if jobs.iter().all(|j| j.deadline.is_none()) {
            return dropped;
        }
        let now = Instant::now();
        let kept: Vec<PimJob> = jobs
            .drain(..)
            .filter_map(|j| {
                if j.deadline.is_some_and(|d| now >= d) {
                    self.expired += 1;
                    if let Some(trace) = &self.trace {
                        trace.record(&Event::Expired { job: j.id });
                    }
                    if let Some(tx) = &self.notify {
                        let _ = tx.send(JobNotice::Expired { job_id: j.id });
                    }
                    dropped.push(j.id);
                    None
                } else {
                    Some(j)
                }
            })
            .collect();
        *jobs = kept;
        dropped
    }

    /// Drops a dependency-gated job whose predecessor failed or was
    /// cancelled: it reports as cancelled (trace + notice) but is counted
    /// separately (in the pipeline stats, not `cancelled`).
    fn drop_cascaded(&mut self, job_id: u64) {
        if let Some(trace) = &self.trace {
            trace.record(&Event::Cancelled { job: job_id });
        }
        if let Some(tx) = &self.notify {
            let _ = tx.send(JobNotice::Cancelled { job_id });
        }
    }
}

/// The report a finished session produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Per-job completion records, ordered by job id.
    pub outcomes: Vec<JobOutcome>,
    /// Aggregate statistics.
    pub stats: RuntimeStats,
}

/// The parallel scheduling engine's handle-side state: one injector
/// queue, completion ring, and joinable domain thread per shard, plus
/// the submission router's cursor and unit→bank map.
struct ParEngine {
    domains: usize,
    dispatch: DispatchMode,
    /// Per-domain submission injectors (domain `d` owns `injectors[d]`;
    /// siblings steal `Placement::Auto` entries from it when idle).
    injectors: Vec<Arc<JobQueue<Submission>>>,
    /// Per-domain completion rings, drained and merged by `finish`.
    rings: Vec<Arc<Mutex<Vec<DoneMsg>>>>,
    handles: Vec<JoinHandle<DomainOutput>>,
    /// Round-robin router cursor for `Placement::Auto` submissions.
    route_cursor: AtomicUsize,
    /// Bank of each PIM unit index (routes `Placement::Unit` to the
    /// owning domain).
    unit_banks: Vec<usize>,
}

impl ParEngine {
    /// The domain a submission must route to. Placement-pinned jobs go
    /// to the domain owning their bank (they are not stealable);
    /// `Placement::Auto` round-robins across domains and stays stealable.
    fn route(&self, placement: Placement) -> usize {
        match placement {
            Placement::Auto => match self.dispatch {
                DispatchMode::Circular => {
                    self.route_cursor.fetch_add(1, Ordering::Relaxed) % self.domains
                }
                DispatchMode::SingleBank => self.unit_banks[0] % self.domains,
            },
            Placement::Unit(idx) => self.unit_banks[idx % self.unit_banks.len()] % self.domains,
            Placement::Fixed(loc) => loc.bank % self.domains,
            // Unknown residency (pins are rejected under Parallel): any
            // domain drops it as cascaded, exactly like classic.
            Placement::Resident(_) => 0,
        }
    }
}

/// Submissions a domain admits per loop iteration. Bounded so the rest
/// of a burst stays in the injector where idle siblings can steal it.
const ADMIT_CHUNK: usize = 32;
/// Most submissions one steal sweep takes from a sibling's injector.
const STEAL_MAX: usize = 16;
/// Completions buffered domain-locally before flushing to the shared
/// ring (one lock crossing per `RING_FLUSH` dispatches, not per job).
const RING_FLUSH: usize = 64;

/// Everything a parallel scheduling domain thread needs at spawn.
struct DomainCtx {
    domain: usize,
    domains: usize,
    config: MemoryConfig,
    /// All domains' injectors: `injectors[domain]` is this domain's own;
    /// the rest are steal victims.
    injectors: Vec<Arc<JobQueue<Submission>>>,
    /// This domain's completion ring, merged by `finish`.
    ring: Arc<Mutex<Vec<DoneMsg>>>,
    gate: Arc<Gate>,
    trace: Option<Arc<EventTrace>>,
    canceller: Canceller,
    notify: Option<mpsc::Sender<JobNotice>>,
    dispatch: DispatchMode,
    issue_policy: IssuePolicy,
    protection: ProtectionPolicy,
    faults: Option<FaultPlan>,
    batch: BatchOptions,
    compile: CompileOptions,
    chaos: Option<ChaosPlan>,
    max_redispatch: u32,
    max_job_retries: u32,
}

/// What a domain thread hands back on join: its share of every counter
/// `finish` merges, plus its occupancy profile.
#[derive(Default)]
struct DomainOutput {
    domain: usize,
    depth_hist: Histogram,
    issued: u64,
    batches: u64,
    batched_jobs: u64,
    splice_hits: u64,
    splice_misses: u64,
    cancelled: u64,
    /// Jobs dropped at issue time because their deadline had passed.
    expired: u64,
    redispatches: u64,
    /// Jobs dropped for an unknown residency or a defensively rejected
    /// chain/pin (counted with the cascades).
    dropped: u64,
    /// Member jobs this domain dispatched (batch members counted
    /// individually).
    jobs_done: u64,
    steals: u64,
    ring_peak: u64,
    panics: u64,
    crash_redispatches: u64,
    abandoned_jobs: u64,
    pop_micros: u64,
    admit_micros: u64,
    place_micros: u64,
    dispatch_micros: u64,
    ack_micros: u64,
    busy_micros: u64,
    wall_micros: u64,
}

/// One fused scheduler+executor domain of the parallel engine. Owns the
/// banks `b` with `b % domains == domain`, a strided-seq
/// [`BankScheduler`] over them, and a persistent [`PimMachine`] it
/// executes dispatches on inline — completions become function calls,
/// not channel crossings.
struct Domain {
    ctx: DomainCtx,
    units: MemoryController,
    unit_count: usize,
    /// PIM units on owned banks, in global circular order.
    owned_units: Vec<DbcLocation>,
    owned_cursor: usize,
    sched: BankScheduler,
    machine: PimMachine,
    voter: Option<(NmrVoter, Dbc)>,
    compiler: Compiler,
    splice_cache: Option<BatchCache>,
    /// Verification re-dispatch count per job id.
    redispatched: HashMap<u64, u32>,
    /// Crash (chaos-panic) re-placement count per job id.
    crash_retries: HashMap<u64, u32>,
    ring_buf: Vec<DoneMsg>,
    out: DomainOutput,
}

/// Body of one parallel domain thread.
fn domain_loop(ctx: DomainCtx) -> DomainOutput {
    ctx.gate.wait_open();
    let units = MemoryController::new(ctx.config.clone());
    let unit_count = units.pim_unit_count();
    let owned_units: Vec<DbcLocation> = (0..unit_count)
        .map(|i| units.pim_unit(i))
        .filter(|u| u.bank % ctx.domains == ctx.domain)
        .collect();
    let machine = match ctx.faults.clone() {
        Some(plan) => PimMachine::with_faults(ctx.config.clone(), plan),
        None => PimMachine::new(ctx.config.clone()),
    };
    let voter = match ctx.protection {
        ProtectionPolicy::Nmr { .. } => {
            Some((NmrVoter::new(&ctx.config), Dbc::pim_enabled(&ctx.config)))
        }
        _ => None,
    };
    let compiler = Compiler::new(ctx.config.clone(), &ctx.compile);
    let splice_cache = ctx.batch.splice_cache();
    // Strided seqs: domain d issues d, d+S, d+2S, … — globally unique,
    // so `finish` restores one total issue order with a plain sort.
    let sched =
        BankScheduler::with_seq_stride(ctx.config.banks, ctx.domain as u64, ctx.domains as u64)
            .with_policy(ctx.issue_policy);
    let out = DomainOutput {
        domain: ctx.domain,
        ..DomainOutput::default()
    };
    let mut dom = Domain {
        units,
        unit_count,
        owned_units,
        owned_cursor: 0,
        sched,
        machine,
        voter,
        compiler,
        splice_cache,
        redispatched: HashMap::new(),
        crash_retries: HashMap::new(),
        ring_buf: Vec::new(),
        out,
        ctx,
    };
    dom.run();
    let mut out = dom.out;
    out.depth_hist = dom.sched.depth_histogram().clone();
    out.cancelled = dom.ctx.canceller.cancelled;
    out.expired = dom.ctx.canceller.expired;
    let (hits, misses) = dom.splice_cache.as_ref().map_or((0, 0), BatchCache::counts);
    out.splice_hits = hits;
    out.splice_misses = misses;
    out.busy_micros = out.admit_micros + out.place_micros + out.dispatch_micros + out.ack_micros;
    out
}

impl Domain {
    fn run(&mut self) {
        let wall_start = Instant::now();
        let mut clock = cputime::StageClock::start();
        let mut drained: Vec<Submission> = Vec::new();
        let mut ready: Vec<PimJob> = Vec::new();
        let mut closed = false;
        loop {
            // 1. Pop a bounded chunk from our own injector. Bounded, not
            //    a full drain: the remainder stays in the injector where
            //    idle siblings can steal it.
            if !closed {
                let wait = if self.sched.pending() > 0 {
                    Duration::ZERO
                } else {
                    self.idle_wait()
                };
                match self.ctx.injectors[self.ctx.domain].pop_timeout(wait) {
                    Pop::Item(first) => {
                        drained.push(first);
                        while drained.len() < ADMIT_CHUNK {
                            match self.ctx.injectors[self.ctx.domain].pop_timeout(Duration::ZERO) {
                                Pop::Item(s) => drained.push(s),
                                _ => break,
                            }
                        }
                    }
                    Pop::Timeout => {}
                    Pop::Closed => closed = true,
                }
            }
            // 2. Steal when idle: nothing admitted, nothing queued on our
            //    banks. (Also the termination probe: after close, a final
            //    sweep must come up empty before the domain may exit.)
            if drained.is_empty() && self.sched.pending() == 0 {
                self.steal_sweep(&mut drained);
                if closed && drained.is_empty() {
                    break;
                }
            }
            self.out.pop_micros += clock.lap();

            // 3. Admit: mirror the classic scheduler's admit-time chaos
            //    delay, then filter cancellations at placement below.
            for submission in drained.drain(..) {
                match submission {
                    Submission::Job(job) => {
                        if let Some(plan) = self.ctx.chaos {
                            if matches!(
                                plan.decide(CrossingPoint::SchedulerAdmit, job.id, 0),
                                ChaosAction::Delay
                            ) {
                                std::thread::sleep(Duration::from_micros(plan.delay_us));
                            }
                        }
                        ready.push(job);
                    }
                    // Chains and pins are rejected at submit under
                    // SchedMode::Parallel; drop defensively if one ever
                    // slips through, exactly like an unknown residency.
                    Submission::Chain(chain) => {
                        for gated in chain {
                            self.out.dropped += 1;
                            self.ctx.canceller.drop_cascaded(gated.id);
                        }
                    }
                    Submission::Pin { job, .. } => {
                        self.out.dropped += 1;
                        self.ctx.canceller.drop_cascaded(job.id);
                    }
                }
            }
            self.out.admit_micros += clock.lap();

            // 4. Place onto owned banks.
            for job in ready.drain(..) {
                if self.ctx.canceller.armed() && self.ctx.canceller.drop_if_cancelled(job.id) {
                    continue;
                }
                self.place(job);
            }
            self.out.place_micros += clock.lap();

            // 5. Issue and execute inline until the owned FIFOs drain
            //    (re-dispatches re-enter them and are picked up here).
            let max_jobs = self.ctx.batch.cap();
            let grouping = self.ctx.batch.grouping;
            while let Some(mut issue) =
                self.sched
                    .issue_next_batch_grouped(max_jobs, grouping, |_| true)
            {
                self.ctx.canceller.filter_issue(&mut issue.jobs);
                self.ctx.canceller.filter_expired(&mut issue.jobs);
                if issue.jobs.is_empty() {
                    continue;
                }
                self.execute_dispatch(issue, &mut clock);
            }
        }
        self.flush_ring();
        self.out.wall_micros = wall_start.elapsed().as_micros() as u64;
    }

    /// How long an idle domain's injector pop may sleep: short when a
    /// sibling has stealable backlog (come back fast and take some),
    /// the full classic timeout when the whole engine is quiet.
    fn idle_wait(&self) -> Duration {
        let sibling_backlog = self
            .ctx
            .injectors
            .iter()
            .enumerate()
            .any(|(i, q)| i != self.ctx.domain && !q.is_empty());
        if sibling_backlog {
            Duration::from_millis(1)
        } else {
            Duration::from_millis(50)
        }
    }

    /// Steals up to [`STEAL_MAX`] `Placement::Auto` jobs from the first
    /// sibling injector that has any, re-placing them on our banks.
    fn steal_sweep(&mut self, into: &mut Vec<Submission>) {
        if self.ctx.domains == 1 {
            return;
        }
        for off in 1..self.ctx.domains {
            let victim = (self.ctx.domain + off) % self.ctx.domains;
            let before = into.len();
            let got = self.ctx.injectors[victim].steal_matching(
                |s| matches!(s, Submission::Job(j) if matches!(j.placement, Placement::Auto)),
                STEAL_MAX,
                into,
            );
            if got > 0 {
                self.out.steals += got as u64;
                if let Some(trace) = &self.ctx.trace {
                    let jobs: Vec<u64> = into[before..]
                        .iter()
                        .filter_map(|s| match s {
                            Submission::Job(j) => Some(j.id),
                            _ => None,
                        })
                        .collect();
                    trace.record(&Event::Steal {
                        from: victim,
                        to: self.ctx.domain,
                        jobs,
                    });
                }
                return;
            }
        }
    }

    /// The next owned PIM unit in circular order, skipping `avoid`'s
    /// bank when the domain owns an alternative.
    fn pick_owned_unit(&mut self, avoid: Option<usize>) -> DbcLocation {
        let n = self.owned_units.len();
        for _ in 0..n {
            let unit = self.owned_units[self.owned_cursor % n];
            self.owned_cursor += 1;
            if avoid == Some(unit.bank) && n > 1 {
                continue;
            }
            return unit;
        }
        let unit = self.owned_units[self.owned_cursor % n];
        self.owned_cursor += 1;
        unit
    }

    /// Resolves a job's placement onto this domain's banks and enqueues
    /// it. `Placement::Unit`/`Fixed` jobs were routed here because their
    /// bank is owned; `Auto` jobs (routed or stolen) take the owned
    /// cursor.
    fn place(&mut self, job: PimJob) {
        let (unit, program) = match job.placement {
            Placement::Auto => {
                let unit = match self.ctx.dispatch {
                    DispatchMode::SingleBank => {
                        // Mirror classic: everything on unit 0 — unless
                        // this job was stolen and unit 0 isn't ours, in
                        // which case stealing intentionally spreads it.
                        let u0 = self.units.pim_unit(0);
                        if u0.bank % self.ctx.domains == self.ctx.domain {
                            u0
                        } else {
                            self.pick_owned_unit(None)
                        }
                    }
                    DispatchMode::Circular => self.pick_owned_unit(None),
                };
                (unit, Arc::new(job.program.retarget(unit)))
            }
            Placement::Unit(idx) => {
                let unit = self.units.pim_unit(idx % self.unit_count);
                (unit, Arc::new(job.program.retarget(unit)))
            }
            Placement::Fixed(loc) => (loc, Arc::new(job.program.retarget(loc))),
            Placement::Resident(_) => {
                // Pins are rejected under Parallel, so every residency
                // is unknown: drop as cascaded, exactly like classic.
                self.out.dropped += 1;
                self.ctx.canceller.drop_cascaded(job.id);
                return;
            }
        };
        self.sched.enqueue(
            PimJob {
                id: job.id,
                program,
                placement: job.placement,
                deadline: job.deadline,
            },
            unit.bank,
        );
    }

    /// Executes one issued dispatch inline on the domain's machine,
    /// mirroring the classic worker's chaos crossing points and the
    /// fault scheduler's attempt arithmetic — so a seeded chaos plan
    /// draws identically in both modes.
    fn execute_dispatch(&mut self, issue: IssuedBatch, clock: &mut cputime::StageClock) {
        let IssuedBatch { seq, jobs, bank } = issue;
        let program = batch_program_cached(&jobs, &self.compiler, &mut self.splice_cache);
        let unit = program
            .steps
            .first()
            .map_or_else(|| self.units.pim_unit(bank), Step::target);
        if jobs.len() >= 2 {
            self.out.batches += 1;
            self.out.batched_jobs += jobs.len() as u64;
            if let Some(trace) = &self.ctx.trace {
                trace.record(&Event::Batch {
                    seq,
                    bank,
                    jobs: jobs.iter().map(|j| j.id).collect(),
                });
            }
        }
        let slots: Vec<SlotMeta> = jobs
            .iter()
            .map(|j| SlotMeta {
                job_id: j.id,
                readouts: count_readouts(&j.program),
                // Same attempt axis as the classic fault scheduler:
                // verification re-dispatches plus crash re-placements.
                attempt: self.redispatched.get(&j.id).copied().unwrap_or(0)
                    + self.crash_retries.get(&j.id).copied().unwrap_or(0),
            })
            .collect();
        if let Some(trace) = &self.ctx.trace {
            for job in &jobs {
                trace.record(&Event::Issue {
                    job: job.id,
                    seq,
                    bank,
                    shard: self.ctx.domain,
                });
            }
        }
        self.out.issued += 1;
        self.out.jobs_done += jobs.len() as u64;

        // Execute inline. Chaos can only fire at the two worker crossing
        // points — before execution and after it — never mid-execution,
        // so a caught panic leaves the persistent machine untouched.
        let (chaos_job, chaos_attempt) = slots.first().map_or((0, 0), |s| (s.job_id, s.attempt));
        let chaos = self.ctx.chaos;
        let machine = &mut self.machine;
        let voter = &mut self.voter;
        let protection = self.ctx.protection;
        let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(plan) = chaos {
                match plan.decide(CrossingPoint::WorkerStart, chaos_job, chaos_attempt) {
                    ChaosAction::Panic => chaos::chaos_panic(),
                    ChaosAction::Stall => {
                        std::thread::sleep(Duration::from_millis(plan.stall_ms));
                    }
                    ChaosAction::Delay => {
                        std::thread::sleep(Duration::from_micros(plan.delay_us));
                    }
                    ChaosAction::None => {}
                }
            }
            let out = execute_protected(machine, protection, &program, voter.as_mut());
            if let Some(plan) = chaos {
                if matches!(
                    plan.decide(CrossingPoint::WorkerReport, chaos_job, chaos_attempt),
                    ChaosAction::Panic
                ) {
                    chaos::chaos_panic();
                }
            }
            out
        }));
        self.out.dispatch_micros += clock.lap();
        let Ok(out) = executed else {
            // The attempt died exactly as a crashed worker's would have:
            // every member retries on our banks within its budget.
            self.out.panics += 1;
            for job in jobs {
                self.crash_retry_or_abandon(job);
            }
            self.out.ack_micros += clock.lap();
            return;
        };

        // Completion bookkeeping — the moral equivalent of the classic
        // ack path, as a function call. Demux members exactly as the
        // worker does, coalesce their notices into one channel send,
        // push the completion to the ring, and re-dispatch unverified
        // members.
        if let Some(notify) = &self.ctx.notify {
            let batch = slots.len() as u32;
            let protection_active = self.ctx.protection.is_active();
            let mut cursor = 0usize;
            let mut notices: Vec<JobNotice> = Vec::with_capacity(slots.len());
            for slot in &slots {
                let end = (cursor + slot.readouts).min(out.outputs.len());
                let start = cursor.min(out.outputs.len());
                cursor += slot.readouts;
                notices.push(JobNotice::Attempt {
                    job_id: slot.job_id,
                    attempt: slot.attempt,
                    bank: unit.bank,
                    batch,
                    outputs: out.outputs[start..end].to_vec(),
                    error: out.error.clone(),
                    verified: out.verified,
                    protection_active,
                    max_redispatch: self.ctx.max_redispatch,
                });
            }
            // One channel send per dispatch: a batched notice for multi-
            // member dispatches, the plain notice otherwise.
            let _ = if notices.len() == 1 {
                notify.send(notices.pop().expect("one notice"))
            } else {
                notify.send(JobNotice::Batch(notices))
            };
        }
        let verified = out.verified;
        self.ring_push(DoneMsg {
            seq,
            unit,
            slots,
            outputs: out.outputs,
            instr_costs: out.instr_costs,
            error: out.error,
            replicas: out.replicas,
            faults_detected: out.faults_detected,
            retries: out.retries,
            votes_overturned: out.votes_overturned,
            verified,
        });
        if self.ctx.protection.is_active() && !verified {
            for member in jobs {
                let count = self.redispatched.entry(member.id).or_insert(0);
                if *count >= self.ctx.max_redispatch
                    || matches!(member.placement, Placement::Fixed(_))
                {
                    continue;
                }
                *count += 1;
                let next = *count;
                self.out.redispatches += 1;
                let unit = self.pick_owned_unit(Some(bank));
                if let Some(trace) = &self.ctx.trace {
                    trace.record(&Event::Redispatch {
                        job: member.id,
                        from_bank: bank,
                        to_bank: unit.bank,
                        attempt: next,
                    });
                }
                self.sched.enqueue(
                    PimJob {
                        id: member.id,
                        program: Arc::new(member.program.retarget(unit)),
                        placement: member.placement,
                        deadline: member.deadline,
                    },
                    unit.bank,
                );
            }
        }
        self.out.ack_micros += clock.lap();
    }

    /// Re-places one member whose attempt died in a chaos panic, bounded
    /// by the crash-retry budget; over budget the job is abandoned with
    /// a notice, exactly like classic supervision.
    fn crash_retry_or_abandon(&mut self, member: PimJob) {
        let retries = self.crash_retries.entry(member.id).or_insert(0);
        if *retries < self.ctx.max_job_retries {
            *retries += 1;
            self.out.crash_redispatches += 1;
            self.place(member);
        } else {
            self.out.abandoned_jobs += 1;
            if let Some(tx) = &self.ctx.notify {
                let _ = tx.send(JobNotice::Abandoned {
                    job_id: member.id,
                    hung: false,
                });
            }
        }
    }

    fn ring_push(&mut self, msg: DoneMsg) {
        self.ring_buf.push(msg);
        if self.ring_buf.len() >= RING_FLUSH {
            self.flush_ring();
        }
    }

    fn flush_ring(&mut self) {
        if self.ring_buf.is_empty() {
            return;
        }
        let mut ring = sync::lock(&self.ctx.ring);
        ring.append(&mut self.ring_buf);
        self.out.ring_peak = self.out.ring_peak.max(ring.len() as u64);
    }
}

/// The request-serving engine. Create with [`Runtime::new`], feed it with
/// [`Runtime::submit`], and call [`Runtime::finish`] to drain, join the
/// workers, and collect the report.
pub struct Runtime {
    config: MemoryConfig,
    queue: Arc<JobQueue<Submission>>,
    next_id: Arc<AtomicU64>,
    next_res: AtomicU64,
    // Classic-mode engine state (`None` under `SchedMode::Parallel`).
    scheduler: Option<JoinHandle<SchedulerOutput>>,
    supervisor: Option<Arc<Supervisor<WorkMsg>>>,
    // Behind a mutex only so `Runtime` stays `Sync` (an `mpsc::Receiver`
    // is not); `finish` takes it by value.
    done_rx: Option<Mutex<mpsc::Receiver<DoneMsg>>>,
    /// Per-shard worker busy CPU micros (classic mode; empty otherwise).
    worker_busy: Arc<Vec<AtomicU64>>,
    // Parallel-mode engine state (`None` under `SchedMode::Classic`).
    par: Option<ParEngine>,
    trace: Option<Arc<EventTrace>>,
    shards: usize,
    protection: ProtectionPolicy,
    supervise: SuperviseOptions,
    poison: Option<Arc<PoisonRegistry>>,
    compiler: Compiler,
    cache: Option<ProgramCache>,
    cancels: CancelSet,
    gate: Arc<Gate>,
    optimized_jobs: AtomicU64,
    instructions_eliminated: AtomicU64,
    est_device_cycles_saved: AtomicU64,
}

impl Runtime {
    /// Starts the runtime: spawns the scheduler thread and one worker per
    /// shard.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Trace`] if the trace file cannot be
    /// created, or [`RuntimeError::Config`] for an NMR degree the
    /// configured TRD cannot vote on or inconsistent health thresholds.
    pub fn new(config: MemoryConfig, options: RuntimeOptions) -> Result<Runtime, RuntimeError> {
        if let ProtectionPolicy::Nmr { n } = options.protection {
            if !NmrVoter::new(&config).supported_n().contains(&n) {
                return Err(RuntimeError::Config(format!(
                    "NMR degree {n} unsupported at TRD {}",
                    config.trd
                )));
            }
        }
        let fault_aware = options.fault_aware();
        if fault_aware {
            options.health.check().map_err(RuntimeError::Config)?;
        }
        if options.sched == SchedMode::Parallel {
            return Runtime::new_parallel(config, options);
        }
        let resilient = options.resilient();
        let chaos = options.active_chaos();
        if chaos.is_some() {
            chaos::install_quiet_hook();
        }
        let poison = options
            .watchdog
            .enabled
            .then(|| Arc::new(PoisonRegistry::new(options.watchdog.poison_strikes)));
        let shards = options.shards.clamp(1, config.banks);
        let queue = Arc::new(JobQueue::new(options.queue_capacity));
        let trace = match &options.trace_path {
            Some(path) => Some(Arc::new(
                EventTrace::create(path).map_err(RuntimeError::Trace)?,
            )),
            None => None,
        };

        let cancels: CancelSet = Arc::new(Mutex::new(HashSet::new()));
        let gate = Arc::new(Gate::new(options.start_paused));

        let (done_tx, done_rx) = mpsc::channel::<DoneMsg>();
        let (ack_tx, ack_rx) = mpsc::channel::<AckMsg>();
        let worker_busy: Arc<Vec<AtomicU64>> =
            Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
        // Workers are spawned (and re-spawned after a panic) through this
        // factory; the supervisor owns it, so dropping the supervisor's
        // state at `finish` also closes the done/ack channels.
        let factory: supervise::Factory<WorkMsg> = {
            let cfg = config.clone();
            let faults = options.faults.clone();
            let protection = options.protection;
            let notify = options.notify.clone();
            let max_redispatch = options.health.max_redispatch;
            let heartbeat = options.watchdog.enabled;
            let busy = Arc::clone(&worker_busy);
            let kick = Arc::clone(&queue);
            Box::new(move |shard, generation| {
                let (tx, rx) = mpsc::channel::<WorkMsg>();
                let done = done_tx.clone();
                // Acks are always on: the fault-aware loop needs them for
                // health accounting, and both loops need the per-member
                // outputs to resolve dependency gates.
                let ack = ack_tx.clone();
                let cfg = cfg.clone();
                let faults = faults.clone();
                let notify = notify.clone();
                let busy = Arc::clone(&busy);
                let kick = Arc::clone(&kick);
                let handle = std::thread::spawn(move || {
                    worker_loop(
                        &cfg,
                        faults,
                        protection,
                        &rx,
                        &done,
                        Some(&ack),
                        notify.as_ref(),
                        max_redispatch,
                        WorkerCtx {
                            shard,
                            generation,
                            chaos,
                            heartbeat,
                            busy,
                            kick,
                        },
                    );
                });
                (tx, handle)
            })
        };
        let supervisor = Arc::new(Supervisor::new(shards, options.supervise, factory));

        let next_id = Arc::new(AtomicU64::new(0));
        let scheduler = {
            let queue = Arc::clone(&queue);
            let cfg = config.clone();
            let trace = trace.clone();
            let dispatch = options.dispatch;
            let protection = options.protection;
            let policy = options.health;
            let batch = options.batch;
            let compile = options.compile;
            let supervise_opts = options.supervise;
            let watchdog = options.watchdog;
            let issue_policy = options.issue_policy;
            let canceller =
                Canceller::new(Arc::clone(&cancels), options.notify.clone(), trace.clone());
            let gate = Arc::clone(&gate);
            let next_id = Arc::clone(&next_id);
            let supervisor = Arc::clone(&supervisor);
            let poison = poison.clone();
            std::thread::spawn(move || {
                gate.wait_open();
                if resilient {
                    fault_scheduler_loop(
                        &cfg,
                        &queue,
                        &supervisor,
                        shards,
                        &ack_rx,
                        dispatch,
                        protection,
                        policy,
                        trace,
                        batch,
                        compile,
                        canceller,
                        &next_id,
                        supervise_opts,
                        watchdog,
                        chaos,
                        poison,
                        issue_policy,
                    )
                } else {
                    scheduler_loop(
                        &cfg,
                        &queue,
                        &supervisor,
                        shards,
                        &ack_rx,
                        dispatch,
                        trace,
                        batch,
                        compile,
                        canceller,
                        supervise_opts,
                        issue_policy,
                    )
                }
            })
        };

        let compiler = Compiler::new(config.clone(), &options.compile);
        let cache = options
            .cache
            .enabled
            .then(|| ProgramCache::new(&options.cache));
        Ok(Runtime {
            config,
            queue,
            next_id,
            next_res: AtomicU64::new(0),
            scheduler: Some(scheduler),
            supervisor: Some(supervisor),
            done_rx: Some(Mutex::new(done_rx)),
            worker_busy,
            par: None,
            trace,
            shards,
            protection: options.protection,
            supervise: options.supervise,
            poison,
            compiler,
            cache,
            cancels,
            gate,
            optimized_jobs: AtomicU64::new(0),
            instructions_eliminated: AtomicU64::new(0),
            est_device_cycles_saved: AtomicU64::new(0),
        })
    }

    /// Starts the sharded scheduling engine: one fused scheduler+executor
    /// domain thread per shard, each owning `bank % shards == d` banks.
    fn new_parallel(
        config: MemoryConfig,
        options: RuntimeOptions,
    ) -> Result<Runtime, RuntimeError> {
        if options.watchdog.enabled {
            return Err(RuntimeError::Config(
                "the execution watchdog requires SchedMode::Classic (inline domains \
                 cannot be hung-scanned)"
                    .into(),
            ));
        }
        let chaos = options.active_chaos();
        if let Some(plan) = chaos {
            if plan.stall_permille > 0 {
                return Err(RuntimeError::Config(
                    "chaos stall injection requires SchedMode::Classic (a stalled inline \
                     domain would wedge its whole bank partition)"
                        .into(),
                ));
            }
            chaos::install_quiet_hook();
        }
        let domains = options.shards.clamp(1, config.banks);
        let trace = match &options.trace_path {
            Some(path) => Some(Arc::new(
                EventTrace::create(path).map_err(RuntimeError::Trace)?,
            )),
            None => None,
        };
        let cancels: CancelSet = Arc::new(Mutex::new(HashSet::new()));
        let gate = Arc::new(Gate::new(options.start_paused));
        let units = MemoryController::new(config.clone());
        let unit_banks: Vec<usize> = (0..units.pim_unit_count())
            .map(|i| units.pim_unit(i).bank)
            .collect();
        let injectors: Vec<Arc<JobQueue<Submission>>> = (0..domains)
            .map(|_| Arc::new(JobQueue::new(options.queue_capacity)))
            .collect();
        let rings: Vec<Arc<Mutex<Vec<DoneMsg>>>> = (0..domains)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();
        let handles: Vec<JoinHandle<DomainOutput>> = (0..domains)
            .map(|d| {
                let ctx = DomainCtx {
                    domain: d,
                    domains,
                    config: config.clone(),
                    injectors: injectors.clone(),
                    ring: Arc::clone(&rings[d]),
                    gate: Arc::clone(&gate),
                    trace: trace.clone(),
                    canceller: Canceller::new(
                        Arc::clone(&cancels),
                        options.notify.clone(),
                        trace.clone(),
                    ),
                    notify: options.notify.clone(),
                    dispatch: options.dispatch,
                    issue_policy: options.issue_policy,
                    protection: options.protection,
                    faults: options.faults.clone(),
                    batch: options.batch,
                    compile: options.compile,
                    chaos,
                    max_redispatch: options.health.max_redispatch,
                    max_job_retries: options.supervise.max_job_retries,
                };
                std::thread::spawn(move || domain_loop(ctx))
            })
            .collect();
        let compiler = Compiler::new(config.clone(), &options.compile);
        let cache = options
            .cache
            .enabled
            .then(|| ProgramCache::new(&options.cache));
        Ok(Runtime {
            queue: Arc::new(JobQueue::new(options.queue_capacity)),
            config,
            next_id: Arc::new(AtomicU64::new(0)),
            next_res: AtomicU64::new(0),
            scheduler: None,
            supervisor: None,
            done_rx: None,
            worker_busy: Arc::new(Vec::new()),
            par: Some(ParEngine {
                domains,
                dispatch: options.dispatch,
                injectors,
                rings,
                handles,
                route_cursor: AtomicUsize::new(0),
                unit_banks,
            }),
            trace,
            shards: domains,
            protection: options.protection,
            supervise: options.supervise,
            poison: None,
            compiler,
            cache,
            cancels,
            gate,
            optimized_jobs: AtomicU64::new(0),
            instructions_eliminated: AtomicU64::new(0),
            est_device_cycles_saved: AtomicU64::new(0),
        })
    }

    /// Runs a program through the on-enqueue compiler, consulting the
    /// compiled-program cache first; a hit skips the whole pass pipeline.
    /// Returns the shared optimized program and whether it was a hit.
    /// The optimization counters accumulate either way, so the reported
    /// savings are identical with and without the cache.
    fn compile(&self, program: &PimProgram) -> Result<(Arc<PimProgram>, bool), CompileError> {
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(program) {
                self.credit_optimization(hit.instructions_saved, hit.cycles_saved);
                return Ok((hit.program, true));
            }
        }
        let (optimized, report) = self.compiler.optimize(program)?;
        let instructions_saved = report.instructions_saved();
        let cycles_saved = report.cycles_saved();
        self.credit_optimization(instructions_saved, cycles_saved);
        let optimized = Arc::new(optimized);
        if let Some(cache) = &self.cache {
            cache.insert(program, &optimized, instructions_saved, cycles_saved);
        }
        Ok((optimized, false))
    }

    fn credit_optimization(&self, instructions_saved: u64, cycles_saved: u64) {
        if instructions_saved > 0 || cycles_saved > 0 {
            self.optimized_jobs.fetch_add(1, Ordering::Relaxed);
            self.instructions_eliminated
                .fetch_add(instructions_saved, Ordering::Relaxed);
            self.est_device_cycles_saved
                .fetch_add(cycles_saved, Ordering::Relaxed);
        }
    }

    /// The memory configuration the runtime serves.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Current depth of the bounded submission queue — the live
    /// admission signal a serving frontend sheds load on (the queue
    /// depth *histograms* in [`RuntimeStats`] cover the same pressure
    /// retrospectively).
    pub fn queue_len(&self) -> usize {
        match &self.par {
            Some(par) => par.injectors.iter().map(|q| q.len()).sum(),
            None => self.queue.len(),
        }
    }

    /// Capacity of the bounded submission queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Opens the scheduler gate of a runtime created with
    /// [`RuntimeOptions::start_paused`]. Idempotent; a no-op for
    /// runtimes that started running.
    pub fn resume(&self) {
        self.gate.open();
    }

    /// Requests cancellation of a still-queued job. Best-effort: the
    /// scheduler drops the job (and sends [`JobNotice::Cancelled`], if a
    /// notice channel is configured) if it is still in the submission
    /// queue or a bank FIFO when the request is observed; a job already
    /// issued to a worker runs to completion and reports an outcome as
    /// usual. Cancelled jobs produce no [`JobOutcome`] and count in
    /// [`RuntimeStats::cancelled`].
    pub fn cancel(&self, job_id: u64) {
        sync::lock(&self.cancels).insert(job_id);
    }

    /// Serializable snapshot of the poison-job quarantine (empty when the
    /// watchdog is disabled — the registry only exists under one).
    pub fn poison_report(&self) -> PoisonReport {
        self.poison.as_ref().map(|p| p.report()).unwrap_or_default()
    }

    /// Refuses a program whose fingerprint the poison registry has
    /// quarantined. Checked after compilation so the fingerprint matches
    /// what the watchdog strikes (the dispatched, optimized program;
    /// structural hashing is placement-normalized, so retargeting does
    /// not change it).
    fn check_poison(&self, program: &PimProgram) -> Result<(), u64> {
        if let Some(poison) = &self.poison {
            let fingerprint = cache::fingerprint(program);
            if poison.is_quarantined(fingerprint) {
                return Err(fingerprint);
            }
        }
        Ok(())
    }

    /// Submits a job, blocking while the queue is full (backpressure).
    /// Returns the job id.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::QueueClosed`] after [`Runtime::finish`],
    /// or [`RuntimeError::Poisoned`] for a program the watchdog's poison
    /// registry has quarantined.
    pub fn submit(&self, program: PimProgram, placement: Placement) -> Result<u64, RuntimeError> {
        self.submit_due(program, placement, None)
    }

    /// Like [`Runtime::submit`], with an absolute queueing deadline: the
    /// EDF issue policy orders on it, and a job still queued past it is
    /// dropped as expired at issue time.
    ///
    /// # Errors
    ///
    /// As [`Runtime::submit`].
    pub fn submit_due(
        &self,
        program: PimProgram,
        placement: Placement,
        deadline: Option<Instant>,
    ) -> Result<u64, RuntimeError> {
        let (program, cache_hit) = self.compile(&program).map_err(RuntimeError::Compile)?;
        self.check_poison(&program)
            .map_err(|fingerprint| RuntimeError::Poisoned { fingerprint })?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Some(trace) = &self.trace {
            trace.record(&Event::Submit { job: id });
            if cache_hit {
                trace.record(&Event::CacheHit { job: id });
            }
        }
        let sub = Submission::Job(PimJob {
            id,
            program,
            placement,
            deadline,
        });
        match &self.par {
            Some(par) => par.injectors[par.route(placement)]
                .push(sub)
                .map_err(|_| RuntimeError::QueueClosed)?,
            None => self
                .queue
                .push(sub)
                .map_err(|_| RuntimeError::QueueClosed)?,
        }
        Ok(id)
    }

    /// Submits without blocking. A refused program is dropped — clients
    /// that want to retry keep their own clone. A program the compiler
    /// rejects is submitted *unoptimized* (the error, if real, surfaces
    /// at execution).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the queue is at capacity (shed load or
    /// retry), [`PushError::Closed`] after [`Runtime::finish`], or
    /// [`PushError::Poisoned`] for a quarantined program.
    pub fn try_submit(&self, program: PimProgram, placement: Placement) -> Result<u64, PushError> {
        self.try_submit_due(program, placement, None)
    }

    /// Like [`Runtime::try_submit`], with an absolute queueing deadline
    /// (see [`Runtime::submit_due`]).
    ///
    /// # Errors
    ///
    /// As [`Runtime::try_submit`].
    pub fn try_submit_due(
        &self,
        program: PimProgram,
        placement: Placement,
        deadline: Option<Instant>,
    ) -> Result<u64, PushError> {
        // On compile failure the original program is submitted verbatim;
        // no defensive clone is needed because the compiler borrows it.
        let (program, cache_hit) = match self.compile(&program) {
            Ok(compiled) => compiled,
            Err(_) => (Arc::new(program), false),
        };
        if let Err(fingerprint) = self.check_poison(&program) {
            return Err(PushError::Poisoned { fingerprint });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let sub = Submission::Job(PimJob {
            id,
            program,
            placement,
            deadline,
        });
        match &self.par {
            Some(par) => par.injectors[par.route(placement)].try_push(sub)?,
            None => self.queue.try_push(sub)?,
        }
        if let Some(trace) = &self.trace {
            trace.record(&Event::Submit { job: id });
            if cache_hit {
                trace.record(&Event::CacheHit { job: id });
            }
        }
        Ok(id)
    }

    /// Submits a dependency chain atomically: a group of jobs where each
    /// member can gate on earlier members (by chain index). A gated
    /// member is held out of the bank FIFOs until every predecessor's
    /// *final* attempt retires — composing with protection re-dispatch
    /// (the gate waits for the last attempt), cancellation (a cancelled
    /// predecessor cascades: dependents are dropped and report as
    /// cancelled), and batching (released jobs batch like any others).
    /// [`ProgramSource::Deferred`] members additionally receive their
    /// data dependencies' labeled outputs when they release.
    ///
    /// Chain members bypass the on-enqueue compiler: their programs may
    /// read rows produced by predecessors or resident pins, which
    /// per-program dead-code analysis cannot see. Pre-optimize with
    /// [`Compiler`](coruscant_compiler::Compiler) where that is safe.
    ///
    /// Returns the member job ids, in chain order. Blocks while the
    /// queue is full.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Config`] when a member references a chain index at
    /// or after its own position (dependencies must point backwards), or
    /// [`RuntimeError::QueueClosed`] after [`Runtime::finish`].
    pub fn submit_chain(&self, chain: Vec<ChainJob>) -> Result<Vec<u64>, RuntimeError> {
        if self.par.is_some() {
            return Err(RuntimeError::Config(
                "dependency chains require SchedMode::Classic (cross-domain gates are \
                 not sharded)"
                    .into(),
            ));
        }
        for (i, member) in chain.iter().enumerate() {
            let bad = |what: &str, idx: usize| {
                RuntimeError::Config(format!(
                    "chain member {i}: {what} index {idx} does not precede it"
                ))
            };
            for &d in &member.after {
                if d >= i {
                    return Err(bad("after", d));
                }
            }
            if let ProgramSource::Deferred { deps, .. } = &member.source {
                for &d in deps {
                    if d >= i {
                        return Err(bad("dep", d));
                    }
                }
            }
        }
        let base = self
            .next_id
            .fetch_add(chain.len() as u64, Ordering::Relaxed);
        let ids: Vec<u64> = (0..chain.len() as u64).map(|i| base + i).collect();
        let gated: Vec<GatedJob> = chain
            .into_iter()
            .enumerate()
            .map(|(i, member)| {
                let mut after: Vec<u64> = member.after.iter().map(|&d| base + d as u64).collect();
                let source = match member.source {
                    ProgramSource::Ready(program) => GatedSource::Ready(Arc::new(program)),
                    ProgramSource::Deferred { deps, build } => {
                        let dep_ids: Vec<u64> = deps.iter().map(|&d| base + d as u64).collect();
                        after.extend(&dep_ids);
                        GatedSource::Deferred { dep_ids, build }
                    }
                };
                after.sort_unstable();
                after.dedup();
                GatedJob {
                    id: base + i as u64,
                    source,
                    placement: member.placement,
                    after,
                }
            })
            .collect();
        if let Some(trace) = &self.trace {
            for &id in &ids {
                trace.record(&Event::Submit { job: id });
            }
        }
        self.queue
            .push(Submission::Chain(gated))
            .map_err(|_| RuntimeError::QueueClosed)?;
        Ok(ids)
    }

    /// Submits one job gated on previously returned job ids: it is held
    /// out of the bank FIFOs until every id in `after` has retired its
    /// final attempt. Unlike chain members the program goes through the
    /// on-enqueue compiler (it is standalone by construction — ordering
    /// gates carry no data).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Config`] when `after` references an id not yet
    /// returned by this runtime, [`RuntimeError::QueueClosed`] after
    /// [`Runtime::finish`], or [`RuntimeError::Compile`].
    pub fn submit_after(
        &self,
        program: PimProgram,
        placement: Placement,
        after: &[u64],
    ) -> Result<u64, RuntimeError> {
        if self.par.is_some() {
            return Err(RuntimeError::Config(
                "submit_after requires SchedMode::Classic (cross-domain gates are not \
                 sharded)"
                    .into(),
            ));
        }
        let (program, cache_hit) = self.compile(&program).map_err(RuntimeError::Compile)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        for &d in after {
            if d >= id {
                return Err(RuntimeError::Config(format!(
                    "submit_after: dependency {d} is not an existing job id"
                )));
            }
        }
        if let Some(trace) = &self.trace {
            trace.record(&Event::Submit { job: id });
            if cache_hit {
                trace.record(&Event::CacheHit { job: id });
            }
        }
        let mut after = after.to_vec();
        after.sort_unstable();
        after.dedup();
        self.queue
            .push(Submission::Chain(vec![GatedJob {
                id,
                source: GatedSource::Ready(program),
                placement,
                after,
            }]))
            .map_err(|_| RuntimeError::QueueClosed)?;
        Ok(id)
    }

    /// Pins weights resident: runs `program` once on the PIM unit with
    /// index `unit_idx` (modulo the unit count) and registers a residency
    /// there. Jobs submitted with [`Placement::Resident`] and the
    /// returned `res` id run on the hosting unit with their addresses
    /// relocated tile-relative — DBC index and row preserved — so they
    /// can copy the pinned rows out of the tile's storage DBCs. If the
    /// hosting bank is quarantined, the scheduler re-runs the pin program
    /// on a healthy unit *before* re-placing any dependent job there
    /// (counted in [`PipelineStats::rematerializations`]).
    ///
    /// The pin program is submitted verbatim (no compiler pass): its
    /// loads look dead to per-program analysis, so pin programs should
    /// end with `Readout` steps echoing a sentinel row.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::QueueClosed`] after [`Runtime::finish`].
    pub fn pin_resident(
        &self,
        program: PimProgram,
        unit_idx: usize,
    ) -> Result<ResidentPin, RuntimeError> {
        if self.par.is_some() {
            return Err(RuntimeError::Config(
                "resident pins require SchedMode::Classic (residency is tracked by the \
                 single scheduler)"
                    .into(),
            ));
        }
        let res = self.next_res.fetch_add(1, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Some(trace) = &self.trace {
            trace.record(&Event::Submit { job: id });
        }
        self.queue
            .push(Submission::Pin {
                res,
                unit_idx,
                job: PimJob {
                    id,
                    program: Arc::new(program),
                    placement: Placement::Resident(res),
                    deadline: None,
                },
            })
            .map_err(|_| RuntimeError::QueueClosed)?;
        Ok(ResidentPin { res, job: id })
    }

    /// Closes the queue, drains all pending work, joins the scheduler and
    /// workers, replays the timing accounting, and returns the report.
    ///
    /// Worker panics do **not** fail the session: the supervisor caught
    /// them live, their jobs were re-dispatched or abandoned, and the
    /// report is built from every completion the scheduler accounted for
    /// ([`SupervisionStats`] records what was lost along the way). A
    /// permanently stalled worker cannot wedge this call either — the
    /// collection is bounded by [`SuperviseOptions::drain_deadline_ms`].
    ///
    /// # Errors
    ///
    /// Returns the first job error in issue order, or
    /// [`RuntimeError::WorkerLost`] if the scheduler thread itself
    /// panicked.
    pub fn finish(mut self) -> Result<RuntimeReport, RuntimeError> {
        let drained = match self.par.take() {
            Some(par) => self.drain_parallel(par)?,
            None => self.drain_classic()?,
        };
        self.assemble_report(drained)
    }

    /// Classic drain: close the queue, join the single scheduler thread,
    /// collect the done-channel stream (bounded when supervision is
    /// dirty), and fold the scheduler's stage profile plus the per-worker
    /// busy meters into [`SchedStats`].
    fn drain_classic(&mut self) -> Result<DrainedSession, RuntimeError> {
        self.queue.close();
        // A paused runtime drains on finish: open the gate so the
        // scheduler can run the backlog down.
        self.gate.open();
        let sched_out = self
            .scheduler
            .take()
            .expect("scheduler joined only once")
            .join()
            .map_err(|_| RuntimeError::WorkerLost)?;

        let supervisor = self.supervisor.take().expect("classic mode");
        // Stop supervision: drop the factory and every live sender so
        // workers drain their channels and exit. Dispatches still
        // buffered for down shards are already in `sched_out.lost`.
        drop(supervisor.close());
        let lost: HashSet<u64> = sched_out.lost.iter().copied().collect();
        let done_rx = self
            .done_rx
            .take()
            .expect("classic mode")
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let stalled = supervisor.stalled_workers();
        let mut completions: Vec<DoneMsg> = if stalled == 0 && lost.is_empty() {
            // Every worker has exited (or exits as its channel drains):
            // the completion stream ends when the last sender drops.
            done_rx.iter().collect()
        } else {
            // A stalled or abandoned-but-undetached worker still holds a
            // `done` sender, so the stream never disconnects. Collect
            // exactly the completions the scheduler accounted for,
            // bounded by the drain deadline. The lost filter drops late
            // results of replaced or given-up workers.
            let expected = (sched_out.issued as usize).saturating_sub(lost.len());
            let deadline = Instant::now() + self.supervise.drain_deadline();
            let mut collected = Vec::with_capacity(expected);
            while collected.len() < expected {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match done_rx.recv_timeout(deadline - now) {
                    Ok(c) => {
                        if !lost.contains(&c.seq) {
                            collected.push(c);
                        }
                    }
                    Err(_) => break,
                }
            }
            collected
        };
        drop(done_rx);
        let workers_lost = supervisor.join_all(Instant::now() + self.supervise.drain_deadline());
        completions.sort_by_key(|c| c.seq);

        let (panics_caught, shard_restarts, shards_retired) = supervisor.counters();
        let supervision = SupervisionStats {
            panics_caught,
            shard_restarts,
            shards_retired,
            workers_lost,
            ..sched_out.supervision
        };

        // Fold the loop's stage profile and the worker busy meters into
        // the occupancy stats. The classic serial bottleneck is whichever
        // is larger: the scheduler's own non-wait CPU, or the busiest
        // worker. Pops are excluded — blocked waits are idleness, not
        // work.
        let p = &sched_out.profile;
        let worker_busy: Vec<u64> = self
            .worker_busy
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let sched_busy = p.admit_micros + p.place_micros + p.dispatch_micros + p.ack_micros;
        let busy_micros = worker_busy
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(sched_busy);
        let per_domain: Vec<DomainStats> = (0..self.shards)
            .map(|s| DomainStats {
                domain: s,
                issued: p.per_shard_issued.get(s).copied().unwrap_or(0),
                jobs: p.per_shard_jobs.get(s).copied().unwrap_or(0),
                steals: 0,
                busy_micros: worker_busy.get(s).copied().unwrap_or(0),
                ring_peak: 0,
            })
            .collect();
        let sched_stats = SchedStats {
            mode: "classic".into(),
            domains: self.shards,
            pop_micros: p.pop_micros,
            admit_micros: p.admit_micros,
            place_micros: p.place_micros,
            dispatch_micros: p.dispatch_micros,
            ack_micros: p.ack_micros,
            busy_micros,
            wall_micros: p.wall_micros,
            occupancy_pct: if p.wall_micros > 0 {
                busy_micros as f64 / p.wall_micros as f64 * 100.0
            } else {
                0.0
            },
            steals: 0,
            per_domain,
        };
        Ok(DrainedSession {
            sched_out,
            completions,
            supervision,
            sched_stats,
        })
    }

    /// Parallel drain: close every injector, join the domain threads,
    /// merge their completion rings into one seq-ordered stream, and sum
    /// their counters — the merged-accounting step that lets the shared
    /// replay treat a sharded session exactly like a classic one.
    fn drain_parallel(&mut self, par: ParEngine) -> Result<DrainedSession, RuntimeError> {
        for injector in &par.injectors {
            injector.close();
        }
        self.gate.open();
        let mut outs: Vec<DomainOutput> = Vec::with_capacity(par.handles.len());
        for handle in par.handles {
            outs.push(handle.join().map_err(|_| RuntimeError::WorkerLost)?);
        }
        let mut completions: Vec<DoneMsg> = Vec::new();
        for ring in &par.rings {
            completions.append(&mut sync::lock(ring));
        }
        // Domain seqs are strided (`seq ≡ domain (mod domains)`), so a
        // plain sort restores one globally consistent issue order.
        completions.sort_by_key(|c| c.seq);

        let mut sched_out = SchedulerOutput::plain(
            Histogram::new(),
            0,
            0,
            0,
            (0, 0),
            (0, 0),
            (0, 0, 0, 0),
            SupervisionStats::default(),
            Vec::new(),
            SchedProfile::default(),
        );
        let mut supervision = SupervisionStats::default();
        let mut per_domain: Vec<DomainStats> = Vec::with_capacity(outs.len());
        let (mut busy_max, mut wall_max) = (0u64, 0u64);
        let mut stage = [0u64; 5];
        let mut steals = 0u64;
        for o in &outs {
            sched_out.depth_hist.merge(&o.depth_hist);
            sched_out.issued += o.issued;
            sched_out.batches += o.batches;
            sched_out.batched_jobs += o.batched_jobs;
            sched_out.splice_hits += o.splice_hits;
            sched_out.splice_misses += o.splice_misses;
            sched_out.cancelled += o.cancelled;
            sched_out.expired += o.expired;
            sched_out.redispatches += o.redispatches;
            sched_out.cascaded += o.dropped;
            supervision.panics_caught += o.panics;
            supervision.crash_redispatches += o.crash_redispatches;
            supervision.abandoned_jobs += o.abandoned_jobs;
            stage[0] += o.pop_micros;
            stage[1] += o.admit_micros;
            stage[2] += o.place_micros;
            stage[3] += o.dispatch_micros;
            stage[4] += o.ack_micros;
            steals += o.steals;
            busy_max = busy_max.max(o.busy_micros);
            wall_max = wall_max.max(o.wall_micros);
            per_domain.push(DomainStats {
                domain: o.domain,
                issued: o.issued,
                jobs: o.jobs_done,
                steals: o.steals,
                busy_micros: o.busy_micros,
                ring_peak: o.ring_peak,
            });
        }
        let sched_stats = SchedStats {
            mode: "parallel".into(),
            domains: par.domains,
            pop_micros: stage[0],
            admit_micros: stage[1],
            place_micros: stage[2],
            dispatch_micros: stage[3],
            ack_micros: stage[4],
            // The serial bottleneck is the busiest domain's CPU time;
            // occupancy is that domain's busy share of its own wall.
            busy_micros: busy_max,
            wall_micros: wall_max,
            occupancy_pct: if wall_max > 0 {
                busy_max as f64 / wall_max as f64 * 100.0
            } else {
                0.0
            },
            steals,
            per_domain,
        };
        Ok(DrainedSession {
            sched_out,
            completions,
            supervision,
            sched_stats,
        })
    }

    /// Engine-agnostic report assembly: replays the merged completion
    /// stream through one [`MemoryController`] and builds the final
    /// stats. Both scheduling engines end here, which is what keeps
    /// their accounting identical.
    fn assemble_report(self, drained: DrainedSession) -> Result<RuntimeReport, RuntimeError> {
        let DrainedSession {
            sched_out,
            completions,
            supervision,
            sched_stats,
        } = drained;

        // Timing accounting: replay every instruction's measured device
        // cost through one MemoryController in issue order — the same
        // accounting a sequential dispatcher would produce, so bank
        // conflicts serialize and distinct banks overlap. Every attempt
        // (retries and re-dispatches included) is replayed, so wasted
        // work honestly degrades the modeled throughput; only the final
        // attempt per job becomes its reported outcome.
        let mut timing = MemoryController::new(self.config.clone());
        let mut wait_hist = Histogram::new();
        let mut per_bank: Vec<BankOccupancy> = (0..self.config.banks)
            .map(|bank| BankOccupancy {
                bank,
                ..BankOccupancy::default()
            })
            .collect();
        let mut instructions = 0u64;
        let mut device_cycles = 0u64;
        let mut fstats = FaultStats {
            redispatches: sched_out.redispatches,
            scrubs: sched_out.scrubs,
            scrub: sched_out.scrub_total,
            suspect_banks: sched_out.suspect_banks,
            quarantined_banks: sched_out.quarantined_banks,
            degraded_capacity: sched_out.degraded_capacity,
            ..FaultStats::default()
        };
        // Winning (latest-seq) attempt per job id, with any error it hit.
        let mut winners: HashMap<u64, (JobOutcome, Option<PimError>)> = HashMap::new();
        for c in completions {
            let bank = c.unit.bank;
            let wait = timing.bank_free_at(bank).saturating_sub(timing.now());
            let mut done = 0;
            let mut batch_device = 0;
            for cost in &c.instr_costs {
                let t = timing.submit(Request::Pim {
                    location: c.unit,
                    device_cycles: cost.cycles,
                    energy_pj: cost.energy_pj,
                })?;
                done = done.max(t);
                batch_device += cost.cycles;
            }
            instructions += c.instr_costs.len() as u64;
            device_cycles += batch_device;
            fstats.replicas_run += u64::from(c.replicas);
            fstats.faults_detected += c.faults_detected;
            fstats.retries += u64::from(c.retries);
            fstats.votes_overturned += c.votes_overturned;
            // Demux the batched output stream back into per-job outputs
            // (readout counts were recorded at dispatch; passes neither
            // remove nor reorder readouts, so the slices stay exact) and
            // apportion the batch's measured device cycles evenly, with
            // the remainder on the first member.
            let members = c.slots.len();
            let share = batch_device / members.max(1) as u64;
            let mut remainder = batch_device - share * members as u64;
            let mut cursor = 0usize;
            for slot in &c.slots {
                let end = (cursor + slot.readouts).min(c.outputs.len());
                let start = cursor.min(c.outputs.len());
                cursor += slot.readouts;
                let outputs = c.outputs[start..end].to_vec();
                let job_device = share + remainder;
                remainder = 0;
                wait_hist.record(wait);
                per_bank[bank].jobs += 1;
                per_bank[bank].wait_cycles += wait;
                if let Some(trace) = &self.trace {
                    trace.record(&Event::Complete {
                        job: slot.job_id,
                        bank,
                        wait,
                        done,
                    });
                }
                let outcome = JobOutcome {
                    job_id: slot.job_id,
                    seq: c.seq,
                    unit: c.unit,
                    bank,
                    outputs,
                    device_cycles: job_device,
                    wait_cycles: wait,
                    completion: done,
                    attempt: slot.attempt,
                    replicas: c.replicas,
                    faults_detected: c.faults_detected,
                    retries: c.retries,
                    votes_overturned: c.votes_overturned,
                    verified: c.verified,
                    batch: members as u32,
                };
                // Attempts arrive in seq order, so a later re-dispatch of
                // the same job replaces the unverified earlier outcome.
                winners.insert(slot.job_id, (outcome, c.error.clone()));
            }
        }
        let makespan = timing.drain();
        for (bank, busy) in timing.bank_stats().busy_cycles.iter().enumerate() {
            per_bank[bank].busy_cycles = *busy;
        }
        // Surface the first (issue-order) error among winning attempts.
        let mut first_err: Option<(u64, PimError)> = None;
        let mut outcomes = Vec::with_capacity(winners.len());
        for (outcome, error) in winners.into_values() {
            if let Some(err) = error {
                if first_err.as_ref().is_none_or(|(seq, _)| outcome.seq < *seq) {
                    first_err = Some((outcome.seq, err));
                }
                continue;
            }
            outcomes.push(outcome);
        }
        if let Some((_, err)) = first_err {
            return Err(RuntimeError::Pim(err));
        }
        outcomes.sort_by_key(|o| o.job_id);
        if self.protection.is_active() {
            fstats.protected_jobs = outcomes.len() as u64;
            fstats.unverified_jobs = outcomes.iter().filter(|o| !o.verified).count() as u64;
        }

        let jobs = outcomes.len() as u64;
        let modeled_us = makespan as f64 * self.config.memory_cycle_ns / 1000.0;
        let stats = RuntimeStats {
            jobs,
            cancelled: sched_out.cancelled,
            expired: sched_out.expired,
            instructions,
            shards: self.shards,
            optimized_jobs: self.optimized_jobs.load(Ordering::Relaxed),
            instructions_eliminated: self.instructions_eliminated.load(Ordering::Relaxed),
            est_device_cycles_saved: self.est_device_cycles_saved.load(Ordering::Relaxed),
            makespan_cycles: makespan,
            device_cycles,
            jobs_per_us: if modeled_us > 0.0 {
                jobs as f64 / modeled_us
            } else {
                0.0
            },
            per_bank,
            queue_depth: sched_out.depth_hist,
            wait: wait_hist,
            controller: *timing.stats(),
            bank_stats: timing.bank_stats().clone(),
            faults: fstats,
            cache: self
                .cache
                .as_ref()
                .map(ProgramCache::stats)
                .unwrap_or_default(),
            batch: BatchStats {
                batches: sched_out.batches,
                batched_jobs: sched_out.batched_jobs,
                splice_hits: sched_out.splice_hits,
                splice_misses: sched_out.splice_misses,
            },
            pipeline: PipelineStats {
                deferred_jobs: sched_out.deferred,
                released_jobs: sched_out.released,
                cascade_cancelled: sched_out.cascaded,
                residents: sched_out.pins,
                rematerializations: sched_out.remats,
            },
            supervision,
            sched: sched_stats,
        };
        if let Some(trace) = &self.trace {
            trace.flush();
        }
        Ok(RuntimeReport { outcomes, stats })
    }
}

/// Convenience: run a batch of [`Placement::Auto`] programs through a
/// fresh runtime and return the report.
///
/// # Errors
///
/// Propagates runtime and job errors.
pub fn run_batch(
    config: &MemoryConfig,
    programs: Vec<PimProgram>,
    options: RuntimeOptions,
) -> Result<RuntimeReport, RuntimeError> {
    let runtime = Runtime::new(config.clone(), options)?;
    for program in programs {
        runtime.submit(program, Placement::Auto)?;
    }
    runtime.finish()
}

/// Readouts a program contributes to its dispatch's output stream.
fn count_readouts(program: &PimProgram) -> usize {
    program
        .steps
        .iter()
        .filter(|s| matches!(s, Step::Readout { .. }))
        .count()
}

/// The program one dispatch executes: a single member's program shared
/// as-is, or the cross-boundary-optimized splice of all members (falling
/// back to the plain splice — still semantics-preserving — if the batch
/// pipeline fails).
fn batch_program(jobs: &[PimJob], compiler: &Compiler) -> Arc<PimProgram> {
    if jobs.len() == 1 {
        return Arc::clone(&jobs[0].program);
    }
    let spliced = splice_programs(jobs.iter().map(|j| (j.id, j.program.as_ref())));
    match compiler.optimize(&spliced.program) {
        Ok((optimized, _)) => Arc::new(optimized),
        Err(_) => Arc::new(spliced.program),
    }
}

/// [`batch_program`] with the batched-splice cache in front: repeated
/// same-shape batches skip splice + cross-boundary optimization.
fn batch_program_cached(
    jobs: &[PimJob],
    compiler: &Compiler,
    cache: &mut Option<BatchCache>,
) -> Arc<PimProgram> {
    if jobs.len() >= 2 {
        if let Some(cache) = cache.as_mut() {
            let members: Vec<&PimProgram> = jobs.iter().map(|j| j.program.as_ref()).collect();
            if let Some(hit) = cache.get(&members) {
                return hit;
            }
            let program = batch_program(jobs, compiler);
            cache.insert_if_missed(&members, &program);
            return program;
        }
    }
    batch_program(jobs, compiler)
}

/// The plain scheduler's minimal supervision state: outstanding
/// dispatches (kept cloneable for verbatim re-send to a restarted
/// shard), per-seq crash retries, and lost-seq accounting.
#[derive(Default)]
struct PlainRecovery {
    /// `seq` → (shard, dispatch copy, member job ids).
    outstanding: HashMap<u64, (usize, WorkMsg, Vec<u64>)>,
    /// Crash retries per outstanding seq.
    crash_retries: HashMap<u64, u32>,
    /// Seqs that will never complete (abandoned dispatches).
    lost: Vec<u64>,
    /// Scheduler-side supervision counters.
    sup: SupervisionStats,
}

/// Processes one worker acknowledgement in the plain scheduler:
/// completions resolve dependency gates; a shard-down report re-sends
/// the shard's outstanding dispatches verbatim (the supervisor buffers
/// them until the replacement worker is up), abandoning the crashed
/// attempt once its retry budget is spent.
#[allow(clippy::too_many_arguments)]
fn plain_handle_ack(
    ack: AckMsg,
    rec: &mut PlainRecovery,
    supervisor: &Supervisor<WorkMsg>,
    opts: &SuperviseOptions,
    trace: &Option<Arc<EventTrace>>,
    canceller: &mut Canceller,
    deps: &mut DepTracker,
    ready: &mut std::collections::VecDeque<PimJob>,
) {
    let abandon = |rec: &mut PlainRecovery,
                   canceller: &mut Canceller,
                   deps: &mut DepTracker,
                   ready: &mut std::collections::VecDeque<PimJob>,
                   seq: u64| {
        let Some((_, _, ids)) = rec.outstanding.remove(&seq) else {
            return;
        };
        rec.crash_retries.remove(&seq);
        rec.lost.push(seq);
        for id in ids {
            rec.sup.abandoned_jobs += 1;
            if let Some(tx) = &canceller.notify {
                let _ = tx.send(JobNotice::Abandoned {
                    job_id: id,
                    hung: false,
                });
            }
            let rel = deps.on_final(id, true, Vec::new());
            for fid in rel.failed {
                canceller.drop_cascaded(fid);
            }
            ready.extend(rel.ready);
        }
    };
    match ack {
        AckMsg::Started { .. } | AckMsg::Scrub { .. } => {}
        AckMsg::Job {
            seq,
            errored,
            members,
            ..
        } => {
            if rec.outstanding.remove(&seq).is_none() {
                rec.sup.stale_acks += 1;
                return;
            }
            rec.crash_retries.remove(&seq);
            for (id, outputs) in members {
                let rel = deps.on_final(id, errored, outputs);
                for fid in rel.failed {
                    canceller.drop_cascaded(fid);
                }
                ready.extend(rel.ready);
            }
        }
        AckMsg::ShardDown {
            shard,
            generation,
            panicked_seq,
        } => {
            let down = supervisor.mark_down(shard, generation, DownCause::Panic);
            if matches!(down, Down::Stale) {
                return;
            }
            let retired = matches!(down, Down::Retired(_));
            if let Some(trace) = trace {
                trace.record(&Event::ShardDown { shard, hung: false });
            }
            let mut seqs: Vec<u64> = rec
                .outstanding
                .iter()
                .filter(|(_, (s, _, _))| *s == shard)
                .map(|(&seq, _)| seq)
                .collect();
            seqs.sort_unstable();
            for seq in seqs {
                if retired {
                    // No replacement is coming; everything the shard
                    // still owed is lost.
                    abandon(rec, canceller, deps, ready, seq);
                    continue;
                }
                if Some(seq) == panicked_seq {
                    let retries = rec.crash_retries.entry(seq).or_insert(0);
                    if *retries >= opts.max_job_retries {
                        abandon(rec, canceller, deps, ready, seq);
                        continue;
                    }
                    *retries += 1;
                }
                let (_, msg, ids) = &rec.outstanding[&seq];
                rec.sup.crash_redispatches += ids.len() as u64;
                supervisor.send(shard, msg.clone());
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scheduler_loop(
    config: &MemoryConfig,
    queue: &JobQueue<Submission>,
    supervisor: &Supervisor<WorkMsg>,
    shards: usize,
    ack_rx: &mpsc::Receiver<AckMsg>,
    dispatch: DispatchMode,
    trace: Option<Arc<EventTrace>>,
    batch_opts: BatchOptions,
    compile: CompileOptions,
    mut canceller: Canceller,
    supervise_opts: SuperviseOptions,
    issue_policy: IssuePolicy,
) -> SchedulerOutput {
    // A controller used only for PIM-unit geometry (bank-major indexing).
    let units = MemoryController::new(config.clone());
    let unit_count = units.pim_unit_count();
    // The scheduler's own compiler optimizes *across* spliced program
    // boundaries; per-job optimization already happened at submit.
    let compiler = Compiler::new(config.clone(), &compile);
    let max_jobs = batch_opts.cap();
    let grouping = batch_opts.grouping;
    let mut splice_cache = batch_opts.splice_cache();
    let mut sched = BankScheduler::new(config.banks).with_policy(issue_policy);
    let mut place_cursor = 0usize;
    let mut issued = 0u64;
    let mut batches = 0u64;
    let mut batched_jobs = 0u64;
    let mut pins = 0u64;
    // Jobs dropped for an unknown residency (counted with the cascades).
    let mut dropped = 0u64;
    let mut deps = DepTracker::new();
    let mut residents: HashMap<u64, (DbcLocation, Arc<PimProgram>)> = HashMap::new();
    // Dispatches sent whose ack has not been processed yet, kept
    // verbatim so a crashed shard's queue can be re-sent.
    let mut rec = PlainRecovery::default();
    // Armed once supervision has something to drain against a deadline.
    let mut drain_deadline: Option<Instant> = None;
    let mut closed = false;
    let mut drained: Vec<Submission> = Vec::new();
    // Jobs cleared for placement (admitted or released by a retirement).
    let mut ready: std::collections::VecDeque<PimJob> = std::collections::VecDeque::new();
    // Occupancy profile: stage busy times in thread-CPU micros (waits
    // cost ~0 CPU, so blocked pops charge nothing) plus per-shard issue
    // counts. Termination-block CPU rides into the next pop lap.
    let mut profile = SchedProfile {
        per_shard_issued: vec![0; shards],
        per_shard_jobs: vec![0; shards],
        ..SchedProfile::default()
    };
    let wall_start = Instant::now();
    let mut clock = cputime::StageClock::start();
    // Kick-counter snapshot for event-driven pops: workers kick the
    // queue after every ack, and a pop observing a kick newer than this
    // snapshot returns immediately instead of riding out its timeout.
    let mut seen_kicks = queue.kicks();

    loop {
        // 1. Pull newly submitted work. The pop is bounded (never an
        //    unbounded block) so shard-down acks are always noticed, and
        //    kick-aware: a push or a worker ack arriving mid-wait wakes
        //    it immediately, so the 50ms ceiling is only ever ridden out
        //    when the session is truly idle.
        if !closed {
            match queue.pop_kicked(Duration::from_millis(50), seen_kicks) {
                Pop::Item(first) => {
                    drained.push(first);
                    queue.drain_ready(&mut drained);
                }
                Pop::Timeout => {}
                Pop::Closed => closed = true,
            }
        }
        profile.pop_micros += clock.lap();

        // 2. Admit submissions: independent jobs go straight to the
        //    ready list, chains through the dependency tracker, pins
        //    register their residency before their load job places.
        for submission in drained.drain(..) {
            match submission {
                Submission::Job(job) => ready.push_back(job),
                Submission::Chain(chain) => {
                    let rel = deps.admit(chain);
                    for id in rel.failed {
                        canceller.drop_cascaded(id);
                    }
                    ready.extend(rel.ready);
                }
                Submission::Pin { res, unit_idx, job } => {
                    let unit = units.pim_unit(unit_idx % unit_count);
                    residents.insert(res, (unit, Arc::clone(&job.program)));
                    pins += 1;
                    if let Some(trace) = &trace {
                        trace.record(&Event::ResidentPinned {
                            res,
                            job: job.id,
                            bank: unit.bank,
                        });
                    }
                    ready.push_back(job);
                }
            }
        }
        profile.admit_micros += clock.lap();

        // 3. Drain worker acks. The plain loop never re-dispatches for
        //    verification, so every job ack is a final attempt and
        //    resolves gates; shard-down acks trigger minimal recovery.
        //    Snapshot the kick counter first: any ack (and kick) landing
        //    after this line wakes the next pop early — snapshot-then-
        //    drain can never lose a wakeup.
        seen_kicks = queue.kicks();
        while let Ok(ack) = ack_rx.try_recv() {
            plain_handle_ack(
                ack,
                &mut rec,
                supervisor,
                &supervise_opts,
                &trace,
                &mut canceller,
                &mut deps,
                &mut ready,
            );
        }
        // Bring replacement workers up (cheap: gated on a caught panic).
        if supervisor.counters().0 > 0 {
            for ev in supervisor.poll_restarts() {
                if let Some(trace) = &trace {
                    trace.record(&Event::ShardRestart {
                        shard: ev.shard,
                        restarts: ev.restarts,
                    });
                }
            }
        }
        profile.ack_micros += clock.lap();

        // 4+5. Place and issue until nothing new is released (dropping a
        //      cancelled job can cascade and release more work).
        loop {
            // Resolve placement and enqueue into the per-bank FIFOs,
            // dropping jobs cancelled while they waited.
            while let Some(job) = ready.pop_front() {
                if canceller.armed() && canceller.drop_if_cancelled(job.id) {
                    let rel = deps.on_final(job.id, true, Vec::new());
                    for fid in rel.failed {
                        canceller.drop_cascaded(fid);
                    }
                    ready.extend(rel.ready);
                    continue;
                }
                let (unit, program) = match job.placement {
                    Placement::Auto => {
                        let unit = match dispatch {
                            DispatchMode::Circular => {
                                // Bank-major unit indexing: consecutive
                                // jobs land on consecutive banks (§V-C).
                                let u = units.pim_unit(place_cursor % unit_count);
                                place_cursor += 1;
                                u
                            }
                            DispatchMode::SingleBank => units.pim_unit(0),
                        };
                        (unit, Arc::new(job.program.retarget(unit)))
                    }
                    Placement::Unit(idx) => {
                        let unit = units.pim_unit(idx % unit_count);
                        (unit, Arc::new(job.program.retarget(unit)))
                    }
                    Placement::Fixed(loc) => (loc, Arc::new(job.program.retarget(loc))),
                    Placement::Resident(res) => match residents.get(&res) {
                        Some((unit, _)) => (*unit, Arc::new(relocate_to_tile(&job.program, *unit))),
                        None => {
                            // Unknown residency: the job can never run.
                            dropped += 1;
                            canceller.drop_cascaded(job.id);
                            let rel = deps.on_final(job.id, true, Vec::new());
                            for fid in rel.failed {
                                canceller.drop_cascaded(fid);
                            }
                            ready.extend(rel.ready);
                            continue;
                        }
                    },
                };
                sched.enqueue(
                    PimJob {
                        id: job.id,
                        program,
                        placement: job.placement,
                        deadline: job.deadline,
                    },
                    unit.bank,
                );
            }
            profile.place_micros += clock.lap();

            // Issue everything in circular-bank order; route each dispatch
            // to the shard owning its bank so same-bank work stays
            // ordered. With batching on, same-unit jobs splice into one
            // program.
            while let Some(mut issue) = sched.issue_next_batch_grouped(max_jobs, grouping, |_| true)
            {
                for id in canceller.filter_issue(&mut issue.jobs) {
                    let rel = deps.on_final(id, true, Vec::new());
                    for fid in rel.failed {
                        canceller.drop_cascaded(fid);
                    }
                    ready.extend(rel.ready);
                }
                for id in canceller.filter_expired(&mut issue.jobs) {
                    let rel = deps.on_final(id, true, Vec::new());
                    for fid in rel.failed {
                        canceller.drop_cascaded(fid);
                    }
                    ready.extend(rel.ready);
                }
                if issue.jobs.is_empty() {
                    continue;
                }
                let shard = issue.bank % shards;
                let program = batch_program_cached(&issue.jobs, &compiler, &mut splice_cache);
                let unit = program
                    .steps
                    .first()
                    .map_or_else(|| units.pim_unit(issue.bank), Step::target);
                if issue.jobs.len() >= 2 {
                    batches += 1;
                    batched_jobs += issue.jobs.len() as u64;
                    if let Some(trace) = &trace {
                        trace.record(&Event::Batch {
                            seq: issue.seq,
                            bank: issue.bank,
                            jobs: issue.jobs.iter().map(|j| j.id).collect(),
                        });
                    }
                }
                let slots: Vec<SlotMeta> = issue
                    .jobs
                    .iter()
                    .map(|j| SlotMeta {
                        job_id: j.id,
                        readouts: count_readouts(&j.program),
                        attempt: 0,
                    })
                    .collect();
                if let Some(trace) = &trace {
                    for job in &issue.jobs {
                        trace.record(&Event::Issue {
                            job: job.id,
                            seq: issue.seq,
                            bank: issue.bank,
                            shard,
                        });
                    }
                }
                issued += 1;
                profile.per_shard_issued[shard] += 1;
                profile.per_shard_jobs[shard] += issue.jobs.len() as u64;
                let members: Vec<u64> = slots.iter().map(|s| s.job_id).collect();
                let msg = WorkMsg::Job {
                    seq: issue.seq,
                    unit,
                    program,
                    slots,
                };
                rec.outstanding
                    .insert(issue.seq, (shard, msg.clone(), members));
                // A send to a down shard buffers inside the supervisor
                // until the replacement worker is up.
                supervisor.send(shard, msg);
            }
            profile.dispatch_micros += clock.lap();

            if ready.is_empty() {
                break;
            }
        }

        // 6. Termination: drain acks to the last gate, then fail any
        //    unsatisfiable tail. With supervision clean (no panic ever
        //    caught) the wait is the pre-PR blocking recv — a shard-down
        //    ack itself is what would wake it; once supervision is dirty
        //    the drain is bounded by the configured deadline so a lost
        //    shard can never wedge the session.
        if closed && ready.is_empty() {
            if !rec.outstanding.is_empty() {
                if supervisor.counters().0 == 0 {
                    match ack_rx.recv() {
                        Ok(ack) => plain_handle_ack(
                            ack,
                            &mut rec,
                            supervisor,
                            &supervise_opts,
                            &trace,
                            &mut canceller,
                            &mut deps,
                            &mut ready,
                        ),
                        Err(_) => break,
                    }
                    continue;
                }
                let deadline = *drain_deadline
                    .get_or_insert_with(|| Instant::now() + supervise_opts.drain_deadline());
                if Instant::now() >= deadline {
                    // Deadline hit: whatever is still outstanding will
                    // never complete. Abandon it so finish() returns.
                    let seqs: Vec<u64> = rec.outstanding.keys().copied().collect();
                    for seq in seqs {
                        let (_, _, ids) = rec.outstanding.remove(&seq).unwrap();
                        rec.lost.push(seq);
                        for id in ids {
                            rec.sup.abandoned_jobs += 1;
                            if let Some(tx) = &canceller.notify {
                                let _ = tx.send(JobNotice::Abandoned {
                                    job_id: id,
                                    hung: false,
                                });
                            }
                            let rel = deps.on_final(id, true, Vec::new());
                            for fid in rel.failed {
                                canceller.drop_cascaded(fid);
                            }
                            ready.extend(rel.ready);
                        }
                    }
                    continue;
                }
                match ack_rx.recv_timeout(Duration::from_millis(10)) {
                    Ok(ack) => plain_handle_ack(
                        ack,
                        &mut rec,
                        supervisor,
                        &supervise_opts,
                        &trace,
                        &mut canceller,
                        &mut deps,
                        &mut ready,
                    ),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
                continue;
            }
            if deps.is_empty() {
                break;
            }
            // Every dependency that could retire has; what still waits
            // can never run (e.g. gated on a cancelled predecessor's id
            // never submitted, or the queue closed mid-chain).
            let rel = deps.fail_all();
            for fid in rel.failed {
                canceller.drop_cascaded(fid);
            }
        }
    }

    profile.wall_micros = wall_start.elapsed().as_micros() as u64;
    SchedulerOutput::plain(
        sched.depth_histogram().clone(),
        issued,
        batches,
        batched_jobs,
        splice_cache.as_ref().map_or((0, 0), BatchCache::counts),
        (canceller.cancelled, canceller.expired),
        (
            deps.deferred,
            deps.released,
            deps.cascade_cancelled + dropped,
            pins,
        ),
        rec.sup,
        rec.lost,
        profile,
    )
}

/// A dispatched-but-unacknowledged attempt the fault-aware scheduler
/// keeps so it can re-route its member jobs if verification fails. Holds
/// the members' *individual* programs (pre-splice), so an unverified
/// batch re-dispatches each member separately.
struct InflightRec {
    jobs: Vec<PimJob>,
    /// Worker shard the dispatch went to.
    shard: usize,
    /// Bank the dispatch targets (for in-flight cap accounting).
    bank: usize,
    /// When the worker's `Started` heartbeat arrived (watchdog anchor);
    /// `None` until then — a dispatch still queued behind other work
    /// cannot be hung.
    started: Option<Instant>,
    /// Watchdog wall-clock budget for this dispatch.
    budget: Duration,
}

/// The fault-aware scheduler's mutable state, factored out so ack
/// handling can be invoked from both the polling and the blocking paths
/// of the loop.
struct FaultSched<'a> {
    units: MemoryController,
    unit_count: usize,
    shards: usize,
    dispatch: DispatchMode,
    policy: HealthPolicy,
    protection_active: bool,
    batch: BatchOptions,
    compiler: Compiler,
    splice_cache: Option<BatchCache>,
    canceller: Canceller,
    trace: Option<Arc<EventTrace>>,
    supervisor: &'a Supervisor<WorkMsg>,
    supervise: SuperviseOptions,
    watchdog: WatchdogOptions,
    chaos: Option<ChaosPlan>,
    poison: Option<Arc<PoisonRegistry>>,
    sched: BankScheduler,
    health: HealthTracker,
    inflight: HashMap<u64, InflightRec>,
    inflight_per_bank: Vec<usize>,
    /// Re-dispatch count per job id (bounds recovery attempts).
    redispatched: HashMap<u64, u32>,
    /// Crash/hang re-placement count per job id (bounds supervision
    /// recovery, separately from verification re-dispatch).
    crash_retries: HashMap<u64, u32>,
    /// Scheduler-side supervision counters.
    sup: SupervisionStats,
    /// Seqs that will never complete (crashed, hung, or abandoned).
    lost: Vec<u64>,
    place_cursor: usize,
    issued: u64,
    batches: u64,
    batched_jobs: u64,
    redispatches: u64,
    /// Scrub passes awaiting an ack, per shard (zeroed when the shard
    /// goes down — its queued scrubs died with it).
    scrubs_outstanding: Vec<usize>,
    scrubs: u64,
    scrub_total: ScrubOutcome,
    deps: DepTracker,
    /// Residency id → (hosting unit, pin program kept for
    /// re-materialization after quarantine).
    residents: HashMap<u64, (DbcLocation, Arc<PimProgram>)>,
    /// Shared id counter, for re-materialization jobs the scheduler
    /// originates itself.
    next_id: &'a AtomicU64,
    pins: u64,
    remats: u64,
    /// Jobs dropped for an unknown residency (counted with the cascades).
    dropped: u64,
    /// Dispatches issued per worker shard (`bank % shards`).
    per_shard_issued: Vec<u64>,
    /// Member jobs issued per worker shard.
    per_shard_jobs: Vec<u64>,
}

impl FaultSched<'_> {
    /// The next PIM unit in circular order, skipping quarantined banks,
    /// banks owned by a down worker shard, and `avoid` (when
    /// alternatives exist). Falls back to plain circular order if every
    /// unit is excluded.
    fn pick_unit(&mut self, avoid: Option<usize>) -> DbcLocation {
        // One lock for the whole scan instead of one per candidate.
        let shards_dirty = self.supervisor.any_down();
        for _ in 0..self.unit_count {
            let unit = self.units.pim_unit(self.place_cursor % self.unit_count);
            self.place_cursor += 1;
            if self.health.is_quarantined(unit.bank) {
                continue;
            }
            if shards_dirty && self.supervisor.is_down(unit.bank % self.shards) {
                continue;
            }
            if avoid == Some(unit.bank) && self.unit_count > 1 {
                continue;
            }
            return unit;
        }
        let unit = self.units.pim_unit(self.place_cursor % self.unit_count);
        self.place_cursor += 1;
        unit
    }

    /// Resolves a job's placement (quarantine-aware for anything but
    /// [`Placement::Fixed`]) and enqueues it into the bank FIFOs.
    fn place(&mut self, job: PimJob) {
        let unit = match job.placement {
            Placement::Auto => match self.dispatch {
                DispatchMode::Circular => self.pick_unit(None),
                DispatchMode::SingleBank => {
                    let unit = self.units.pim_unit(0);
                    if self.health.is_quarantined(unit.bank) {
                        self.pick_unit(None)
                    } else {
                        unit
                    }
                }
            },
            Placement::Unit(idx) => {
                let unit = self.units.pim_unit(idx % self.unit_count);
                if self.health.is_quarantined(unit.bank) {
                    self.pick_unit(None)
                } else {
                    unit
                }
            }
            Placement::Fixed(loc) => loc,
            Placement::Resident(res) => {
                // The residency map is kept current by re-materialization
                // (quarantine moves residents before re-placing their
                // dependents), so the hosting unit is always usable here.
                let Some((unit, _)) = self.residents.get(&res) else {
                    // Unknown residency: the job can never run.
                    let id = job.id;
                    self.dropped += 1;
                    self.canceller.drop_cascaded(id);
                    self.finalize(id, true, Vec::new());
                    return;
                };
                let unit = *unit;
                let relocated = PimJob {
                    id: job.id,
                    program: Arc::new(relocate_to_tile(&job.program, unit)),
                    placement: job.placement,
                    deadline: job.deadline,
                };
                self.sched.enqueue(relocated, unit.bank);
                return;
            }
        };
        let retargeted = PimJob {
            id: job.id,
            program: Arc::new(job.program.retarget(unit)),
            placement: job.placement,
            deadline: job.deadline,
        };
        self.sched.enqueue(retargeted, unit.bank);
    }

    /// Records a job's final attempt with the dependency tracker and
    /// handles whatever that set free: ready jobs place (unless
    /// cancelled meanwhile), cascade-failed jobs report as cancelled.
    fn finalize(&mut self, id: u64, errored: bool, outputs: Vec<(String, Vec<u64>)>) {
        let rel = self.deps.on_final(id, errored, outputs);
        self.process_released(rel);
    }

    fn process_released(&mut self, rel: Released) {
        for id in rel.failed {
            self.canceller.drop_cascaded(id);
        }
        for job in rel.ready {
            if self.canceller.armed() && self.canceller.drop_if_cancelled(job.id) {
                self.finalize(job.id, true, Vec::new());
                continue;
            }
            self.place(job);
        }
    }

    /// Admits one submission from the queue (a chaos plan may inject a
    /// deterministic, seed-keyed delay here).
    fn admit(&mut self, submission: Submission) {
        if let Some(plan) = self.chaos {
            let probe = match &submission {
                Submission::Job(job) | Submission::Pin { job, .. } => Some(job.id),
                Submission::Chain(_) => None,
            };
            if let Some(id) = probe {
                if matches!(
                    plan.decide(CrossingPoint::SchedulerAdmit, id, 0),
                    ChaosAction::Delay
                ) {
                    std::thread::sleep(Duration::from_micros(plan.delay_us));
                }
            }
        }
        match submission {
            Submission::Job(job) => {
                if self.canceller.armed() && self.canceller.drop_if_cancelled(job.id) {
                    self.finalize(job.id, true, Vec::new());
                    return;
                }
                self.place(job);
            }
            Submission::Chain(chain) => {
                let rel = self.deps.admit(chain);
                self.process_released(rel);
            }
            Submission::Pin { res, unit_idx, job } => {
                let requested = self.units.pim_unit(unit_idx % self.unit_count);
                let unit = if self.health.is_quarantined(requested.bank) {
                    self.pick_unit(None)
                } else {
                    requested
                };
                self.residents.insert(res, (unit, Arc::clone(&job.program)));
                self.pins += 1;
                if let Some(trace) = &self.trace {
                    trace.record(&Event::ResidentPinned {
                        res,
                        job: job.id,
                        bank: unit.bank,
                    });
                }
                self.place(job);
            }
        }
    }

    /// Moves every residency off a quarantined bank: each one gets a
    /// fresh re-materialization job that re-runs its pin program on a
    /// healthy unit. Called *before* the bank's FIFO is drained and
    /// re-placed, so per-bank FIFO order guarantees the weights reload
    /// before any dependent job runs on the new bank.
    fn rematerialize_off(&mut self, bank: usize) {
        let mut moved: Vec<(u64, Arc<PimProgram>)> = self
            .residents
            .iter()
            .filter(|(_, (unit, _))| unit.bank == bank)
            .map(|(res, (_, program))| (*res, Arc::clone(program)))
            .collect();
        moved.sort_by_key(|(res, _)| *res);
        for (res, program) in moved {
            let unit = self.pick_unit(Some(bank));
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            self.remats += 1;
            if let Some(trace) = &self.trace {
                trace.record(&Event::Rematerialized {
                    res,
                    job: id,
                    from_bank: bank,
                    to_bank: unit.bank,
                });
            }
            self.residents.insert(res, (unit, Arc::clone(&program)));
            let relocated = PimJob {
                id,
                program: Arc::new(relocate_to_tile(&program, unit)),
                placement: Placement::Resident(res),
                deadline: None,
            };
            self.sched.enqueue(relocated, unit.bank);
        }
    }

    /// Issues every queued dispatch whose bank is below the in-flight cap
    /// and whose worker shard is up (work for a down shard stays queued
    /// until the replacement worker runs).
    fn issue_ready(&mut self) {
        let cap = self.policy.max_inflight_per_bank;
        let max_jobs = self.batch.cap();
        let grouping = self.batch.grouping;
        // Snapshot of down shards, stable for the scan; a shard that
        // goes down mid-scan is caught on the next pass.
        let down: Vec<bool> = if self.supervisor.any_down() {
            (0..self.shards)
                .map(|s| self.supervisor.is_down(s))
                .collect()
        } else {
            vec![false; self.shards]
        };
        loop {
            let Some(mut issue) = self
                .sched
                .issue_next_batch_grouped(max_jobs, grouping, |bank| {
                    self.inflight_per_bank[bank] < cap && !down[bank % self.shards]
                })
            else {
                return;
            };
            for id in self.canceller.filter_issue(&mut issue.jobs) {
                self.finalize(id, true, Vec::new());
            }
            for id in self.canceller.filter_expired(&mut issue.jobs) {
                self.finalize(id, true, Vec::new());
            }
            if issue.jobs.is_empty() {
                // Every member was cancelled: nothing dispatches, nothing
                // counts toward `issued` or the bank's in-flight cap.
                continue;
            }
            self.dispatch_issue(issue);
        }
    }

    /// Sends one issued dispatch to its shard and records it in flight.
    fn dispatch_issue(&mut self, issue: IssuedBatch) {
        let IssuedBatch { seq, jobs, bank } = issue;
        let shard = bank % self.shards;
        let program = batch_program_cached(&jobs, &self.compiler, &mut self.splice_cache);
        let unit = program
            .steps
            .first()
            .map_or_else(|| self.units.pim_unit(bank), Step::target);
        if jobs.len() >= 2 {
            self.batches += 1;
            self.batched_jobs += jobs.len() as u64;
            if let Some(trace) = &self.trace {
                trace.record(&Event::Batch {
                    seq,
                    bank,
                    jobs: jobs.iter().map(|j| j.id).collect(),
                });
            }
        }
        let slots: Vec<SlotMeta> = jobs
            .iter()
            .map(|j| SlotMeta {
                job_id: j.id,
                readouts: count_readouts(&j.program),
                // Verification re-dispatches and crash/hang re-placements
                // share the attempt axis (each restart of the job is a
                // distinct attempt).
                attempt: self.redispatched.get(&j.id).copied().unwrap_or(0)
                    + self.crash_retries.get(&j.id).copied().unwrap_or(0),
            })
            .collect();
        if let Some(trace) = &self.trace {
            for job in &jobs {
                trace.record(&Event::Issue {
                    job: job.id,
                    seq,
                    bank,
                    shard,
                });
            }
        }
        self.issued += 1;
        self.per_shard_issued[shard] += 1;
        self.per_shard_jobs[shard] += jobs.len() as u64;
        self.inflight_per_bank[bank] += 1;
        let budget = self.watchdog.budget(program.steps.len() as u64);
        self.supervisor.send(
            shard,
            WorkMsg::Job {
                seq,
                unit,
                program,
                slots,
            },
        );
        self.inflight.insert(
            seq,
            InflightRec {
                jobs,
                shard,
                bank,
                started: None,
                budget,
            },
        );
    }

    /// Processes one worker acknowledgement: health accounting, state
    /// transitions (scrub dispatch, quarantine drain), and re-dispatch of
    /// unverified jobs.
    fn handle_ack(&mut self, ack: AckMsg) {
        match ack {
            AckMsg::Started { seq } => {
                if let Some(rec) = self.inflight.get_mut(&seq) {
                    rec.started = Some(Instant::now());
                }
            }
            AckMsg::ShardDown {
                shard,
                generation,
                panicked_seq,
            } => {
                self.shard_down(shard, generation, DownCause::Panic, panicked_seq);
            }
            AckMsg::Scrub { bank, outcome } => {
                let shard = bank % self.shards;
                // Saturating: the counter was zeroed if the shard went
                // down while this scrub was in flight.
                self.scrubs_outstanding[shard] = self.scrubs_outstanding[shard].saturating_sub(1);
                self.scrubs += 1;
                self.scrub_total.merge(outcome);
                if let Some(trace) = &self.trace {
                    trace.record(&Event::Scrub {
                        bank,
                        realigned: outcome.realigned,
                        repaired: outcome.repaired,
                    });
                }
            }
            AckMsg::Job {
                seq,
                bank,
                faults,
                verified,
                errored,
                members,
            } => {
                let Some(rec) = self.inflight.remove(&seq) else {
                    // A detached (hung, since replaced) worker finally
                    // reported; its attempt was already re-routed.
                    self.sup.stale_acks += 1;
                    return;
                };
                self.inflight_per_bank[bank] -= 1;
                let faulty = faults > 0;
                if faulty {
                    if let Some(trace) = &self.trace {
                        for job in &rec.jobs {
                            let attempt = self.redispatched.get(&job.id).copied().unwrap_or(0);
                            trace.record(&Event::FaultDetected {
                                job: job.id,
                                bank,
                                attempt,
                                faults,
                            });
                        }
                    }
                }
                match self.health.record(bank, faulty) {
                    Transition::Suspect(score) => {
                        if let Some(trace) = &self.trace {
                            trace.record(&Event::BankSuspect { bank, score });
                        }
                        if self.policy.scrub_on_suspect {
                            let shard = bank % self.shards;
                            // A down shard gets no scrub: the suspicion
                            // will recur if the bank still misbehaves.
                            if !self.supervisor.is_down(shard) {
                                self.scrubs_outstanding[shard] += 1;
                                self.supervisor.send(shard, WorkMsg::Scrub { bank });
                            }
                        }
                    }
                    Transition::Quarantined(score) => {
                        if let Some(trace) = &self.trace {
                            trace.record(&Event::BankQuarantined { bank, score });
                        }
                        // Residencies leave first: their re-materialization
                        // jobs enqueue on the new banks ahead of any
                        // re-routed dependent (per-bank FIFO order).
                        self.rematerialize_off(bank);
                        // Re-route the quarantined bank's backlog; only
                        // explicitly pinned jobs stay.
                        for queued in self.sched.drain_bank(bank) {
                            if matches!(queued.placement, Placement::Fixed(_)) {
                                self.sched.enqueue(queued, bank);
                            } else {
                                self.place(queued);
                            }
                        }
                    }
                    Transition::None | Transition::Recovered => {}
                }
                // Per-member finality: a member re-dispatches if the
                // dispatch failed verification and it has attempts left;
                // otherwise this ack was its final attempt and its gate
                // (if any dependent waits) resolves now.
                let mut outs: HashMap<u64, Vec<(String, Vec<u64>)>> = members.into_iter().collect();
                let redispatch = !verified && self.protection_active;
                for member in rec.jobs {
                    let mut redispatched_now = false;
                    if redispatch {
                        let count = self.redispatched.entry(member.id).or_insert(0);
                        if *count < self.policy.max_redispatch
                            && !matches!(member.placement, Placement::Fixed(_))
                        {
                            *count += 1;
                            let next = *count;
                            self.redispatches += 1;
                            // Every member of an unverified dispatch
                            // re-routes individually — re-executions never
                            // re-batch with the same partners, which
                            // bounds correlated failure. Resident members
                            // follow their residency instead of picking a
                            // fresh unit.
                            let (unit, program) = match member.placement {
                                Placement::Resident(res) => {
                                    let unit = self
                                        .residents
                                        .get(&res)
                                        .map(|(u, _)| *u)
                                        .expect("placed resident jobs have a residency");
                                    (unit, Arc::new(relocate_to_tile(&member.program, unit)))
                                }
                                _ => {
                                    let unit = self.pick_unit(Some(bank));
                                    (unit, Arc::new(member.program.retarget(unit)))
                                }
                            };
                            if let Some(trace) = &self.trace {
                                trace.record(&Event::Redispatch {
                                    job: member.id,
                                    from_bank: bank,
                                    to_bank: unit.bank,
                                    attempt: next,
                                });
                            }
                            let job = PimJob {
                                id: member.id,
                                program,
                                placement: member.placement,
                                deadline: member.deadline,
                            };
                            self.sched.enqueue(job, unit.bank);
                            redispatched_now = true;
                        }
                    }
                    if !redispatched_now {
                        let outputs = outs.remove(&member.id).unwrap_or_default();
                        self.finalize(member.id, errored, outputs);
                    }
                }
            }
        }
    }

    /// Total scrub passes still awaiting an ack across live shards.
    fn scrubs_pending(&self) -> usize {
        self.scrubs_outstanding.iter().sum()
    }

    /// Whether supervision has anything that could wedge the drain: a
    /// caught panic, a hung attempt, or an active chaos plan (which can
    /// stall workers without either counter moving yet). While clean,
    /// termination blocks exactly as the pre-supervision scheduler did.
    fn dirty(&self) -> bool {
        self.chaos.is_some() || self.sup.hung_attempts > 0 || self.supervisor.counters().0 > 0
    }

    /// Gives up on one job: final-attempt bookkeeping, an `Abandoned`
    /// notice for live consumers, and an errored finalize so dependents
    /// cascade-cancel.
    fn abandon_job(&mut self, id: u64, hung: bool) {
        self.sup.abandoned_jobs += 1;
        if let Some(tx) = &self.canceller.notify {
            let _ = tx.send(JobNotice::Abandoned { job_id: id, hung });
        }
        self.finalize(id, true, Vec::new());
    }

    /// Re-places one member job whose attempt died with a crashed or
    /// hung worker, bounded by the crash-retry budget; over budget the
    /// job is abandoned.
    fn crash_retry_or_abandon(&mut self, member: PimJob, hung: bool) {
        let retries = self.crash_retries.entry(member.id).or_insert(0);
        if *retries < self.supervise.max_job_retries {
            *retries += 1;
            self.sup.crash_redispatches += 1;
            self.place(member);
        } else {
            self.abandon_job(member.id, hung);
        }
    }

    /// Takes a worker shard down: marks it with the supervisor, discards
    /// anything buffered for it (the in-flight records below re-place
    /// through normal issue — flushing the buffer on restart too would
    /// double-send), and re-routes every in-flight attempt it owned. The
    /// attempt that actually crashed or hung burns a crash retry per
    /// member; attempts merely queued behind it re-place for free.
    fn shard_down(
        &mut self,
        shard: usize,
        generation: u64,
        cause: DownCause,
        failed_seq: Option<u64>,
    ) {
        match self.supervisor.mark_down(shard, generation, cause) {
            Down::Stale => return,
            // Retirement hands the buffer back; a pending restart would
            // flush it to the replacement, so take it out of the slot.
            Down::Retired(buffered) => drop(buffered),
            Down::Pending => drop(self.supervisor.take_buffer(shard)),
        }
        let hung = matches!(cause, DownCause::Hang);
        if let Some(trace) = &self.trace {
            trace.record(&Event::ShardDown { shard, hung });
        }
        // Scrubs queued on the shard died with it.
        self.scrubs_outstanding[shard] = 0;
        let mut seqs: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, rec)| rec.shard == shard)
            .map(|(&seq, _)| seq)
            .collect();
        seqs.sort_unstable();
        for seq in seqs {
            let rec = self.inflight.remove(&seq).expect("seq collected above");
            self.inflight_per_bank[rec.bank] -= 1;
            self.lost.push(seq);
            let failed = Some(seq) == failed_seq;
            for member in rec.jobs {
                if failed {
                    self.crash_retry_or_abandon(member, hung);
                } else {
                    self.sup.crash_redispatches += 1;
                    self.place(member);
                }
            }
        }
    }

    /// Scans in-flight attempts for watchdog-budget overruns. Each hung
    /// attempt takes its shard down (the stalled worker thread is
    /// detached, a replacement starts immediately) and fingerprints its
    /// member programs into the poison registry.
    fn watchdog_scan(&mut self) {
        if !self.watchdog.enabled {
            return;
        }
        let now = Instant::now();
        loop {
            // Lowest seq first, for deterministic event order.
            let Some(seq) = self
                .inflight
                .iter()
                .filter(|(_, rec)| {
                    rec.started
                        .is_some_and(|at| now.duration_since(at) >= rec.budget)
                        && !self.supervisor.is_down(rec.shard)
                })
                .map(|(&seq, _)| seq)
                .min()
            else {
                return;
            };
            let rec = &self.inflight[&seq];
            let shard = rec.shard;
            let bank = rec.bank;
            let budget_us = rec.budget.as_micros() as u64;
            let members: Vec<(u64, u32, u64)> = rec
                .jobs
                .iter()
                .map(|j| {
                    let attempt = self.redispatched.get(&j.id).copied().unwrap_or(0)
                        + self.crash_retries.get(&j.id).copied().unwrap_or(0);
                    (j.id, attempt, cache::fingerprint(&j.program))
                })
                .collect();
            self.sup.hung_attempts += 1;
            for (job, attempt, fingerprint) in members {
                if let Some(trace) = &self.trace {
                    trace.record(&Event::AttemptHung {
                        job,
                        bank,
                        attempt,
                        budget_us,
                    });
                }
                if let Some(poison) = &self.poison {
                    let (strikes, crossed) = poison.strike(fingerprint);
                    if crossed {
                        self.sup.quarantined_programs += 1;
                        if let Some(trace) = &self.trace {
                            trace.record(&Event::PoisonQuarantine {
                                fingerprint,
                                strikes,
                            });
                        }
                    }
                }
            }
            let generation = self.supervisor.generation(shard);
            self.shard_down(shard, generation, DownCause::Hang, Some(seq));
        }
    }

    /// Drain-deadline expiry: everything still queued or in flight will
    /// never complete. Abandon it all so `finish` can report.
    fn abandon_all(&mut self) {
        let mut seqs: Vec<u64> = self.inflight.keys().copied().collect();
        seqs.sort_unstable();
        for seq in seqs {
            let rec = self.inflight.remove(&seq).expect("seq collected above");
            self.inflight_per_bank[rec.bank] -= 1;
            self.lost.push(seq);
            for member in rec.jobs {
                self.abandon_job(member.id, false);
            }
        }
        // Abandoning can only cascade-fail dependents (errored finals
        // release nothing), but drain defensively until quiescent.
        while self.sched.pending() > 0 {
            for bank in 0..self.inflight_per_bank.len() {
                for queued in self.sched.drain_bank(bank) {
                    self.abandon_job(queued.id, false);
                }
            }
        }
        for pending in &mut self.scrubs_outstanding {
            *pending = 0;
        }
    }
}

/// The scheduler loop used when fault injection or a protection policy is
/// active: interleaves queue draining with worker-ack processing so bank
/// health transitions and re-dispatch happen while the session is live.
///
/// Unlike [`scheduler_loop`], issue order here depends on completion
/// timing (the in-flight cap gates issue on acks), so reports are *not*
/// bit-deterministic across shard counts — the no-fault path keeps that
/// property by never entering this loop.
#[allow(clippy::too_many_arguments)]
fn fault_scheduler_loop(
    config: &MemoryConfig,
    queue: &JobQueue<Submission>,
    supervisor: &Supervisor<WorkMsg>,
    shards: usize,
    ack_rx: &mpsc::Receiver<AckMsg>,
    dispatch: DispatchMode,
    protection: ProtectionPolicy,
    policy: HealthPolicy,
    trace: Option<Arc<EventTrace>>,
    batch: BatchOptions,
    compile: CompileOptions,
    canceller: Canceller,
    next_id: &AtomicU64,
    supervise: SuperviseOptions,
    watchdog: WatchdogOptions,
    chaos: Option<ChaosPlan>,
    poison: Option<Arc<PoisonRegistry>>,
    issue_policy: IssuePolicy,
) -> SchedulerOutput {
    let units = MemoryController::new(config.clone());
    let unit_count = units.pim_unit_count();
    let splice_cache = batch.splice_cache();
    let mut state = FaultSched {
        unit_count,
        shards,
        dispatch,
        policy,
        protection_active: protection.is_active(),
        batch,
        compiler: Compiler::new(config.clone(), &compile),
        splice_cache,
        canceller,
        trace,
        supervisor,
        supervise,
        watchdog,
        chaos,
        poison,
        sched: BankScheduler::new(config.banks).with_policy(issue_policy),
        health: HealthTracker::new(config.banks, policy),
        inflight: HashMap::new(),
        inflight_per_bank: vec![0; config.banks],
        redispatched: HashMap::new(),
        crash_retries: HashMap::new(),
        sup: SupervisionStats::default(),
        lost: Vec::new(),
        place_cursor: 0,
        issued: 0,
        batches: 0,
        batched_jobs: 0,
        redispatches: 0,
        scrubs_outstanding: vec![0; shards],
        scrubs: 0,
        scrub_total: ScrubOutcome::default(),
        deps: DepTracker::new(),
        residents: HashMap::new(),
        next_id,
        pins: 0,
        remats: 0,
        dropped: 0,
        per_shard_issued: vec![0; shards],
        per_shard_jobs: vec![0; shards],
        units,
    };
    let mut drained: Vec<Submission> = Vec::new();
    let mut closed = false;
    // Armed (once supervision is dirty) the first time the drain blocks.
    let mut drain_deadline: Option<Instant> = None;
    // Occupancy profile. The fault loop folds placement into admission
    // and issue (state.admit/issue_ready place internally), so
    // place_micros stays 0 here; termination-block CPU rides into the
    // next pop lap (the waits themselves cost ~0 thread CPU).
    let mut profile = SchedProfile::default();
    let wall_start = Instant::now();
    let mut clock = cputime::StageClock::start();

    loop {
        // 1. Pull newly submitted jobs, bounded so acks stay responsive.
        if !closed {
            match queue.pop_timeout(Duration::from_millis(1)) {
                Pop::Item(first) => {
                    drained.push(first);
                    queue.drain_ready(&mut drained);
                }
                Pop::Timeout => {}
                Pop::Closed => closed = true,
            }
        }
        profile.pop_micros += clock.lap();
        for submission in drained.drain(..) {
            state.admit(submission);
        }
        profile.admit_micros += clock.lap();

        // 2. Process every acknowledgement already available, scan for
        //    hung attempts, and bring replacement workers up.
        while let Ok(ack) = ack_rx.try_recv() {
            state.handle_ack(ack);
        }
        state.watchdog_scan();
        for ev in supervisor.poll_restarts() {
            if let Some(trace) = &state.trace {
                trace.record(&Event::ShardRestart {
                    shard: ev.shard,
                    restarts: ev.restarts,
                });
            }
        }
        profile.ack_micros += clock.lap();

        // 3. Issue everything the in-flight cap allows.
        state.issue_ready();
        profile.dispatch_micros += clock.lap();

        // 4. Termination and anti-spin blocking once the queue is closed.
        if closed {
            if state.sched.pending() == 0 && state.inflight.is_empty() {
                if !state.deps.is_empty() {
                    // Every dependency that could retire has; the rest
                    // can never run. Failing them may only cascade (it
                    // releases nothing), then the loop re-evaluates.
                    let rel = state.deps.fail_all();
                    state.process_released(rel);
                    continue;
                }
                // Only background scrubs can still be outstanding.
                while state.scrubs_pending() > 0 {
                    if state.dirty() {
                        let deadline = *drain_deadline.get_or_insert_with(|| {
                            Instant::now() + state.supervise.drain_deadline()
                        });
                        if Instant::now() >= deadline {
                            break;
                        }
                        match ack_rx.recv_timeout(Duration::from_millis(10)) {
                            Ok(ack) => state.handle_ack(ack),
                            Err(mpsc::RecvTimeoutError::Timeout) => {}
                            Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        }
                    } else {
                        match ack_rx.recv() {
                            Ok(ack) => state.handle_ack(ack),
                            Err(_) => break,
                        }
                    }
                }
                break;
            }
            // Progress now requires an ack (a free bank slot, a
            // completion that may trigger re-dispatch, or a restart
            // flushing queued work). With supervision clean this blocks
            // exactly as before — a shard-down ack itself would wake it;
            // dirty, the wait is bounded so a dead or stalled shard can
            // never wedge the drain past the configured deadline.
            if !state.inflight.is_empty() || state.scrubs_pending() > 0 || state.sched.pending() > 0
            {
                // The watchdog needs the wait bounded even while clean,
                // or a stalled attempt would never get scanned.
                if !state.dirty() && !state.watchdog.enabled {
                    match ack_rx.recv() {
                        Ok(ack) => state.handle_ack(ack),
                        Err(_) => break,
                    }
                    continue;
                }
                if state.dirty() {
                    let deadline = *drain_deadline
                        .get_or_insert_with(|| Instant::now() + state.supervise.drain_deadline());
                    if Instant::now() >= deadline {
                        state.abandon_all();
                        continue;
                    }
                }
                match ack_rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(ack) => state.handle_ack(ack),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
    }

    SchedulerOutput {
        depth_hist: state.sched.depth_histogram().clone(),
        issued: state.issued,
        batches: state.batches,
        batched_jobs: state.batched_jobs,
        splice_hits: state
            .splice_cache
            .as_ref()
            .map_or(0, |c| BatchCache::counts(c).0),
        splice_misses: state
            .splice_cache
            .as_ref()
            .map_or(0, |c| BatchCache::counts(c).1),
        cancelled: state.canceller.cancelled,
        expired: state.canceller.expired,
        redispatches: state.redispatches,
        scrubs: state.scrubs,
        scrub_total: state.scrub_total,
        suspect_banks: state.health.suspect_count(),
        quarantined_banks: state.health.quarantined_count(),
        degraded_capacity: state.health.degraded_capacity(),
        deferred: state.deps.deferred,
        released: state.deps.released,
        cascaded: state.deps.cascade_cancelled + state.dropped,
        pins: state.pins,
        remats: state.remats,
        supervision: state.sup,
        lost: state.lost,
        profile: SchedProfile {
            wall_micros: wall_start.elapsed().as_micros() as u64,
            per_shard_issued: state.per_shard_issued,
            per_shard_jobs: state.per_shard_jobs,
            ..profile
        },
    }
}

/// What one protected execution of a job produced.
struct ExecOutcome {
    outputs: Vec<(String, Vec<u64>)>,
    instr_costs: Vec<Cost>,
    error: Option<PimError>,
    replicas: u32,
    faults_detected: u64,
    retries: u32,
    votes_overturned: u64,
    verified: bool,
}

/// Per-incarnation worker identity and behavior switches: the shard and
/// generation stamped into supervision acks, the chaos plan to consult
/// at crossing points, and whether to send `Started` heartbeats (only
/// useful when the watchdog reads them).
#[derive(Clone)]
struct WorkerCtx {
    shard: usize,
    generation: u64,
    chaos: Option<ChaosPlan>,
    heartbeat: bool,
    /// Per-shard busy meters (thread CPU micros spent executing work),
    /// indexed by `shard`; folded into [`SchedStats`] at drain.
    busy: Arc<Vec<AtomicU64>>,
    /// The submission queue, kicked after every ack so the scheduler's
    /// event-driven pop wakes immediately instead of riding out its
    /// timeout (see [`queue::JobQueue::pop_kicked`]).
    kick: Arc<JobQueue<Submission>>,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    config: &MemoryConfig,
    faults: Option<FaultPlan>,
    protection: ProtectionPolicy,
    rx: &mpsc::Receiver<WorkMsg>,
    done: &mpsc::Sender<DoneMsg>,
    ack: Option<&mpsc::Sender<AckMsg>>,
    notify: Option<&mpsc::Sender<JobNotice>>,
    max_redispatch: u32,
    ctx: WorkerCtx,
) {
    // Each shard owns a full machine; storage is sparse, so it only pays
    // for the DBCs of the banks routed to it.
    let mut machine = match faults {
        Some(plan) => PimMachine::with_faults(config.clone(), plan),
        None => PimMachine::new(config.clone()),
    };
    // The NMR majority gate: a fault-free PIM DBC reserved as the voter
    // (paper §III-F models voting as one write per replica plus one TR).
    let mut voter = match protection {
        ProtectionPolicy::Nmr { .. } => Some((NmrVoter::new(config), Dbc::pim_enabled(config))),
        _ => None,
    };
    // Reports this incarnation's death to the supervisor. Per-producer
    // mpsc FIFO order guarantees every ack this worker already sent is
    // processed before the down report.
    let report_down = |panicked_seq: Option<u64>| {
        if let Some(ack) = ack {
            let _ = ack.send(AckMsg::ShardDown {
                shard: ctx.shard,
                generation: ctx.generation,
                panicked_seq,
            });
            ctx.kick.kick();
        }
    };
    let mut clock = cputime::StageClock::start();
    while let Ok(msg) = rx.recv() {
        // Charge only the processing span: re-stamp after the blocking
        // recv so queue-wait CPU (≈0 anyway) never counts as busy.
        clock.reset();
        match msg {
            WorkMsg::Scrub { bank } => {
                let scrubbed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut meter = CostMeter::new();
                    machine
                        .controller_mut()
                        .scrub_bank(bank, &mut meter)
                        .unwrap_or_default()
                }));
                let Ok(outcome) = scrubbed else {
                    report_down(None);
                    return;
                };
                if let Some(ack) = ack {
                    let _ = ack.send(AckMsg::Scrub { bank, outcome });
                    ctx.kick.kick();
                }
            }
            WorkMsg::Job {
                seq,
                unit,
                program,
                slots,
            } => {
                if ctx.heartbeat {
                    if let Some(ack) = ack {
                        let _ = ack.send(AckMsg::Started { seq });
                    }
                }
                // Chaos draws key on the dispatch's first member and its
                // attempt, so a re-dispatched attempt draws fresh and
                // two runs of one seed inject identically.
                let (chaos_job, chaos_attempt) =
                    slots.first().map_or((0, 0), |s| (s.job_id, s.attempt));
                let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(plan) = ctx.chaos {
                        match plan.decide(CrossingPoint::WorkerStart, chaos_job, chaos_attempt) {
                            ChaosAction::Panic => chaos::chaos_panic(),
                            ChaosAction::Stall => {
                                std::thread::sleep(Duration::from_millis(plan.stall_ms));
                            }
                            ChaosAction::Delay => {
                                std::thread::sleep(Duration::from_micros(plan.delay_us));
                            }
                            ChaosAction::None => {}
                        }
                    }
                    let out = execute_protected(&mut machine, protection, &program, voter.as_mut());
                    if let Some(plan) = ctx.chaos {
                        if matches!(
                            plan.decide(CrossingPoint::WorkerReport, chaos_job, chaos_attempt),
                            ChaosAction::Panic
                        ) {
                            chaos::chaos_panic();
                        }
                    }
                    out
                }));
                let Ok(out) = executed else {
                    report_down(Some(seq));
                    return;
                };
                // Demux the batched output stream per member exactly as
                // `finish` does, so live consumers (notify) and the
                // scheduler's dependency gates see the same bytes the
                // final report will record.
                let mut members: Vec<(u64, DepOutputs)> = Vec::with_capacity(slots.len());
                {
                    let mut cursor = 0usize;
                    for slot in &slots {
                        let end = (cursor + slot.readouts).min(out.outputs.len());
                        let start = cursor.min(out.outputs.len());
                        cursor += slot.readouts;
                        members.push((slot.job_id, out.outputs[start..end].to_vec()));
                    }
                }
                if let Some(notify) = notify {
                    let batch = slots.len() as u32;
                    for (slot, (_, outputs)) in slots.iter().zip(&members) {
                        let _ = notify.send(JobNotice::Attempt {
                            job_id: slot.job_id,
                            attempt: slot.attempt,
                            bank: unit.bank,
                            batch,
                            outputs: outputs.clone(),
                            error: out.error.clone(),
                            verified: out.verified,
                            protection_active: protection.is_active(),
                            max_redispatch,
                        });
                    }
                }
                if let Some(ack) = ack {
                    let _ = ack.send(AckMsg::Job {
                        seq,
                        bank: unit.bank,
                        faults: out.faults_detected + u64::from(out.error.is_some()),
                        verified: out.verified,
                        errored: out.error.is_some(),
                        members,
                    });
                    // Ack first, then kick: the scheduler snapshots the
                    // kick counter before draining acks, so this order
                    // can never lose the wakeup.
                    ctx.kick.kick();
                }
                let _ = done.send(DoneMsg {
                    seq,
                    unit,
                    slots,
                    outputs: out.outputs,
                    instr_costs: out.instr_costs,
                    error: out.error,
                    replicas: out.replicas,
                    faults_detected: out.faults_detected,
                    retries: out.retries,
                    votes_overturned: out.votes_overturned,
                    verified: out.verified,
                });
            }
        }
        ctx.busy[ctx.shard].fetch_add(clock.lap(), Ordering::Relaxed);
    }
}

/// Runs a job under the worker's protection policy.
fn execute_protected(
    machine: &mut PimMachine,
    protection: ProtectionPolicy,
    program: &PimProgram,
    voter: Option<&mut (NmrVoter, Dbc)>,
) -> ExecOutcome {
    match protection {
        ProtectionPolicy::None => {
            let (readouts, instr_costs, error) = run_once(machine, program);
            ExecOutcome {
                outputs: unpack_readouts(&readouts),
                instr_costs,
                error,
                replicas: 1,
                faults_detected: 0,
                retries: 0,
                votes_overturned: 0,
                verified: false,
            }
        }
        ProtectionPolicy::Reexecute { max_retries } => {
            let mut instr_costs = Vec::new();
            let mut replicas = 0u32;
            let mut faults_detected = 0u64;
            let mut retries = 0u32;
            let mut pairs = 0u32;
            loop {
                let (ro_a, c_a, e_a) = run_once(machine, program);
                let (ro_b, c_b, e_b) = run_once(machine, program);
                replicas += 2;
                instr_costs.extend(c_a);
                instr_costs.extend(c_b);
                let clean = e_a.is_none() && e_b.is_none();
                if clean && readout_rows_equal(&ro_a, &ro_b) {
                    return ExecOutcome {
                        outputs: unpack_readouts(&ro_b),
                        instr_costs,
                        error: None,
                        replicas,
                        faults_detected,
                        retries,
                        votes_overturned: 0,
                        verified: true,
                    };
                }
                faults_detected += 1;
                if pairs >= max_retries {
                    // Exhausted: surface the least-broken run unverified;
                    // the scheduler may re-dispatch to another bank.
                    let (readouts, error) = if e_b.is_none() {
                        (ro_b, None)
                    } else if e_a.is_none() {
                        (ro_a, None)
                    } else {
                        (ro_b, e_b)
                    };
                    return ExecOutcome {
                        outputs: unpack_readouts(&readouts),
                        instr_costs,
                        error,
                        replicas,
                        faults_detected,
                        retries,
                        votes_overturned: 0,
                        verified: false,
                    };
                }
                pairs += 1;
                retries += 1;
            }
        }
        ProtectionPolicy::Nmr { n } => {
            let (voter, vote_dbc) = voter.expect("worker allocates a voter for NMR policies");
            let mut instr_costs = Vec::new();
            let mut runs = Vec::with_capacity(n);
            for i in 0..n {
                let (readouts, costs, error) = run_once(machine, program);
                instr_costs.extend(costs);
                if let Some(err) = error {
                    return ExecOutcome {
                        outputs: unpack_readouts(&readouts),
                        instr_costs,
                        error: Some(err),
                        replicas: i as u32 + 1,
                        faults_detected: 0,
                        retries: 0,
                        votes_overturned: 0,
                        verified: false,
                    };
                }
                runs.push(readouts);
            }
            let mut outputs = Vec::with_capacity(runs[0].len());
            let mut faults_detected = 0u64;
            let mut votes_overturned = 0u64;
            let mut meter = CostMeter::new();
            for i in 0..runs[0].len() {
                let (label, lane, _) = &runs[0][i];
                let rows: Vec<Row> = runs.iter().map(|r| r[i].2.clone()).collect();
                let disagree = rows.windows(2).any(|w| w[0] != w[1]);
                if disagree {
                    faults_detected += 1;
                    votes_overturned += 1;
                }
                let voted = voter
                    .vote_rows(vote_dbc, &rows, &mut meter)
                    .unwrap_or_else(|_| NmrVoter::reference(&rows));
                outputs.push((label.clone(), voted.unpack(*lane)));
            }
            let vote_cost = meter.total();
            if vote_cost.cycles > 0 {
                instr_costs.push(vote_cost);
            }
            ExecOutcome {
                outputs,
                instr_costs,
                error: None,
                replicas: n as u32,
                faults_detected,
                retries: 0,
                votes_overturned,
                verified: true,
            }
        }
    }
}

/// Labeled raw readout rows of one program execution.
type Readouts = Vec<(String, usize, Row)>;

/// Unpacks raw readout rows into the per-lane word outputs jobs report.
fn unpack_readouts(readouts: &Readouts) -> Vec<(String, Vec<u64>)> {
    readouts
        .iter()
        .map(|(label, lane, row)| (label.clone(), row.unpack(*lane)))
        .collect()
}

/// Whether two executions produced identical raw readout rows (compared
/// at full row width — stricter than the unpacked lanes).
fn readout_rows_equal(a: &Readouts, b: &Readouts) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.2 == y.2)
}

/// Executes a program once on a shard machine, collecting raw readout
/// rows (for verification) and per-instruction device costs (for the
/// central timing replay).
fn run_once(
    machine: &mut PimMachine,
    program: &PimProgram,
) -> (Readouts, Vec<Cost>, Option<PimError>) {
    let width = machine.controller().config().nanowires_per_dbc;
    let mut meter = CostMeter::new();
    let mut readouts = Vec::new();
    let mut instr_costs = Vec::new();
    for step in &program.steps {
        let result: Result<(), PimError> = (|| {
            match step {
                Step::Load { addr, values, lane } => {
                    let row = Row::pack(width, *lane, values);
                    machine
                        .controller_mut()
                        .store_row(*addr, &row, &mut meter)?;
                }
                Step::Exec(instr) => {
                    let out = machine.execute(instr)?;
                    instr_costs.push(out.cost);
                }
                Step::Readout { label, addr, lane } => {
                    let row = machine.controller_mut().load_row(*addr, &mut meter)?;
                    readouts.push((label.clone(), *lane, row));
                }
            }
            Ok(())
        })();
        if let Err(err) = result {
            return (readouts, instr_costs, Some(err));
        }
    }
    (readouts, instr_costs, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
    use coruscant_mem::RowAddress;

    fn single_add_program() -> PimProgram {
        let loc = DbcLocation::new(0, 0, 0, 0);
        let bs = BlockSize::new(8).unwrap();
        PimProgram {
            steps: vec![
                Step::Load {
                    addr: RowAddress::new(loc, 4),
                    values: vec![11; 8],
                    lane: 8,
                },
                Step::Load {
                    addr: RowAddress::new(loc, 5),
                    values: vec![31; 8],
                    lane: 8,
                },
                Step::Exec(
                    CpimInstr::new(
                        CpimOpcode::Add,
                        RowAddress::new(loc, 4),
                        2,
                        bs,
                        Some(RowAddress::new(loc, 20)),
                    )
                    .unwrap(),
                ),
                Step::Readout {
                    label: "sum".into(),
                    addr: RowAddress::new(loc, 20),
                    lane: 8,
                },
            ],
        }
    }

    #[test]
    fn single_job_round_trips() {
        let config = MemoryConfig::tiny();
        let report = run_batch(
            &config,
            vec![single_add_program()],
            RuntimeOptions::default(),
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        let out = &report.outcomes[0];
        assert_eq!(out.outputs[0].1, vec![42; 8]);
        assert!(out.completion > 0);
        assert_eq!(out.wait_cycles, 0, "first job never waits");
        assert_eq!(report.stats.jobs, 1);
        assert_eq!(report.stats.instructions, 1);
        assert!(report.stats.makespan_cycles >= out.completion);
        assert!(report.stats.jobs_per_us > 0.0);
    }

    #[test]
    fn job_ids_are_unique_and_outcomes_ordered() {
        let config = MemoryConfig::tiny();
        let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
        let ids: Vec<u64> = (0..6)
            .map(|_| rt.submit(single_add_program(), Placement::Auto).unwrap())
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        let report = rt.finish().unwrap();
        let got: Vec<u64> = report.outcomes.iter().map(|o| o.job_id).collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn submit_after_finish_is_rejected() {
        let config = MemoryConfig::tiny();
        let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
        let queue = Arc::clone(&rt.queue);
        rt.finish().unwrap();
        assert_eq!(
            queue.push(Submission::Job(PimJob {
                id: 0,
                program: Arc::new(PimProgram::default()),
                placement: Placement::Auto,
                deadline: None,
            })),
            Err(PushError::Closed)
        );
    }

    #[test]
    fn errors_propagate_from_workers() {
        let config = MemoryConfig::tiny();
        // A storage (non-PIM) DBC: execution must fail with NotPim.
        let storage = DbcLocation::new(0, 0, 0, 2);
        let bad = PimProgram {
            steps: vec![Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Or,
                    RowAddress::new(storage, 0),
                    2,
                    BlockSize::new(8).unwrap(),
                    None,
                )
                .unwrap(),
            )],
        };
        let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
        rt.submit(bad, Placement::Fixed(storage)).unwrap();
        match rt.finish() {
            Err(RuntimeError::Pim(PimError::NotPim)) => {}
            other => panic!("expected NotPim, got {other:?}"),
        }
    }

    #[test]
    fn backpressure_bounds_queue_depth() {
        let config = MemoryConfig::tiny();
        let options = RuntimeOptions {
            queue_capacity: 2,
            ..RuntimeOptions::default()
        };
        let rt = Runtime::new(config, options).unwrap();
        for _ in 0..16 {
            rt.submit(single_add_program(), Placement::Auto).unwrap();
        }
        let depth = rt.queue.max_depth();
        assert!(depth <= 2, "bounded queue never exceeded capacity: {depth}");
        let report = rt.finish().unwrap();
        assert_eq!(report.stats.jobs, 16);
    }
}
