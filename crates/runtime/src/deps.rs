//! Dependency gating: jobs held out of the bank FIFOs until every
//! predecessor's *final* attempt retires.
//!
//! The scheduler owns one [`DepTracker`]. Chains admit atomically
//! ([`DepTracker::admit`]); as jobs reach their final attempt the
//! scheduler feeds [`DepTracker::on_final`] and places whatever was
//! released. A predecessor that errors, is cancelled, or whose binder
//! fails cascades: every transitive dependent is dropped (reported like
//! a cancellation — it never ran). Deferred jobs carry a [`Binder`] that
//! builds their program from the labeled outputs of their data
//! dependencies (activation hand-off between pipeline stages).

use crate::job::{PimJob, Placement};
use coruscant_core::program::PimProgram;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Labeled outputs of one finished job, as its dependents see them.
pub type DepOutputs = Vec<(String, Vec<u64>)>;

/// Builds a deferred job's program from its data dependencies' outputs
/// (slices aligned with the declared dependency order). An `Err` drops
/// the job and cascades to its dependents.
pub type Binder = Box<dyn FnOnce(&[DepOutputs]) -> Result<PimProgram, String> + Send + 'static>;

/// Where a gated job's program comes from.
pub(crate) enum GatedSource {
    /// The program is known at submission; it only waits for ordering.
    Ready(Arc<PimProgram>),
    /// The program is built once the listed jobs' outputs are known.
    Deferred {
        /// Data dependencies (global job ids), in binder-argument order.
        dep_ids: Vec<u64>,
        /// The program builder.
        build: Binder,
    },
}

/// One dependency-gated job as the scheduler holds it.
pub(crate) struct GatedJob {
    pub id: u64,
    pub source: GatedSource,
    pub placement: Placement,
    /// Every job id that must reach a final attempt first (data
    /// dependencies included), sorted and deduplicated.
    pub after: Vec<u64>,
}

struct Waiter {
    source: GatedSource,
    placement: Placement,
    pending: HashSet<u64>,
}

/// What one tracker step set free.
#[derive(Default)]
pub(crate) struct Released {
    /// Jobs now ready to place, ascending id.
    pub ready: Vec<PimJob>,
    /// Jobs dropped by cascade (failed/cancelled predecessor or binder
    /// failure), in discovery order. They never run.
    pub failed: Vec<u64>,
}

/// The scheduler-side dependency state machine.
#[derive(Default)]
pub(crate) struct DepTracker {
    waiting: HashMap<u64, Waiter>,
    /// dep id → waiting job ids.
    dependents: HashMap<u64, Vec<u64>>,
    /// Stashed outputs of finished jobs some deferred waiter still needs.
    outputs: HashMap<u64, DepOutputs>,
    /// dep id → deferred waiters still needing its outputs.
    watchers: HashMap<u64, usize>,
    /// Final state of every retired job: `true` = errored/cancelled.
    retired: HashMap<u64, bool>,
    /// Jobs that entered the waiting state.
    pub deferred: u64,
    /// Jobs released after waiting.
    pub released: u64,
    /// Jobs dropped because a predecessor failed (or a binder errored).
    pub cascade_cancelled: u64,
}

impl DepTracker {
    pub fn new() -> DepTracker {
        DepTracker::default()
    }

    /// Whether no job is waiting on dependencies.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// Admits one chain. Members whose predecessors are already retired
    /// come back ready immediately; members gated on an already-failed
    /// predecessor come back failed.
    pub fn admit(&mut self, chain: Vec<GatedJob>) -> Released {
        let mut out = Released::default();
        for job in chain {
            self.admit_one(job, &mut out);
        }
        out
    }

    fn admit_one(&mut self, job: GatedJob, out: &mut Released) {
        // A predecessor that already failed dooms the job outright.
        if job
            .after
            .iter()
            .any(|d| matches!(self.retired.get(d), Some(true)))
        {
            self.fail(job.id, out);
            return;
        }
        let pending: HashSet<u64> = job
            .after
            .iter()
            .copied()
            .filter(|d| !self.retired.contains_key(d))
            .collect();
        if let GatedSource::Deferred { dep_ids, .. } = &job.source {
            // A data dependency that retired before this chain was
            // admitted has no stashed outputs; intra-chain deps (the only
            // ones `submit_chain` accepts for binders) make this
            // unreachable, but fail safe rather than bind garbage.
            if dep_ids
                .iter()
                .any(|d| self.retired.contains_key(d) && !self.outputs.contains_key(d))
            {
                self.fail(job.id, out);
                return;
            }
        }
        self.register_watches(&job.source);
        if pending.is_empty() {
            self.release(job.id, job.source, job.placement, out);
        } else {
            for d in &pending {
                self.dependents.entry(*d).or_default().push(job.id);
            }
            self.waiting.insert(
                job.id,
                Waiter {
                    source: job.source,
                    placement: job.placement,
                    pending,
                },
            );
            self.deferred += 1;
        }
    }

    fn register_watches(&mut self, source: &GatedSource) {
        if let GatedSource::Deferred { dep_ids, .. } = source {
            for d in dep_ids {
                *self.watchers.entry(*d).or_insert(0) += 1;
            }
        }
    }

    fn unregister_watches(&mut self, dep_ids: &[u64]) {
        for d in dep_ids {
            if let Some(w) = self.watchers.get_mut(d) {
                *w -= 1;
                if *w == 0 {
                    self.watchers.remove(d);
                    self.outputs.remove(d);
                }
            }
        }
    }

    /// Records that `id`'s final attempt retired (or that it was
    /// cancelled, with `errored = true`) and returns whatever that set
    /// free. Idempotent per id.
    pub fn on_final(&mut self, id: u64, errored: bool, outputs: DepOutputs) -> Released {
        let mut out = Released::default();
        if self.retired.contains_key(&id) {
            return out;
        }
        self.retired.insert(id, errored);
        if errored {
            self.fail_dependents(id, &mut out);
            return out;
        }
        if self.watchers.contains_key(&id) {
            self.outputs.insert(id, outputs);
        }
        let Some(dependents) = self.dependents.remove(&id) else {
            return out;
        };
        let mut ready_ids = Vec::new();
        for w_id in dependents {
            if let Some(w) = self.waiting.get_mut(&w_id) {
                w.pending.remove(&id);
                if w.pending.is_empty() {
                    ready_ids.push(w_id);
                }
            }
        }
        // Ascending id keeps release order independent of ack timing.
        ready_ids.sort_unstable();
        for w_id in ready_ids {
            let w = self.waiting.remove(&w_id).expect("ready ids are waiting");
            self.released += 1;
            self.release(w_id, w.source, w.placement, &mut out);
        }
        out
    }

    /// Fails every job still waiting (queue closed with unsatisfiable
    /// dependencies). Returns the failed set.
    pub fn fail_all(&mut self) -> Released {
        let mut out = Released::default();
        let ids: Vec<u64> = self.waiting.keys().copied().collect();
        for id in ids {
            if let Some(w) = self.waiting.remove(&id) {
                if let GatedSource::Deferred { dep_ids, .. } = &w.source {
                    let dep_ids = dep_ids.clone();
                    self.unregister_watches(&dep_ids);
                }
                self.fail(id, &mut out);
            }
        }
        out
    }

    fn release(&mut self, id: u64, source: GatedSource, placement: Placement, out: &mut Released) {
        match source {
            GatedSource::Ready(program) => out.ready.push(PimJob {
                id,
                program,
                placement,
                deadline: None,
            }),
            GatedSource::Deferred { dep_ids, build } => {
                let inputs: Vec<DepOutputs> = dep_ids
                    .iter()
                    .map(|d| self.outputs.get(d).cloned().unwrap_or_default())
                    .collect();
                self.unregister_watches(&dep_ids);
                match build(&inputs) {
                    Ok(program) => out.ready.push(PimJob {
                        id,
                        program: Arc::new(program),
                        placement,
                        deadline: None,
                    }),
                    Err(_) => self.fail(id, out),
                }
            }
        }
    }

    /// Marks `id` failed and cascades to everything waiting on it.
    fn fail(&mut self, id: u64, out: &mut Released) {
        self.retired.insert(id, true);
        self.cascade_cancelled += 1;
        out.failed.push(id);
        self.fail_dependents(id, out);
    }

    fn fail_dependents(&mut self, id: u64, out: &mut Released) {
        let Some(dependents) = self.dependents.remove(&id) else {
            return;
        };
        for w_id in dependents {
            if let Some(w) = self.waiting.remove(&w_id) {
                if let GatedSource::Deferred { dep_ids, .. } = &w.source {
                    let dep_ids = dep_ids.clone();
                    self.unregister_watches(&dep_ids);
                }
                self.fail(w_id, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_core::program::PimProgram;

    fn gated(id: u64, after: &[u64]) -> GatedJob {
        GatedJob {
            id,
            source: GatedSource::Ready(Arc::new(PimProgram::default())),
            placement: Placement::Auto,
            after: after.to_vec(),
        }
    }

    #[test]
    fn independent_members_release_at_admit() {
        let mut t = DepTracker::new();
        let rel = t.admit(vec![gated(0, &[]), gated(1, &[])]);
        assert_eq!(rel.ready.len(), 2);
        assert!(rel.failed.is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn gated_member_waits_for_final() {
        let mut t = DepTracker::new();
        let rel = t.admit(vec![gated(0, &[]), gated(1, &[0])]);
        assert_eq!(rel.ready.len(), 1);
        assert!(!t.is_empty());
        let rel = t.on_final(0, false, Vec::new());
        assert_eq!(rel.ready.len(), 1);
        assert_eq!(rel.ready[0].id, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn failed_predecessor_cascades_transitively() {
        let mut t = DepTracker::new();
        let rel = t.admit(vec![gated(0, &[]), gated(1, &[0]), gated(2, &[1])]);
        assert_eq!(rel.ready.len(), 1);
        let rel = t.on_final(0, true, Vec::new());
        assert!(rel.ready.is_empty());
        assert_eq!(rel.failed, vec![1, 2]);
        assert_eq!(t.cascade_cancelled, 2);
        assert!(t.is_empty());
    }

    #[test]
    fn binder_receives_dep_outputs_in_order() {
        let mut t = DepTracker::new();
        let seen: Arc<std::sync::Mutex<Vec<Vec<String>>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let chain = vec![
            gated(0, &[]),
            gated(1, &[]),
            GatedJob {
                id: 2,
                source: GatedSource::Deferred {
                    dep_ids: vec![1, 0],
                    build: Box::new(move |deps| {
                        sink.lock().unwrap().push(
                            deps.iter()
                                .map(|d| d.iter().map(|(l, _)| l.clone()).collect())
                                .collect::<Vec<Vec<String>>>()
                                .concat(),
                        );
                        Ok(PimProgram::default())
                    }),
                },
                placement: Placement::Auto,
                after: vec![0, 1],
            },
        ];
        let rel = t.admit(chain);
        assert_eq!(rel.ready.len(), 2);
        t.on_final(0, false, vec![("a".into(), vec![1])]);
        let rel = t.on_final(1, false, vec![("b".into(), vec![2])]);
        assert_eq!(rel.ready.len(), 1);
        assert_eq!(rel.ready[0].id, 2);
        // dep order [1, 0] → labels b then a.
        assert_eq!(seen.lock().unwrap()[0], vec!["b".to_string(), "a".into()]);
        // Stash is dropped once the last watcher consumed it.
        assert!(t.outputs.is_empty());
    }

    #[test]
    fn binder_error_cascades() {
        let mut t = DepTracker::new();
        let chain = vec![
            gated(0, &[]),
            GatedJob {
                id: 1,
                source: GatedSource::Deferred {
                    dep_ids: vec![0],
                    build: Box::new(|_| Err("nope".into())),
                },
                placement: Placement::Auto,
                after: vec![0],
            },
            gated(2, &[1]),
        ];
        t.admit(chain);
        let rel = t.on_final(0, false, Vec::new());
        assert!(rel.ready.is_empty());
        assert_eq!(rel.failed, vec![1, 2]);
    }

    #[test]
    fn fail_all_drops_the_unsatisfiable_tail() {
        let mut t = DepTracker::new();
        t.admit(vec![gated(5, &[3])]);
        let rel = t.fail_all();
        assert_eq!(rel.failed, vec![5]);
        assert!(t.is_empty());
    }

    #[test]
    fn already_retired_predecessors_count_as_satisfied() {
        let mut t = DepTracker::new();
        t.on_final(7, false, Vec::new());
        let rel = t.admit(vec![gated(9, &[7])]);
        assert_eq!(rel.ready.len(), 1);
        let rel = t.admit(vec![gated(10, &[9])]);
        assert!(rel.ready.is_empty(), "9 has not retired yet");
        let rel = t.on_final(9, false, Vec::new());
        assert_eq!(rel.ready[0].id, 10);
    }
}
