//! Runtime observability: histograms, per-bank occupancy, and the
//! serializable [`RuntimeStats`] roll-up.

use coruscant_mem::controller::{BankStats, ControllerStats};
use coruscant_mem::ScrubOutcome;
use serde::{Deserialize, Serialize};

/// A power-of-two-bucket histogram of `u64` samples. Bucket `i` counts
/// samples in `[2^(i-1), 2^i)` (bucket 0 counts zeros and ones), which
/// keeps the serialized form compact at any dynamic range.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Histogram {
    /// Bucket counts; index `i` covers values below `2^i` and at or above
    /// `2^(i-1)`.
    pub buckets: Vec<u64>,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one bucket-wise (used to merge
    /// per-domain histograms into the session roll-up).
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// One bank's share of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct BankOccupancy {
    /// Bank index.
    pub bank: usize,
    /// Jobs that ran on this bank.
    pub jobs: u64,
    /// Busy (service) memory cycles the bank accumulated.
    pub busy_cycles: u64,
    /// Memory cycles jobs spent waiting for this bank before starting.
    pub wait_cycles: u64,
}

/// Fault-tolerance counters of a runtime session (all zero when neither
/// fault injection nor a protection policy is configured).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultStats {
    /// Distinct jobs that ran under an active protection policy.
    pub protected_jobs: u64,
    /// Program executions across all jobs and attempts (replication and
    /// retries included) — the detection overhead in units of runs.
    pub replicas_run: u64,
    /// Faults detected by protection: mismatching compare-pairs plus
    /// voted readouts whose replicas disagreed.
    pub faults_detected: u64,
    /// Extra compare-pairs run after a mismatch (re-execute policy).
    pub retries: u64,
    /// Readouts where the NMR majority overruled at least one replica.
    pub votes_overturned: u64,
    /// Unverified jobs the scheduler re-dispatched to a different bank.
    pub redispatches: u64,
    /// Jobs whose final attempt still failed verification.
    pub unverified_jobs: u64,
    /// Position-code scrub passes dispatched to suspect banks.
    pub scrubs: u64,
    /// Aggregate wires checked/realigned/repaired across all scrubs.
    pub scrub: ScrubOutcome,
    /// Banks in the Suspect state at session end.
    pub suspect_banks: u64,
    /// Banks quarantined during the session (sticky).
    pub quarantined_banks: u64,
    /// Fraction of banks lost to quarantine, `0.0..=1.0`.
    pub degraded_capacity: f64,
}

/// Same-bank batch-fusion counters of a runtime session (all zero when
/// batching is disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct BatchStats {
    /// Batched dispatches (≥2 jobs spliced into one program).
    pub batches: u64,
    /// Jobs that executed as members of a batched dispatch.
    pub batched_jobs: u64,
    /// Batched dispatches whose spliced+optimized program was served from
    /// the batched-splice cache (same ordered member shapes seen before).
    pub splice_hits: u64,
    /// Batched dispatches that had to run the splice+optimize pipeline.
    pub splice_misses: u64,
}

/// Dependency-gating and resident-weight counters of a runtime session
/// (all zero when neither chains nor pins are used).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PipelineStats {
    /// Jobs that waited in the dependency tracker before placement.
    pub deferred_jobs: u64,
    /// Deferred jobs released after their predecessors retired.
    pub released_jobs: u64,
    /// Jobs dropped because a predecessor failed, was cancelled, or a
    /// binder refused to build (they never ran; reported as cancelled).
    pub cascade_cancelled: u64,
    /// Resident weight pins materialized.
    pub residents: u64,
    /// Re-materialization jobs quarantine forced (pinned weights
    /// re-loaded on a healthy bank).
    pub rematerializations: u64,
}

/// One scheduler domain's share of a session.
///
/// Under [`SchedMode::Classic`](crate::SchedMode) a "domain" is one
/// worker shard (the single scheduler thread does all placement); under
/// [`SchedMode::Parallel`](crate::SchedMode) it is one fused
/// scheduler+executor domain owning `bank % domains == d` banks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DomainStats {
    /// Domain (shard) index.
    pub domain: usize,
    /// Dispatches this domain issued (batched dispatches count once).
    pub issued: u64,
    /// Member jobs this domain completed.
    pub jobs: u64,
    /// Submissions this domain stole from sibling injectors (parallel
    /// mode only).
    pub steals: u64,
    /// Wall-clock microseconds the domain's thread spent working (not
    /// waiting). This is the denominator of the scheduler-capacity
    /// metric the bench harness reports.
    pub busy_micros: u64,
    /// Deepest the domain's completion ring got before a drain
    /// (parallel mode only).
    pub ring_peak: u64,
}

/// The scheduler-occupancy profile of a session: where the scheduling
/// hot path spent its time, stage by stage.
///
/// Everything here is **wall-clock measurement**, not modeled time — two
/// otherwise identical runs will report different micros. Consumers that
/// compare reports for determinism should compare the modeled fields of
/// [`RuntimeStats`] and ignore `sched`, or compare only the counter
/// fields (`steals`, `per_domain[].issued`/`jobs`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedStats {
    /// Which scheduling engine ran: `"classic"` or `"parallel"`.
    pub mode: String,
    /// Scheduler domains (1 for classic's single loop; the shard count
    /// for parallel).
    pub domains: usize,
    /// Microseconds the scheduler spent popping the submission queue.
    pub pop_micros: u64,
    /// Microseconds spent admitting submissions (compile-cache front,
    /// dependency gating, chain admission).
    pub admit_micros: u64,
    /// Microseconds spent resolving placements and retargeting programs.
    pub place_micros: u64,
    /// Microseconds spent batching, splicing, and dispatching work.
    pub dispatch_micros: u64,
    /// Microseconds spent draining and applying completion acks.
    pub ack_micros: u64,
    /// Busy microseconds of the busiest single thread (scheduler or any
    /// worker/domain) — the serial bottleneck a scaling claim is made
    /// against.
    pub busy_micros: u64,
    /// Wall-clock microseconds the scheduling engine was live.
    pub wall_micros: u64,
    /// Busy fraction of the busiest thread over the engine's lifetime,
    /// `0.0..=100.0`.
    pub occupancy_pct: f64,
    /// Submissions moved between domains by work-stealing (parallel
    /// mode only).
    pub steals: u64,
    /// Per-domain breakdown, in domain order.
    pub per_domain: Vec<DomainStats>,
}

impl SchedStats {
    /// Sum of the per-stage scheduler micros.
    pub fn stage_micros(&self) -> u64 {
        self.pop_micros
            + self.admit_micros
            + self.place_micros
            + self.dispatch_micros
            + self.ack_micros
    }
}

/// Aggregate, serializable statistics of a runtime session.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RuntimeStats {
    /// Jobs completed.
    pub jobs: u64,
    /// Jobs dropped by cancellation before reaching a bank (they report
    /// no outcome and are not in `jobs`).
    pub cancelled: u64,
    /// Jobs dropped at issue time because their queueing deadline had
    /// already passed (they report no outcome and are not in `jobs`).
    pub expired: u64,
    /// `cpim` instructions executed.
    pub instructions: u64,
    /// Worker shards the run used.
    pub shards: usize,
    /// Jobs the on-enqueue compiler changed (fusion, elimination, or
    /// estimated-cycle reduction).
    pub optimized_jobs: u64,
    /// Instructions the compiler removed across all submitted jobs.
    pub instructions_eliminated: u64,
    /// Estimated device cycles the compiler removed across all jobs.
    pub est_device_cycles_saved: u64,
    /// Modeled end-to-end makespan in memory cycles (all banks drained).
    pub makespan_cycles: u64,
    /// Total internal PIM device cycles across all jobs.
    pub device_cycles: u64,
    /// Jobs per thousand modeled memory cycles ×1000 would overflow
    /// nothing but stays integer-hostile; this is jobs per modeled
    /// microsecond assuming the configured memory cycle time.
    pub jobs_per_us: f64,
    /// Per-bank occupancy, densest first.
    pub per_bank: Vec<BankOccupancy>,
    /// Distribution of per-bank scheduler queue depths at enqueue.
    pub queue_depth: Histogram,
    /// Distribution of per-job wait times (memory cycles).
    pub wait: Histogram,
    /// The timing controller's aggregate statistics.
    pub controller: ControllerStats,
    /// The timing controller's per-bank request distribution.
    pub bank_stats: BankStats,
    /// Fault detection, retry, and quarantine counters.
    pub faults: FaultStats,
    /// Compiled-program cache counters.
    pub cache: crate::cache::CacheStats,
    /// Same-bank batch-fusion counters.
    pub batch: BatchStats,
    /// Dependency-gating and resident-weight counters.
    pub pipeline: PipelineStats,
    /// Software-fault supervision counters (panics caught, shard
    /// restarts, hung attempts, quarantined programs).
    pub supervision: crate::supervise::SupervisionStats,
    /// Scheduler-occupancy profile (wall-clock; see [`SchedStats`] for
    /// the determinism caveat).
    pub sched: SchedStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1025.0 / 8.0).abs() < 1e-9);
        // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4,7 -> bucket 3;
        // 8 -> bucket 4; 1000 -> bucket 10.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 2);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[10], 1);
    }

    #[test]
    fn stats_serialize_to_json() {
        let mut stats = RuntimeStats {
            jobs: 3,
            shards: 2,
            ..RuntimeStats::default()
        };
        stats.wait.record(17);
        let json = serde::json::to_string(&stats);
        assert!(json.contains("\"jobs\":3"));
        assert!(json.contains("\"queue_depth\""));
        assert!(json.contains("\"buckets\""));
    }
}
