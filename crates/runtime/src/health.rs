//! Job protection policies and the bank health state machine.
//!
//! Detection in a PIM memory cannot rely on ECC (it is not homomorphic
//! under transverse reads, paper §III-F), so the runtime detects silent
//! data corruption *behaviorally*: re-execute-and-compare or N-modular
//! replication per job ([`ProtectionPolicy`]). Detected faults feed a
//! per-bank leaky-bucket score ([`HealthTracker`]) that walks each bank
//! through `Healthy → Suspect → Quarantined`:
//!
//! * **Healthy** — faults decay one-for-one with clean jobs.
//! * **Suspect** — the score crossed [`HealthPolicy::suspect_after`]; the
//!   scheduler dispatches a position-code scrub pass over the bank and
//!   the bank recovers to Healthy once the score decays to zero.
//! * **Quarantined** — the score crossed
//!   [`HealthPolicy::quarantine_after`]; the state is sticky, queued
//!   non-[`Fixed`](crate::Placement::Fixed) jobs are re-routed to healthy
//!   banks, and automatic placement skips the bank for the rest of the
//!   session.

use serde::Serialize;

/// How each job is protected against silent data corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtectionPolicy {
    /// No protection: run once and report whatever came out. Corrupt
    /// results are *not* detected.
    #[default]
    None,
    /// Re-execute-and-compare: run the program twice and compare the raw
    /// readout rows. On mismatch, retry with a fresh pair, up to
    /// `max_retries` extra pairs, before giving the job back to the
    /// scheduler unverified (which may re-dispatch it to another bank).
    Reexecute {
        /// Extra compare-pairs to run after the first mismatching one.
        max_retries: u32,
    },
    /// N-modular redundancy: run `n` replicas and majority-vote every
    /// readout row through the super-carry gate
    /// ([`NmrVoter`](coruscant_core::nmr::NmrVoter), paper §III-F).
    /// `n` must be odd, at most TRD, with `(TRD - n)` even.
    Nmr {
        /// Redundancy degree (3, 5, or 7).
        n: usize,
    },
}

impl ProtectionPolicy {
    /// Whether this policy performs any detection at all.
    pub fn is_active(&self) -> bool {
        !matches!(self, ProtectionPolicy::None)
    }
}

/// Thresholds governing the bank health state machine and the scheduler's
/// recovery actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Leaky-bucket score at which a bank becomes [`BankState::Suspect`].
    pub suspect_after: u32,
    /// Score at which a bank is quarantined (sticky).
    pub quarantine_after: u32,
    /// Dispatch a position-code scrub pass when a bank turns suspect.
    pub scrub_on_suspect: bool,
    /// Jobs the scheduler keeps in flight per bank before acks gate
    /// further issue (bounds how much work a failing bank can poison
    /// before its score catches up).
    pub max_inflight_per_bank: usize,
    /// Times an unverified job may be re-dispatched to a different bank.
    pub max_redispatch: u32,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            suspect_after: 2,
            quarantine_after: 5,
            scrub_on_suspect: true,
            max_inflight_per_bank: 2,
            max_redispatch: 2,
        }
    }
}

impl HealthPolicy {
    /// Checks the thresholds are internally consistent.
    pub(crate) fn check(&self) -> Result<(), String> {
        if self.suspect_after == 0 {
            return Err("suspect_after must be at least 1".into());
        }
        if self.quarantine_after < self.suspect_after {
            return Err("quarantine_after must be >= suspect_after".into());
        }
        if self.max_inflight_per_bank == 0 {
            return Err("max_inflight_per_bank must be at least 1".into());
        }
        Ok(())
    }
}

/// A bank's position in the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum BankState {
    /// No outstanding fault pressure.
    #[default]
    Healthy,
    /// Faulting above the decay rate; scrubbed and watched.
    Suspect,
    /// Taken out of automatic placement for the rest of the session.
    Quarantined,
}

/// A state transition reported by [`HealthTracker::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// The bank just became suspect (score attached).
    Suspect(u32),
    /// A suspect bank's score decayed to zero.
    Recovered,
    /// The bank just crossed the quarantine threshold (score attached).
    Quarantined(u32),
}

/// Per-bank leaky-bucket fault accounting.
///
/// Every job completion reports whether its protection detected a fault;
/// a faulty job adds one to the bank's score, a clean job subtracts one
/// (saturating at zero). Crossing the policy thresholds moves the bank
/// through the state machine. Quarantine is sticky: a bank that faults
/// persistently enough to cross it is presumed to have a hard defect
/// (stuck shift driver, marginal sense amp) rather than transient noise.
#[derive(Debug)]
pub struct HealthTracker {
    policy: HealthPolicy,
    scores: Vec<u32>,
    states: Vec<BankState>,
    /// Jobs that reported at least one detected fault, per bank.
    faulty_jobs: Vec<u64>,
}

impl HealthTracker {
    /// A tracker over `banks` healthy banks.
    pub fn new(banks: usize, policy: HealthPolicy) -> HealthTracker {
        HealthTracker {
            policy,
            scores: vec![0; banks],
            states: vec![BankState::Healthy; banks],
            faulty_jobs: vec![0; banks],
        }
    }

    /// Records one job completion on `bank` and returns any transition.
    pub fn record(&mut self, bank: usize, faulty: bool) -> Transition {
        if faulty {
            self.faulty_jobs[bank] += 1;
            self.scores[bank] = self.scores[bank].saturating_add(1);
        } else {
            self.scores[bank] = self.scores[bank].saturating_sub(1);
        }
        let score = self.scores[bank];
        match self.states[bank] {
            BankState::Quarantined => Transition::None,
            BankState::Suspect => {
                if score >= self.policy.quarantine_after {
                    self.states[bank] = BankState::Quarantined;
                    Transition::Quarantined(score)
                } else if score == 0 {
                    self.states[bank] = BankState::Healthy;
                    Transition::Recovered
                } else {
                    Transition::None
                }
            }
            BankState::Healthy => {
                if score >= self.policy.quarantine_after {
                    self.states[bank] = BankState::Quarantined;
                    Transition::Quarantined(score)
                } else if score >= self.policy.suspect_after {
                    self.states[bank] = BankState::Suspect;
                    Transition::Suspect(score)
                } else {
                    Transition::None
                }
            }
        }
    }

    /// The current state of `bank`.
    pub fn state(&self, bank: usize) -> BankState {
        self.states[bank]
    }

    /// Whether `bank` is quarantined.
    pub fn is_quarantined(&self, bank: usize) -> bool {
        self.states[bank] == BankState::Quarantined
    }

    /// Banks currently suspect.
    pub fn suspect_count(&self) -> u64 {
        self.states
            .iter()
            .filter(|&&s| s == BankState::Suspect)
            .count() as u64
    }

    /// Banks quarantined.
    pub fn quarantined_count(&self) -> u64 {
        self.states
            .iter()
            .filter(|&&s| s == BankState::Quarantined)
            .count() as u64
    }

    /// Fraction of banks lost to quarantine, `0.0..=1.0`.
    pub fn degraded_capacity(&self) -> f64 {
        if self.states.is_empty() {
            0.0
        } else {
            self.quarantined_count() as f64 / self.states.len() as f64
        }
    }

    /// Jobs with detected faults attributed to `bank` so far.
    pub fn faulty_jobs(&self, bank: usize) -> u64 {
        self.faulty_jobs[bank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_policies_report_activity() {
        assert!(!ProtectionPolicy::None.is_active());
        assert!(ProtectionPolicy::Reexecute { max_retries: 0 }.is_active());
        assert!(ProtectionPolicy::Nmr { n: 3 }.is_active());
    }

    #[test]
    fn default_policy_is_consistent() {
        HealthPolicy::default().check().unwrap();
        assert!(HealthPolicy {
            suspect_after: 0,
            ..HealthPolicy::default()
        }
        .check()
        .is_err());
        assert!(HealthPolicy {
            suspect_after: 4,
            quarantine_after: 2,
            ..HealthPolicy::default()
        }
        .check()
        .is_err());
        assert!(HealthPolicy {
            max_inflight_per_bank: 0,
            ..HealthPolicy::default()
        }
        .check()
        .is_err());
    }

    #[test]
    fn healthy_to_suspect_to_quarantine() {
        let mut t = HealthTracker::new(2, HealthPolicy::default());
        assert_eq!(t.record(0, true), Transition::None); // score 1
        assert_eq!(t.record(0, true), Transition::Suspect(2));
        assert_eq!(t.state(0), BankState::Suspect);
        assert_eq!(t.record(0, true), Transition::None); // 3
        assert_eq!(t.record(0, true), Transition::None); // 4
        assert_eq!(t.record(0, true), Transition::Quarantined(5));
        assert!(t.is_quarantined(0));
        // Sticky: clean jobs do not rehabilitate a quarantined bank.
        for _ in 0..10 {
            assert_eq!(t.record(0, false), Transition::None);
        }
        assert!(t.is_quarantined(0));
        assert_eq!(t.quarantined_count(), 1);
        assert_eq!(t.state(1), BankState::Healthy);
        assert!((t.degraded_capacity() - 0.5).abs() < 1e-12);
        assert_eq!(t.faulty_jobs(0), 5);
    }

    #[test]
    fn suspect_bank_recovers_when_score_decays() {
        let mut t = HealthTracker::new(1, HealthPolicy::default());
        t.record(0, true);
        assert_eq!(t.record(0, true), Transition::Suspect(2));
        assert_eq!(t.record(0, false), Transition::None); // 1
        assert_eq!(t.record(0, false), Transition::Recovered); // 0
        assert_eq!(t.state(0), BankState::Healthy);
        // Clean traffic keeps the score pinned at zero.
        assert_eq!(t.record(0, false), Transition::None);
        assert_eq!(t.suspect_count(), 0);
    }

    #[test]
    fn interleaved_faults_keep_healthy_bank_healthy() {
        // Alternating faulty/clean traffic never accumulates score.
        let mut t = HealthTracker::new(1, HealthPolicy::default());
        for _ in 0..50 {
            assert_eq!(t.record(0, true), Transition::None);
            assert_eq!(t.record(0, false), Transition::None);
        }
        assert_eq!(t.state(0), BankState::Healthy);
    }
}
