//! A bounded multi-producer job queue with backpressure.
//!
//! Clients submit [`PimJob`](crate::job::PimJob)s through the queue; the
//! scheduler thread drains it. When the queue is full, [`JobQueue::push`]
//! blocks the submitting client until the scheduler catches up — the
//! backpressure that keeps an open-loop client from buffering unbounded
//! work — while [`JobQueue::try_push`] refuses instead, for clients that
//! would rather shed load.

use crate::sync;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A bounded blocking FIFO. `T` is the job type; the queue itself is
/// generic so tests can drive it with plain integers.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<QueueState<T>>,
    /// Signaled when an item is popped (space available).
    space: Condvar,
    /// Signaled when an item is pushed or the queue closes.
    items: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of the queue depth, for observability.
    max_depth: usize,
    /// Monotonic count of [`JobQueue::kick`] calls. A popper that
    /// snapshots this before waiting can tell "an external event fired
    /// while I slept" apart from a plain timeout (see
    /// [`JobQueue::pop_kicked`]).
    kicks: u64,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (only from [`JobQueue::try_push`]).
    Full,
    /// The queue was closed; no more work is accepted.
    Closed,
    /// The program's fingerprint is quarantined by the poison registry
    /// (never returned by the queue itself — the runtime's
    /// `try_submit` refuses the job before it reaches the queue).
    Poisoned {
        /// The quarantined structural program fingerprint.
        fingerprint: u64,
    },
}

/// The outcome of a [`JobQueue::pop_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue still empty (and open).
    Timeout,
    /// The queue is closed and fully drained.
    Closed,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> JobQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                max_depth: 0,
                kicks: 0,
            }),
            space: Condvar::new(),
            items: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Locks the queue state, recovering from poison: a client that
    /// panics mid-push must not wedge the scheduler (or every other
    /// client) behind a poisoned mutex.
    fn state(&self) -> MutexGuard<'_, QueueState<T>> {
        sync::lock(&self.inner)
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has been.
    pub fn max_depth(&self) -> usize {
        self.state().max_depth
    }

    /// Enqueues a job, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state();
        loop {
            if state.closed {
                return Err(PushError::Closed);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                state.max_depth = state.max_depth.max(state.items.len());
                self.items.notify_one();
                return Ok(());
            }
            state = sync::wait(&self.space, state);
        }
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] at capacity, [`PushError::Closed`]
    /// after close.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        state.max_depth = state.max_depth.max(state.items.len());
        self.items.notify_one();
        Ok(())
    }

    /// Dequeues the next job, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.space.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = sync::wait(&self.items, state);
        }
    }

    /// Dequeues with a bounded wait: blocks at most `timeout` while the
    /// queue is empty. The fault-aware scheduler uses this to interleave
    /// queue draining with worker-ack processing without busy-spinning.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.space.notify_one();
                return Pop::Item(item);
            }
            if state.closed {
                return Pop::Closed;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Pop::Timeout;
            }
            state = sync::wait_timeout(&self.items, state, deadline - now);
        }
    }

    /// The current kick count. Snapshot this *before* processing
    /// external events (worker acks), then pass it to
    /// [`JobQueue::pop_kicked`]: any kick after the snapshot wakes the
    /// pop early, and any kick before it means the event was already
    /// visible to that processing pass — no wakeup is ever lost.
    pub fn kicks(&self) -> u64 {
        self.state().kicks
    }

    /// Signals poppers that an external event (not a push) needs
    /// attention — workers kick after sending a completion ack so the
    /// scheduler's bounded pop returns immediately instead of sleeping
    /// out its timeout.
    pub fn kick(&self) {
        let mut state = self.state();
        state.kicks = state.kicks.wrapping_add(1);
        drop(state);
        self.items.notify_all();
    }

    /// Like [`JobQueue::pop_timeout`], but also returns (with
    /// [`Pop::Timeout`]) as soon as the kick count moves past
    /// `seen_kicks` — the event-driven wait that replaces fixed-interval
    /// polling in the scheduler loop.
    pub fn pop_kicked(&self, timeout: Duration, seen_kicks: u64) -> Pop<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.space.notify_one();
                return Pop::Item(item);
            }
            if state.closed {
                return Pop::Closed;
            }
            if state.kicks != seen_kicks {
                return Pop::Timeout;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Pop::Timeout;
            }
            state = sync::wait_timeout(&self.items, state, deadline - now);
        }
    }

    /// Removes up to `max` queued items matching `pred` (front first,
    /// preserving the relative order of everything left behind) and
    /// appends them to `into`. Returns how many were taken. The parallel
    /// scheduler's work-stealing uses this to lift steal-eligible
    /// submissions out of a sibling domain's injector without disturbing
    /// pinned work.
    pub fn steal_matching<F: Fn(&T) -> bool>(
        &self,
        pred: F,
        max: usize,
        into: &mut Vec<T>,
    ) -> usize {
        if max == 0 {
            return 0;
        }
        let mut state = self.state();
        let mut taken = 0;
        let mut idx = 0;
        while idx < state.items.len() && taken < max {
            if pred(&state.items[idx]) {
                let item = state.items.remove(idx).expect("index bounds checked");
                into.push(item);
                taken += 1;
            } else {
                idx += 1;
            }
        }
        if taken > 0 {
            self.space.notify_all();
        }
        taken
    }

    /// Dequeues every job currently available without blocking (the
    /// scheduler uses this to batch a burst into its bank FIFOs).
    pub fn drain_ready(&self, into: &mut Vec<T>) {
        let mut state = self.state();
        let had = !state.items.is_empty();
        into.extend(state.items.drain(..));
        if had {
            self.space.notify_all();
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes fail, and
    /// blocked poppers wake up.
    pub fn close(&self) {
        let mut state = self.state();
        state.closed = true;
        self.items.notify_all();
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_preserved() {
        let q = JobQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.max_depth(), 5);
    }

    #[test]
    fn try_push_refuses_when_full() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        q.pop();
        q.try_push(3).unwrap();
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains() {
        let q = JobQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(PushError::Closed));
        assert_eq!(q.try_push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_space_frees() {
        let q = Arc::new(JobQueue::new(1));
        q.push(10u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(20).unwrap());
        // Give the producer time to block against the full queue.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer is blocked, not enqueued");
        assert_eq!(q.pop(), Some(10));
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(20));
    }

    #[test]
    fn pop_timeout_times_out_then_delivers() {
        let q: JobQueue<u32> = JobQueue::new(4);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Timeout);
        q.push(9).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Item(9));
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Closed);
    }

    #[test]
    fn pop_timeout_drains_before_reporting_closed() {
        let q = JobQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Item(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Closed);
    }

    #[test]
    fn kick_wakes_a_bounded_pop_early() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(4));
        let seen = q.kicks();
        let q2 = Arc::clone(&q);
        let kicker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.kick();
        });
        let start = std::time::Instant::now();
        // A plain empty wait would sleep the full 5 s; the kick cuts it.
        assert_eq!(q.pop_kicked(Duration::from_secs(5), seen), Pop::Timeout);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "kick did not interrupt the wait"
        );
        kicker.join().unwrap();
    }

    #[test]
    fn stale_kick_snapshot_returns_immediately() {
        let q: JobQueue<u32> = JobQueue::new(4);
        q.kick();
        // A snapshot taken before the kick is stale: the pop must not
        // sleep at all (the event it signals may still be unprocessed).
        let start = std::time::Instant::now();
        assert_eq!(q.pop_kicked(Duration::from_secs(5), 0), Pop::Timeout);
        assert!(start.elapsed() < Duration::from_secs(1));
        // A fresh snapshot waits normally and still delivers items.
        let seen = q.kicks();
        q.push(7).unwrap();
        assert_eq!(q.pop_kicked(Duration::from_millis(5), seen), Pop::Item(7));
        q.close();
        assert_eq!(q.pop_kicked(Duration::from_millis(5), seen), Pop::Closed);
    }

    #[test]
    fn steal_matching_takes_only_matching_items_in_order() {
        let q = JobQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let mut stolen = Vec::new();
        // Steal up to 2 even items: 0 and 2, leaving order intact.
        assert_eq!(q.steal_matching(|v| v % 2 == 0, 2, &mut stolen), 2);
        assert_eq!(stolen, vec![0, 2]);
        let mut rest = Vec::new();
        q.drain_ready(&mut rest);
        assert_eq!(rest, vec![1, 3, 4, 5]);
        // Nothing matching, nothing taken.
        q.push(9).unwrap();
        assert_eq!(q.steal_matching(|v| *v == 100, 4, &mut stolen), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_ready_takes_everything_available() {
        let q = JobQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let mut batch = Vec::new();
        q.drain_ready(&mut batch);
        assert_eq!(batch, vec![0, 1, 2, 3, 4, 5]);
        assert!(q.is_empty());
        // Draining an empty queue is a no-op, not a block.
        q.drain_ready(&mut batch);
        assert_eq!(batch.len(), 6);
    }
}
