//! Supervised executors: shard restart with backoff, the execution
//! watchdog, and the poison-job quarantine.
//!
//! Each worker shard runs under a [`Supervisor`]. A shard that panics is
//! marked down, its queued dispatches are captured for re-dispatch, and
//! a replacement worker is spawned after a bounded exponential backoff;
//! a shard whose in-flight attempt exceeds its watchdog budget is
//! replaced immediately (the stalled thread is detached and its late
//! results discarded by sequence number). Programs whose attempts keep
//! hanging are fingerprinted into a [`PoisonRegistry`]; after
//! [`WatchdogOptions::poison_strikes`] strikes the fingerprint is
//! quarantined and further submissions are refused at admission, so a
//! pathological program cannot take the fleet down twice.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::sync;

/// Shard restart policy and job-level crash-retry bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseOptions {
    /// Times a shard may be restarted before it is retired for the
    /// session. The default never retires — restarts are cheap and a
    /// persistent crasher is bounded by `max_job_retries` per job.
    pub max_restarts: u32,
    /// First restart backoff in milliseconds (doubles per consecutive
    /// restart of the same shard, capped at `backoff_max_ms`).
    pub backoff_base_ms: u64,
    /// Backoff cap in milliseconds.
    pub backoff_max_ms: u64,
    /// Times one job's attempt may be retried after dying with its shard
    /// (panic) or being declared hung, before the job is abandoned with
    /// a typed error. Protection-policy re-dispatch accounting
    /// (`max_redispatch`) is separate and unaffected.
    pub max_job_retries: u32,
    /// Hard deadline for drain: once the session is closing,
    /// `finish()`/`shutdown()` abandon whatever is still unresolved
    /// after this many milliseconds and return.
    pub drain_deadline_ms: u64,
}

impl Default for SuperviseOptions {
    fn default() -> SuperviseOptions {
        SuperviseOptions {
            max_restarts: u32::MAX,
            backoff_base_ms: 10,
            backoff_max_ms: 1000,
            max_job_retries: 2,
            drain_deadline_ms: 5000,
        }
    }
}

impl SuperviseOptions {
    /// The drain deadline as a [`Duration`].
    pub fn drain_deadline(&self) -> Duration {
        Duration::from_millis(self.drain_deadline_ms)
    }

    pub(crate) fn first_backoff(&self) -> Duration {
        Duration::from_millis(self.backoff_base_ms.min(self.backoff_max_ms))
    }

    pub(crate) fn next_backoff(&self, current: Duration) -> Duration {
        (current * 2).min(Duration::from_millis(self.backoff_max_ms))
    }
}

/// Per-attempt wall-clock budget policy.
///
/// The budget scales with the attempt's modeled work (step count of the
/// dispatched program) so long programs are not misclassified:
/// `budget = (base_ms + per_step_us × steps) × slack_pct / 100`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogOptions {
    /// Master switch. Off by default: the watchdog polls in-flight
    /// attempts and detaches stalled threads, which only serves sessions
    /// that want hung-attempt classification.
    pub enabled: bool,
    /// Fixed budget floor in milliseconds.
    pub base_ms: u64,
    /// Budget per program step in microseconds.
    pub per_step_us: u64,
    /// Slack multiplier in percent (400 = 4× the modeled estimate).
    pub slack_pct: u32,
    /// Hung attempts of the same program fingerprint before it is
    /// quarantined at admission ([`RuntimeError::Poisoned`](crate::RuntimeError)).
    pub poison_strikes: u32,
}

impl Default for WatchdogOptions {
    fn default() -> WatchdogOptions {
        WatchdogOptions {
            enabled: false,
            base_ms: 20,
            per_step_us: 50,
            slack_pct: 400,
            poison_strikes: 3,
        }
    }
}

impl WatchdogOptions {
    /// The wall-clock budget of an attempt over a `steps`-step program.
    pub fn budget(&self, steps: u64) -> Duration {
        let us = (self.base_ms * 1000 + self.per_step_us * steps) * u64::from(self.slack_pct) / 100;
        Duration::from_micros(us)
    }
}

/// Software-fault supervision counters of a runtime session (all zero
/// when nothing panicked, stalled, or was quarantined).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisionStats {
    /// Worker panics caught by the supervisor.
    pub panics_caught: u64,
    /// Shard restarts (a panicked or hung shard replaced by a fresh
    /// worker).
    pub shard_restarts: u64,
    /// Shards retired after exhausting their restart budget.
    pub shards_retired: u64,
    /// Dispatches re-dispatched after their shard died (the in-flight
    /// attempt plus queued orphans).
    pub crash_redispatches: u64,
    /// Attempts the watchdog classified as hung.
    pub hung_attempts: u64,
    /// Jobs abandoned with a typed error after exhausting crash/hang
    /// retries (or at the drain deadline).
    pub abandoned_jobs: u64,
    /// Program fingerprints quarantined by the poison registry.
    pub quarantined_programs: u64,
    /// Late acks from replaced workers, discarded by sequence number.
    pub stale_acks: u64,
    /// Worker threads still stalled when the session ended (detached,
    /// never joined).
    pub workers_lost: u64,
}

/// One quarantined (or striking) program fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoisonEntry {
    /// Structural, placement-normalized program hash.
    pub fingerprint: u64,
    /// Hung attempts attributed to the fingerprint.
    pub strikes: u32,
    /// Whether the fingerprint crossed the quarantine threshold.
    pub quarantined: bool,
}

/// Serializable snapshot of the poison-job quarantine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoisonReport {
    /// Strikes at which a fingerprint is quarantined.
    pub threshold: u32,
    /// Every fingerprint with at least one strike, ascending.
    pub entries: Vec<PoisonEntry>,
}

/// The poison-job quarantine: hung-attempt strikes per program
/// fingerprint, shared between the scheduler (which records strikes) and
/// the submit path (which refuses quarantined fingerprints).
#[derive(Debug)]
pub struct PoisonRegistry {
    threshold: u32,
    strikes: Mutex<HashMap<u64, u32>>,
}

impl PoisonRegistry {
    /// A registry quarantining after `threshold` strikes (a zero
    /// threshold is clamped to 1 — quarantine on first strike).
    pub fn new(threshold: u32) -> PoisonRegistry {
        PoisonRegistry {
            threshold: threshold.max(1),
            strikes: Mutex::new(HashMap::new()),
        }
    }

    /// Records one hung attempt of `fingerprint`. Returns the new strike
    /// count and whether this strike crossed the quarantine threshold.
    pub fn strike(&self, fingerprint: u64) -> (u32, bool) {
        let mut strikes = sync::lock(&self.strikes);
        let count = strikes.entry(fingerprint).or_insert(0);
        *count += 1;
        (*count, *count == self.threshold)
    }

    /// Whether `fingerprint` is refused at admission.
    pub fn is_quarantined(&self, fingerprint: u64) -> bool {
        sync::lock(&self.strikes)
            .get(&fingerprint)
            .is_some_and(|&s| s >= self.threshold)
    }

    /// Fingerprints quarantined so far.
    pub fn quarantined_count(&self) -> u64 {
        let threshold = self.threshold;
        sync::lock(&self.strikes)
            .values()
            .filter(|&&s| s >= threshold)
            .count() as u64
    }

    /// Serializable snapshot, entries ascending by fingerprint.
    pub fn report(&self) -> PoisonReport {
        let strikes = sync::lock(&self.strikes);
        let mut entries: Vec<PoisonEntry> = strikes
            .iter()
            .map(|(&fingerprint, &strikes)| PoisonEntry {
                fingerprint,
                strikes,
                quarantined: strikes >= self.threshold,
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.fingerprint);
        PoisonReport {
            threshold: self.threshold,
            entries,
        }
    }
}

/// Why a shard went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DownCause {
    /// The worker thread panicked (it has already exited).
    Panic,
    /// The watchdog declared the in-flight attempt hung (the thread is
    /// still running; it is detached and replaced immediately).
    Hang,
}

/// What [`Supervisor::mark_down`] decided.
pub(crate) enum Down<T> {
    /// The report referred to an earlier incarnation of the shard —
    /// a late panic from an already-replaced worker. Ignore it.
    Stale,
    /// The shard is down and will be restarted after its backoff.
    Pending,
    /// The shard exhausted its restart budget; any dispatches buffered
    /// for it are returned so the scheduler can account them lost.
    Retired(Vec<T>),
}

/// What one [`Supervisor::poll_restarts`] pass did.
pub(crate) struct RestartEvent {
    pub shard: usize,
    /// Restarts of this shard so far (1 = first restart).
    pub restarts: u32,
}

pub(crate) type Factory<T> =
    Box<dyn Fn(usize, u64) -> (mpsc::Sender<T>, JoinHandle<()>) + Send + Sync>;

enum SlotState {
    Up,
    Down { restart_at: Instant },
    Retired,
}

struct Slot<T> {
    tx: Option<mpsc::Sender<T>>,
    handle: Option<JoinHandle<()>>,
    state: SlotState,
    /// Incarnation counter: workers stamp their reports with it so a
    /// replaced worker's late crash report cannot take down its
    /// replacement.
    generation: u64,
    restarts: u32,
    backoff: Duration,
    /// Dispatches sent while the shard was down, flushed on restart (the
    /// plain scheduler's recovery path; the fault-aware scheduler avoids
    /// down shards instead).
    buffer: Vec<T>,
}

struct Inner<T> {
    slots: Vec<Slot<T>>,
    factory: Option<Factory<T>>,
    /// Handles of replaced workers: exited (panicked) or still stalled.
    detached: Vec<JoinHandle<()>>,
}

/// Owns the worker shards: spawning, routing sends, down/up state, and
/// restart with bounded exponential backoff. Shared by the runtime
/// (spawn/close/join) and its scheduler thread (send/mark_down/poll).
pub(crate) struct Supervisor<T> {
    options: SuperviseOptions,
    inner: Mutex<Inner<T>>,
    panics_caught: AtomicU64,
    restarts: AtomicU64,
    retired: AtomicU64,
}

impl<T: Send + 'static> Supervisor<T> {
    /// Spawns `shards` workers through `factory` and supervises them.
    pub fn new(shards: usize, options: SuperviseOptions, factory: Factory<T>) -> Supervisor<T> {
        let slots = (0..shards)
            .map(|shard| {
                let (tx, handle) = factory(shard, 0);
                Slot {
                    tx: Some(tx),
                    handle: Some(handle),
                    state: SlotState::Up,
                    generation: 0,
                    restarts: 0,
                    backoff: options.first_backoff(),
                    buffer: Vec::new(),
                }
            })
            .collect();
        Supervisor {
            options,
            inner: Mutex::new(Inner {
                slots,
                factory: Some(factory),
                detached: Vec::new(),
            }),
            panics_caught: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            retired: AtomicU64::new(0),
        }
    }

    /// Sends `msg` to `shard`, buffering it if the shard is down (it is
    /// flushed to the replacement worker on restart). Dispatches to a
    /// retired shard are buffered too; the scheduler drains them through
    /// [`Supervisor::mark_down`]'s retirement return or at close.
    pub fn send(&self, shard: usize, msg: T) {
        let mut inner = sync::lock(&self.inner);
        let slot = &mut inner.slots[shard];
        match (&slot.state, &slot.tx) {
            (SlotState::Up, Some(tx)) => {
                if let Err(mpsc::SendError(msg)) = tx.send(msg) {
                    // The worker died without reporting yet; hold the
                    // dispatch for its replacement.
                    slot.buffer.push(msg);
                }
            }
            _ => slot.buffer.push(msg),
        }
    }

    /// Whether `shard` is currently down or retired.
    pub fn is_down(&self, shard: usize) -> bool {
        !matches!(sync::lock(&self.inner).slots[shard].state, SlotState::Up)
    }

    /// Whether any shard is down or retired.
    pub fn any_down(&self) -> bool {
        sync::lock(&self.inner)
            .slots
            .iter()
            .any(|s| !matches!(s.state, SlotState::Up))
    }

    /// The current incarnation of `shard`.
    pub fn generation(&self, shard: usize) -> u64 {
        sync::lock(&self.inner).slots[shard].generation
    }

    /// Takes `shard` down. `generation` guards against late reports from
    /// already-replaced workers. Panicked shards wait out their backoff;
    /// hung shards restart on the next poll (their thread is detached).
    pub fn mark_down(&self, shard: usize, generation: u64, cause: DownCause) -> Down<T> {
        let mut inner = sync::lock(&self.inner);
        let slot = &mut inner.slots[shard];
        if generation != slot.generation || !matches!(slot.state, SlotState::Up) {
            return Down::Stale;
        }
        if cause == DownCause::Panic {
            self.panics_caught.fetch_add(1, Ordering::Relaxed);
        }
        slot.tx = None;
        let handle = slot.handle.take();
        if slot.restarts >= self.options.max_restarts {
            slot.state = SlotState::Retired;
            self.retired.fetch_add(1, Ordering::Relaxed);
            let dropped = std::mem::take(&mut slot.buffer);
            if let Some(h) = handle {
                inner.detached.push(h);
            }
            return Down::Retired(dropped);
        }
        let backoff = match cause {
            // A hung shard's capacity is gone until a replacement runs;
            // restart immediately.
            DownCause::Hang => Duration::ZERO,
            DownCause::Panic => slot.backoff,
        };
        slot.state = SlotState::Down {
            restart_at: Instant::now() + backoff,
        };
        slot.backoff = self.options.next_backoff(slot.backoff);
        if let Some(h) = handle {
            inner.detached.push(h);
        }
        Down::Pending
    }

    /// Restarts every down shard whose backoff has elapsed, flushing its
    /// buffered dispatches to the replacement worker. Returns what was
    /// restarted (for trace events and stats).
    pub fn poll_restarts(&self) -> Vec<RestartEvent> {
        let mut inner = sync::lock(&self.inner);
        let Some(factory) = inner.factory.take() else {
            return Vec::new();
        };
        let now = Instant::now();
        let mut events = Vec::new();
        for (shard, slot) in inner.slots.iter_mut().enumerate() {
            let SlotState::Down { restart_at } = slot.state else {
                continue;
            };
            if now < restart_at {
                continue;
            }
            slot.generation += 1;
            slot.restarts += 1;
            let (tx, handle) = factory(shard, slot.generation);
            for msg in slot.buffer.drain(..) {
                let _ = tx.send(msg);
            }
            slot.tx = Some(tx);
            slot.handle = Some(handle);
            slot.state = SlotState::Up;
            self.restarts.fetch_add(1, Ordering::Relaxed);
            events.push(RestartEvent {
                shard,
                restarts: slot.restarts,
            });
        }
        inner.factory = Some(factory);
        events
    }

    /// Takes (and clears) whatever is buffered for `shard`. The
    /// fault-aware scheduler calls this right after a mark-down: it
    /// re-places in-flight work from its own records, so a restart
    /// flushing the buffer too would double-send.
    pub fn take_buffer(&self, shard: usize) -> Vec<T> {
        std::mem::take(&mut sync::lock(&self.inner).slots[shard].buffer)
    }

    /// Stops supervision: drops the factory (no further restarts) and
    /// every live sender so workers drain their channels and exit.
    /// Returns dispatches still buffered for down/retired shards so the
    /// caller can account them lost.
    pub fn close(&self) -> Vec<T> {
        let mut inner = sync::lock(&self.inner);
        inner.factory = None;
        let mut dropped = Vec::new();
        for slot in &mut inner.slots {
            slot.tx = None;
            dropped.append(&mut slot.buffer);
        }
        dropped
    }

    /// Detached worker threads that are still running (stalled). While
    /// this is nonzero, collectors must not block indefinitely on
    /// channels those threads hold senders of.
    pub fn stalled_workers(&self) -> usize {
        sync::lock(&self.inner)
            .detached
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// Joins every worker that finishes before `deadline`; threads still
    /// running at the deadline are abandoned. Returns the abandoned
    /// count.
    pub fn join_all(&self, deadline: Instant) -> u64 {
        let handles: Vec<JoinHandle<()>> = {
            let mut inner = sync::lock(&self.inner);
            let mut handles: Vec<JoinHandle<()>> = inner
                .slots
                .iter_mut()
                .filter_map(|s| s.handle.take())
                .collect();
            handles.append(&mut inner.detached);
            handles
        };
        let mut lost = 0u64;
        for handle in handles {
            let finished = loop {
                if handle.is_finished() {
                    break true;
                }
                if Instant::now() >= deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(1));
            };
            if finished {
                let _ = handle.join();
            } else {
                lost += 1;
                drop(handle); // detach for good — the process outlives it
            }
        }
        lost
    }

    /// `(panics caught, restarts, shards retired)` so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.panics_caught.load(Ordering::Relaxed),
            self.restarts.load(Ordering::Relaxed),
            self.retired.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A factory whose workers echo `msg * 10 + generation` until their
    /// channel closes.
    fn echo_factory(out: mpsc::Sender<u64>) -> Factory<u64> {
        Box::new(move |_, generation| {
            let (tx, rx) = mpsc::channel::<u64>();
            let out = out.clone();
            let handle = std::thread::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    let _ = out.send(msg * 10 + generation);
                }
            });
            (tx, handle)
        })
    }

    #[test]
    fn sends_route_to_live_workers() {
        let (out_tx, out_rx) = mpsc::channel();
        let sup = Supervisor::new(2, SuperviseOptions::default(), echo_factory(out_tx));
        sup.send(0, 1);
        sup.send(1, 2);
        let mut got = vec![out_rx.recv().unwrap(), out_rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
        sup.close();
        assert_eq!(sup.join_all(Instant::now() + Duration::from_secs(2)), 0);
    }

    #[test]
    fn down_shard_buffers_until_restart() {
        let (out_tx, out_rx) = mpsc::channel();
        let options = SuperviseOptions {
            backoff_base_ms: 1,
            ..SuperviseOptions::default()
        };
        let sup = Supervisor::new(1, options, echo_factory(out_tx));
        assert!(matches!(
            sup.mark_down(0, 0, DownCause::Panic),
            Down::Pending
        ));
        assert!(sup.is_down(0));
        sup.send(0, 7);
        // Wait out the backoff, then restart and observe the flush with
        // the new generation stamp.
        std::thread::sleep(Duration::from_millis(5));
        let events = sup.poll_restarts();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].restarts, 1);
        assert!(!sup.is_down(0));
        assert_eq!(sup.generation(0), 1);
        assert_eq!(out_rx.recv_timeout(Duration::from_secs(2)).unwrap(), 71);
        let (panics, restarts, retired) = sup.counters();
        assert_eq!((panics, restarts, retired), (1, 1, 0));
        sup.close();
        sup.join_all(Instant::now() + Duration::from_secs(2));
    }

    #[test]
    fn stale_generation_reports_are_ignored() {
        let (out_tx, _out_rx) = mpsc::channel();
        let options = SuperviseOptions {
            backoff_base_ms: 0,
            ..SuperviseOptions::default()
        };
        let sup = Supervisor::new(1, options, echo_factory(out_tx));
        assert!(matches!(
            sup.mark_down(0, 0, DownCause::Panic),
            Down::Pending
        ));
        // A second report for the same incarnation is stale, as is any
        // report after the restart bumped the generation.
        assert!(matches!(sup.mark_down(0, 0, DownCause::Panic), Down::Stale));
        sup.poll_restarts();
        assert!(matches!(sup.mark_down(0, 0, DownCause::Hang), Down::Stale));
        sup.close();
        sup.join_all(Instant::now() + Duration::from_secs(2));
    }

    #[test]
    fn exhausted_restart_budget_retires_with_buffered_work() {
        let (out_tx, _out_rx) = mpsc::channel();
        let options = SuperviseOptions {
            max_restarts: 0,
            ..SuperviseOptions::default()
        };
        let sup = Supervisor::new(1, options, echo_factory(out_tx));
        sup.mark_down(0, 0, DownCause::Panic);
        // max_restarts = 0 retires immediately; nothing was buffered yet.
        match sup.mark_down(0, 0, DownCause::Panic) {
            Down::Stale => {}
            _ => panic!("second report is stale"),
        }
        assert!(sup.is_down(0));
        assert!(sup.poll_restarts().is_empty(), "retired shards stay down");
        sup.send(0, 9);
        let dropped = sup.close();
        assert_eq!(dropped, vec![9]);
        let (_, _, retired) = sup.counters();
        assert_eq!(retired, 1);
        sup.join_all(Instant::now() + Duration::from_secs(2));
    }

    #[test]
    fn stalled_worker_is_detached_and_reported() {
        let gate = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let gate2 = Arc::clone(&gate);
        let factory: Factory<u64> = Box::new(move |_, _| {
            let (tx, rx) = mpsc::channel::<u64>();
            let gate = Arc::clone(&gate2);
            let handle = std::thread::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    if msg == 0 {
                        // Stall until released.
                        let mut released = sync::lock(&gate.0);
                        while !*released {
                            released = sync::wait(&gate.1, released);
                        }
                    }
                }
            });
            (tx, handle)
        });
        let sup = Supervisor::new(1, SuperviseOptions::default(), factory);
        sup.send(0, 0);
        std::thread::sleep(Duration::from_millis(10));
        assert!(matches!(
            sup.mark_down(0, 0, DownCause::Hang),
            Down::Pending
        ));
        // Hang restarts need no backoff.
        assert_eq!(sup.poll_restarts().len(), 1);
        assert_eq!(sup.stalled_workers(), 1, "the old thread is detached");
        sup.close();
        // The stalled thread does not finish by the deadline: lost.
        assert_eq!(sup.join_all(Instant::now() + Duration::from_millis(50)), 1);
        // Release it so the test process exits cleanly.
        *sync::lock(&gate.0) = true;
        gate.1.notify_all();
    }

    #[test]
    fn poison_registry_quarantines_after_threshold() {
        let reg = PoisonRegistry::new(3);
        assert!(!reg.is_quarantined(42));
        assert_eq!(reg.strike(42), (1, false));
        assert_eq!(reg.strike(42), (2, false));
        assert_eq!(reg.strike(42), (3, true));
        assert_eq!(reg.strike(42), (4, false), "crossing reports only once");
        assert!(reg.is_quarantined(42));
        assert!(!reg.is_quarantined(7));
        reg.strike(7);
        assert_eq!(reg.quarantined_count(), 1);
        let report = reg.report();
        assert_eq!(report.threshold, 3);
        assert_eq!(report.entries.len(), 2);
        assert_eq!(
            report.entries[0],
            PoisonEntry {
                fingerprint: 7,
                strikes: 1,
                quarantined: false,
            }
        );
        assert!(report.entries[1].quarantined);
    }

    #[test]
    fn poison_report_round_trips_through_json() {
        let reg = PoisonRegistry::new(2);
        reg.strike(1);
        reg.strike(1);
        reg.strike(99);
        let report = reg.report();
        let back: PoisonReport = serde::json::from_str(&serde::json::to_string(&report)).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn supervision_stats_round_trip_through_json() {
        let stats = SupervisionStats {
            panics_caught: 3,
            shard_restarts: 2,
            shards_retired: 1,
            crash_redispatches: 5,
            hung_attempts: 4,
            abandoned_jobs: 1,
            quarantined_programs: 1,
            stale_acks: 7,
            workers_lost: 1,
        };
        let back: SupervisionStats =
            serde::json::from_str(&serde::json::to_string(&stats)).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn watchdog_budget_scales_with_steps() {
        let wd = WatchdogOptions {
            enabled: true,
            base_ms: 10,
            per_step_us: 100,
            slack_pct: 200,
            poison_strikes: 3,
        };
        // (10ms + 100us*50) * 2 = 30ms.
        assert_eq!(wd.budget(50), Duration::from_millis(30));
        assert!(wd.budget(0) >= Duration::from_millis(20));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let options = SuperviseOptions {
            backoff_base_ms: 10,
            backoff_max_ms: 35,
            ..SuperviseOptions::default()
        };
        let b0 = options.first_backoff();
        let b1 = options.next_backoff(b0);
        let b2 = options.next_backoff(b1);
        assert_eq!(b0, Duration::from_millis(10));
        assert_eq!(b1, Duration::from_millis(20));
        assert_eq!(b2, Duration::from_millis(35), "capped");
    }
}
