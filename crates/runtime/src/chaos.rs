//! Seeded software-fault injection: the chaos harness.
//!
//! [`ChaosPlan`] is to *software* faults what
//! [`FaultPlan`](coruscant_mem::fault::FaultPlan) is to device faults: a
//! seed plus per-crossing-point rates that fully determine where worker
//! panics, stalls, and delays land. Every draw is keyed only on the
//! crossing point, the job id, and the dispatch attempt — never on wall
//! clock, thread identity, or arrival order — so a campaign is exactly
//! replayable: the same `(plan, workload)` produces the same set of
//! injected faults at any shard count, and a job's fate is a pure
//! function of the seed and its id.
//!
//! Crossing points ([`CrossingPoint`]) name the places the runtime and
//! server consult the plan:
//!
//! * `WorkerStart` — a worker picked a dispatch up; it may panic before
//!   executing, stall (sleep `stall_ms`, long enough for the watchdog to
//!   declare the attempt hung), or delay briefly.
//! * `WorkerReport` — execution finished but the results were not yet
//!   reported; a panic here loses the attempt *after* the work was done,
//!   the nastiest spot for exactly-once accounting.
//! * `SchedulerAdmit` — the scheduler admitted a job; a small delay
//!   shifts issue timing without killing anything.
//! * `RouterNotice` — the server's completion router handled a notice; a
//!   small delay widens the wait/expiry race window.
//!
//! Injected panics carry the [`ChaosPanic`] marker payload and are
//! silenced by [`install_quiet_hook`] so soak campaigns don't spray
//! backtraces; real panics still print normally.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A named place where the runtime consults the chaos plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrossingPoint {
    /// A worker dequeued a dispatch, before executing it.
    WorkerStart,
    /// A worker finished executing, before reporting results.
    WorkerReport,
    /// The scheduler admitted a job from the submission queue.
    SchedulerAdmit,
    /// The server's completion router handled a notice.
    RouterNotice,
}

impl CrossingPoint {
    /// A per-point salt so the same `(job, attempt)` draws independently
    /// at each crossing point.
    fn salt(self) -> u64 {
        match self {
            CrossingPoint::WorkerStart => 0x5747_0001,
            CrossingPoint::WorkerReport => 0x5747_0002,
            CrossingPoint::SchedulerAdmit => 0x5747_0003,
            CrossingPoint::RouterNotice => 0x5747_0004,
        }
    }
}

/// What the plan injects at one crossing of one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosAction {
    /// Nothing: proceed normally.
    None,
    /// Panic the current thread (workers only).
    Panic,
    /// Sleep for [`ChaosPlan::stall_ms`] — long enough to trip the
    /// watchdog — then proceed (the stale completion exercises the
    /// late-result paths).
    Stall,
    /// Sleep for [`ChaosPlan::delay_us`] — well under any watchdog
    /// budget — then proceed.
    Delay,
}

/// A seeded, replayable software-fault schedule.
///
/// Rates are per-mille (‰, 0..=1000) per crossing. At `WorkerStart` the
/// panic, stall, and delay ranges stack in that order; the report panic
/// applies at `WorkerReport`; the admit/router delays at their points.
/// All durations are integer milliseconds/microseconds so the plan
/// serializes with the same round-trip guarantees as `FaultPlan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed for the SplitMix64 draw stream.
    pub seed: u64,
    /// ‰ of started attempts that panic before executing.
    pub start_panic_permille: u16,
    /// ‰ of started attempts that stall for `stall_ms`.
    pub stall_permille: u16,
    /// ‰ of started attempts that are delayed by `delay_us`.
    pub delay_permille: u16,
    /// ‰ of executed attempts that panic before reporting.
    pub report_panic_permille: u16,
    /// ‰ of admitted jobs delayed `delay_us` inside the scheduler.
    pub admit_delay_permille: u16,
    /// ‰ of router notices delayed `delay_us` inside the server.
    pub router_delay_permille: u16,
    /// Stall duration in milliseconds. Configure it far above the
    /// watchdog budget so a stalled attempt is deterministically hung.
    pub stall_ms: u64,
    /// Delay duration in microseconds. Keep it far below the watchdog
    /// budget so a delayed attempt deterministically completes.
    pub delay_us: u64,
}

impl ChaosPlan {
    /// A quiet plan: nothing is ever injected.
    pub fn quiet(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            start_panic_permille: 0,
            stall_permille: 0,
            delay_permille: 0,
            report_panic_permille: 0,
            admit_delay_permille: 0,
            router_delay_permille: 0,
            stall_ms: 0,
            delay_us: 0,
        }
    }

    /// A panic-heavy plan (‰ panics at start and report).
    pub fn panics(seed: u64, permille: u16) -> ChaosPlan {
        ChaosPlan {
            start_panic_permille: permille,
            report_panic_permille: permille / 2,
            ..ChaosPlan::quiet(seed)
        }
    }

    /// A stall plan: ‰ of attempts sleep `stall_ms` (pair with a
    /// watchdog whose budget is far below the stall).
    pub fn stalls(seed: u64, permille: u16, stall_ms: u64) -> ChaosPlan {
        ChaosPlan {
            stall_permille: permille,
            stall_ms,
            ..ChaosPlan::quiet(seed)
        }
    }

    /// A mixed plan: panics, stalls, and delays together.
    pub fn mixed(seed: u64, permille: u16, stall_ms: u64, delay_us: u64) -> ChaosPlan {
        ChaosPlan {
            start_panic_permille: permille,
            stall_permille: permille,
            delay_permille: permille,
            report_panic_permille: permille / 2,
            admit_delay_permille: permille,
            router_delay_permille: permille,
            stall_ms,
            delay_us,
            ..ChaosPlan::quiet(seed)
        }
    }

    /// One draw in `0..1000`, keyed only on `(point, job, attempt)`.
    fn draw(&self, point: CrossingPoint, job: u64, attempt: u32) -> u64 {
        // SplitMix64 finalizer over the keyed state: stateless, so draws
        // are independent of evaluation order and thread interleaving.
        let mut z = self
            .seed
            .wrapping_add(point.salt().wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(job.wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add((attempt as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % 1000
    }

    /// The action injected at `point` for attempt `attempt` of `job`.
    pub fn decide(&self, point: CrossingPoint, job: u64, attempt: u32) -> ChaosAction {
        let roll = self.draw(point, job, attempt);
        let pick = |bands: &[(u16, ChaosAction)]| {
            let mut edge = 0u64;
            for (permille, action) in bands {
                edge += u64::from(*permille);
                if roll < edge {
                    return *action;
                }
            }
            ChaosAction::None
        };
        match point {
            CrossingPoint::WorkerStart => pick(&[
                (self.start_panic_permille, ChaosAction::Panic),
                (self.stall_permille, ChaosAction::Stall),
                (self.delay_permille, ChaosAction::Delay),
            ]),
            CrossingPoint::WorkerReport => {
                pick(&[(self.report_panic_permille, ChaosAction::Panic)])
            }
            CrossingPoint::SchedulerAdmit => {
                pick(&[(self.admit_delay_permille, ChaosAction::Delay)])
            }
            CrossingPoint::RouterNotice => {
                pick(&[(self.router_delay_permille, ChaosAction::Delay)])
            }
        }
    }

    /// Whether any rate is nonzero.
    pub fn is_active(&self) -> bool {
        self.start_panic_permille > 0
            || self.stall_permille > 0
            || self.delay_permille > 0
            || self.report_panic_permille > 0
            || self.admit_delay_permille > 0
            || self.router_delay_permille > 0
    }
}

/// The marker payload injected panics carry, so the quiet panic hook can
/// tell chaos apart from a real bug.
#[derive(Debug)]
pub struct ChaosPanic;

/// Panics the current thread with the [`ChaosPanic`] marker.
pub(crate) fn chaos_panic() -> ! {
    std::panic::panic_any(ChaosPanic)
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// default backtrace spew for [`ChaosPanic`] payloads and chains to the
/// previous hook for everything else. Safe to call from every session.
pub fn install_quiet_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_replayable_and_keyed_per_point() {
        let plan = ChaosPlan::mixed(42, 200, 50, 10);
        for job in 0..200u64 {
            for attempt in 0..3u32 {
                for point in [
                    CrossingPoint::WorkerStart,
                    CrossingPoint::WorkerReport,
                    CrossingPoint::SchedulerAdmit,
                    CrossingPoint::RouterNotice,
                ] {
                    assert_eq!(
                        plan.decide(point, job, attempt),
                        plan.decide(point, job, attempt)
                    );
                }
            }
        }
        // Different seeds disagree somewhere.
        let other = ChaosPlan { seed: 43, ..plan };
        assert!(
            (0..500u64).any(|j| plan.decide(CrossingPoint::WorkerStart, j, 0)
                != other.decide(CrossingPoint::WorkerStart, j, 0))
        );
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = ChaosPlan::panics(7, 250);
        let panics = (0..4000u64)
            .filter(|&j| plan.decide(CrossingPoint::WorkerStart, j, 0) == ChaosAction::Panic)
            .count();
        // 25% ± a generous tolerance over 4000 draws.
        assert!((700..=1300).contains(&panics), "panics = {panics}");
        // Non-worker points never panic.
        assert!((0..4000u64)
            .all(|j| plan.decide(CrossingPoint::SchedulerAdmit, j, 0) != ChaosAction::Panic));
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = ChaosPlan::quiet(99);
        assert!(!plan.is_active());
        for j in 0..100 {
            assert_eq!(
                plan.decide(CrossingPoint::WorkerStart, j, 0),
                ChaosAction::None
            );
        }
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = ChaosPlan::mixed(0xC0FFEE, 125, 30_000, 200);
        let json = serde::json::to_string(&plan);
        let back: ChaosPlan = serde::json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn attempts_draw_independently() {
        // A job that panics at attempt 0 usually does not at attempt 1:
        // retried attempts get fresh draws.
        let plan = ChaosPlan::panics(3, 500);
        let differs = (0..200u64).any(|j| {
            plan.decide(CrossingPoint::WorkerStart, j, 0)
                != plan.decide(CrossingPoint::WorkerStart, j, 1)
        });
        assert!(differs);
    }
}
