//! Jobs: programs plus placement, and what the runtime reports back.

use coruscant_core::program::PimProgram;
use coruscant_mem::DbcLocation;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Where a job's program should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// The scheduler picks the next PIM unit in circular-bank order
    /// (paper §V-C high-throughput dispatch) — or a single fixed unit
    /// when the runtime runs in single-bank mode.
    #[default]
    Auto,
    /// Run on the `idx`-th PIM unit (bank-major indexing, see
    /// [`MemoryController::pim_unit`](coruscant_mem::MemoryController::pim_unit)).
    Unit(usize),
    /// Run on an explicit DBC.
    Fixed(DbcLocation),
    /// Run on the PIM unit currently hosting the resident pin with this
    /// id (see [`Runtime::pin_resident`](crate::Runtime::pin_resident)).
    /// Unlike the other placements the job's program is *not* retargeted
    /// onto a single DBC: its addresses are relocated tile-relative
    /// (DBC index and row preserved) so it can copy pinned weights out
    /// of the tile's storage DBCs. If quarantine moves the residency,
    /// queued and re-dispatched jobs follow it to the new unit.
    Resident(u64),
}

/// One unit of work: a program to run at some placement.
#[derive(Debug, Clone, PartialEq)]
pub struct PimJob {
    /// Runtime-assigned id, returned by `submit`.
    pub id: u64,
    /// The program (addresses are relative to its compiled placement; the
    /// scheduler retargets them onto the chosen unit). Shared behind an
    /// [`Arc`] so retries, NMR replicas, and in-flight records reference
    /// one allocation instead of cloning the step stream.
    pub program: Arc<PimProgram>,
    /// Requested placement.
    pub placement: Placement,
    /// Absolute queueing deadline. Under the EDF issue policy it drives
    /// the within-bank issue order; in every engine a job found past
    /// its deadline at issue time is dropped as expired instead of
    /// being dispatched. `None` means no deadline (sorts last under
    /// EDF, never expires).
    pub deadline: Option<Instant>,
}

/// The completion record of one job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobOutcome {
    /// The job's id.
    pub job_id: u64,
    /// Issue sequence number the scheduler assigned (circular-bank order).
    pub seq: u64,
    /// The PIM unit the job ran on.
    pub unit: DbcLocation,
    /// The bank that unit occupies.
    pub bank: usize,
    /// Labeled readouts, in program order.
    pub outputs: Vec<(String, Vec<u64>)>,
    /// Internal PIM latency of the job's instructions, device cycles.
    pub device_cycles: u64,
    /// Memory cycles the job waited for its bank (and bus) before its
    /// first instruction started.
    pub wait_cycles: u64,
    /// Modeled completion time, memory cycles — as accounted by the
    /// runtime's [`MemoryController`](coruscant_mem::MemoryController).
    pub completion: u64,
    /// Dispatch attempt this outcome came from (0 = first placement;
    /// higher values mean the job was re-dispatched after failing
    /// verification on another bank).
    pub attempt: u32,
    /// Executions of the program this attempt ran (1 unprotected, 2 + 2
    /// per retry under re-execute-and-compare, N under NMR).
    pub replicas: u32,
    /// Faults the attempt's protection detected (mismatching compare
    /// pairs, or voted readouts whose replicas disagreed).
    pub faults_detected: u64,
    /// Extra compare-pairs re-execute-and-compare ran after mismatches.
    pub retries: u32,
    /// Readouts where the NMR majority overruled at least one replica.
    pub votes_overturned: u64,
    /// Whether the outputs were verified by the protection policy
    /// (compare pairs agreed, or an NMR vote completed). Always `false`
    /// when protection is off.
    pub verified: bool,
    /// How many jobs shared the batched execution this outcome came from
    /// (1 = the job ran alone; ≥2 = same-bank batch fusion spliced it
    /// with co-located jobs).
    pub batch: u32,
}
