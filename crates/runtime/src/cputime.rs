//! Per-thread CPU-time measurement for the scheduler-occupancy profile.
//!
//! Busy-time accounting must survive oversubscribed hosts: when more
//! domain threads run than cores exist, wall-clock spans include time
//! the thread spent *descheduled*, which would inflate every thread's
//! "busy" figure toward the session wall and flatten any scaling
//! metric built on it. Thread CPU time measures work actually done,
//! independent of preemption, so `jobs / busiest-thread-busy` reflects
//! the serial bottleneck on any core count.
//!
//! On Linux this reads `CLOCK_THREAD_CPUTIME_ID` via `clock_gettime`,
//! which the C runtime std already links provides — no new dependency.
//! Elsewhere it falls back to a process-wide monotonic clock (the
//! profile stays populated, merely preemption-sensitive).

#[cfg(target_os = "linux")]
// The crate denies `unsafe_code`; this module is the one sanctioned
// exception — a single FFI call into the already-linked C runtime.
#[allow(unsafe_code)]
mod imp {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    /// CPU time consumed by the calling thread, in microseconds.
    pub fn thread_micros() -> u64 {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, writable timespec and the clock id is
        // a compile-time constant the kernel supports; on failure the
        // struct is left zeroed and we report 0.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            return 0;
        }
        (ts.tv_sec as u64) * 1_000_000 + (ts.tv_nsec as u64) / 1_000
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Fallback: monotonic wall time since first use. Preemption-
    /// sensitive, but keeps the profile populated off-Linux.
    pub fn thread_micros() -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
    }
}

pub use imp::thread_micros;

/// A running busy-time meter: stamps thread CPU time and accumulates
/// deltas into named stage counters.
#[derive(Debug, Clone, Copy)]
pub struct StageClock {
    last: u64,
}

impl StageClock {
    /// Starts a clock at the calling thread's current CPU time.
    pub fn start() -> StageClock {
        StageClock {
            last: thread_micros(),
        }
    }

    /// Microseconds of thread CPU time since the previous lap (or
    /// start), and re-stamps.
    pub fn lap(&mut self) -> u64 {
        let now = thread_micros();
        let delta = now.saturating_sub(self.last);
        self.last = now;
        delta
    }

    /// Re-stamps without charging the elapsed time anywhere (used to
    /// skip waits that should not count as busy).
    pub fn reset(&mut self) {
        self.last = thread_micros();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_time_advances_under_work() {
        let start = thread_micros();
        // Spin enough to consume measurable CPU (not a sleep: sleeps
        // must NOT advance thread CPU time).
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i).rotate_left(7);
        }
        assert!(acc != 1, "keep the loop alive");
        let end = thread_micros();
        assert!(end >= start);
        assert!(end > 0, "clock readable");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sleeping_consumes_no_thread_cpu_time() {
        let mut clock = StageClock::start();
        std::thread::sleep(std::time::Duration::from_millis(30));
        let busy = clock.lap();
        // A 30 ms sleep must charge far less than 30 ms of CPU.
        assert!(busy < 20_000, "sleep charged {busy} us of CPU time");
    }
}
