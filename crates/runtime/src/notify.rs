//! Live per-job completion notices.
//!
//! The runtime's [`RuntimeReport`](crate::RuntimeReport) is batch-shaped:
//! every outcome materializes at [`Runtime::finish`](crate::Runtime).
//! A serving frontend needs to learn about completions *while the
//! session is live* — as banks retire jobs — so it can resolve client
//! futures and stream results. Configuring
//! [`RuntimeOptions::notify`](crate::RuntimeOptions) gives it that feed:
//! workers send one [`JobNotice::Attempt`] per member job of every
//! dispatch they execute (outputs demuxed exactly as `finish` demuxes
//! them), and the scheduler sends one [`JobNotice::Cancelled`] for every
//! job it drops from its queues after a
//! [`Runtime::cancel`](crate::Runtime::cancel).
//!
//! Attempt notices are *per dispatch attempt*: under an active
//! protection policy an unverified attempt may be superseded by a
//! re-dispatch with a higher `attempt` number, and only the latest
//! attempt matches what the final report records. A consumer that wants
//! final results should treat a notice as settled when `verified` is
//! true, when the policy is inactive, or when no further re-dispatch can
//! follow (see [`JobNotice::is_final`]).

use coruscant_core::PimError;

/// A live notice about one job, sent on the
/// [`RuntimeOptions::notify`](crate::RuntimeOptions) channel.
#[derive(Debug, Clone)]
pub enum JobNotice {
    /// One dispatch attempt of the job finished executing on a worker.
    Attempt {
        /// The job's id (as returned by `submit`).
        job_id: u64,
        /// Dispatch attempt (0 = first placement).
        attempt: u32,
        /// Bank the attempt ran on.
        bank: usize,
        /// Jobs sharing the batched dispatch this attempt came from.
        batch: u32,
        /// The job's labeled readouts, in program order (demuxed from
        /// the batched output stream exactly as the final report is).
        outputs: Vec<(String, Vec<u64>)>,
        /// The dispatch's execution error, if it hit one.
        error: Option<PimError>,
        /// Whether the attempt's outputs were verified by the protection
        /// policy (always `false` when protection is off).
        verified: bool,
        /// Whether the runtime's protection policy is active — together
        /// with `verified` and `attempt` this decides finality.
        protection_active: bool,
        /// The policy's re-dispatch bound (attempts beyond it are final
        /// even when unverified).
        max_redispatch: u32,
    },
    /// The job was cancelled while still queued: it was dropped before
    /// issue and will produce no outcome.
    Cancelled {
        /// The job's id.
        job_id: u64,
    },
    /// The job's queueing deadline had already passed when the
    /// scheduler went to issue it: it was dropped at issue time and
    /// will produce no outcome.
    Expired {
        /// The job's id.
        job_id: u64,
    },
    /// The supervision layer gave the job up: its attempts exhausted the
    /// crash/hang retry budget (or the drain deadline arrived first). It
    /// will produce no outcome.
    Abandoned {
        /// The job's id.
        job_id: u64,
        /// `true` when the final failure was a hung attempt, `false`
        /// when it was a worker crash.
        hung: bool,
    },
    /// Sentinel: the session fully drained; no further notice can
    /// follow. A consumer loop may exit without waiting for every sender
    /// clone to drop (a stalled, detached worker can hold one
    /// indefinitely).
    Drained,
    /// Several notices delivered as one channel send. The parallel
    /// scheduling engine coalesces every member notice of a batched
    /// dispatch into one `Batch` so the notify channel is crossed once
    /// per dispatch, not once per member. Consumers must flatten:
    /// treat each inner notice exactly as if it had arrived alone
    /// (inner batches never nest).
    Batch(Vec<JobNotice>),
}

impl JobNotice {
    /// The job this notice concerns ([`JobNotice::Drained`] concerns no
    /// job and reports `u64::MAX`).
    pub fn job_id(&self) -> u64 {
        match self {
            JobNotice::Attempt { job_id, .. }
            | JobNotice::Cancelled { job_id }
            | JobNotice::Expired { job_id }
            | JobNotice::Abandoned { job_id, .. } => *job_id,
            JobNotice::Drained => u64::MAX,
            // A batch concerns several jobs; report the first member's.
            JobNotice::Batch(inner) => inner.first().map_or(u64::MAX, JobNotice::job_id),
        }
    }

    /// Whether no later attempt of the same job can follow this notice:
    /// cancellations and abandonments are always final; an attempt is
    /// final when it verified, when no protection policy (and therefore
    /// no re-dispatch) is active, or when the re-dispatch budget is
    /// exhausted.
    pub fn is_final(&self) -> bool {
        match self {
            JobNotice::Cancelled { .. }
            | JobNotice::Expired { .. }
            | JobNotice::Abandoned { .. }
            | JobNotice::Drained => true,
            JobNotice::Attempt {
                verified,
                protection_active,
                attempt,
                max_redispatch,
                ..
            } => *verified || !protection_active || attempt >= max_redispatch,
            // Finality is per inner notice; consumers flatten first.
            JobNotice::Batch(inner) => inner.iter().any(JobNotice::is_final),
        }
    }
}
