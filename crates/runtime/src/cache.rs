//! The compiled-program cache: a sharded LRU keyed by a structural,
//! placement-normalized program hash.
//!
//! Serving campaigns submit the same query program thousands of times;
//! without a cache every submission pays the full pass pipeline (and the
//! differential verifier, when enabled). The cache keys each submission
//! by a structural hash of its steps. Programs confined to a *single*
//! DBC — every workload chunk the front ends emit — are normalized to a
//! canonical location before hashing, so the same logical program lands
//! on one entry regardless of where the client compiled it; on a hit the
//! cached optimized artifact is retargeted back to the submission's home
//! DBC, so distinct placements can never observe each other's addresses.
//! Programs spanning multiple DBCs are keyed with their concrete
//! locations untouched (no normalization is sound there).
//!
//! A full structural equality check against the stored original guards
//! every hit, so a 64-bit hash collision degrades to a miss, never to a
//! wrong artifact. Within each shard, eviction is LRU by a per-shard
//! access stamp.

use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, RowAddress};
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Compiled-program cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOptions {
    /// Master switch; `false` compiles every submission.
    pub enabled: bool,
    /// Total cached programs across all shards before LRU eviction.
    pub capacity: usize,
    /// Lock shards (submissions hash-partition across them).
    pub shards: usize,
}

impl Default for CacheOptions {
    fn default() -> CacheOptions {
        CacheOptions {
            enabled: true,
            capacity: 256,
            shards: 8,
        }
    }
}

/// Counters of a session's cache behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Submissions served from the cache (pass pipeline skipped).
    pub hits: u64,
    /// Submissions that compiled and populated the cache.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Estimated device cycles saved by cached optimizations (the stored
    /// pipeline savings, re-credited on every hit).
    pub est_cycles_saved: u64,
}

/// What a cache hit hands back to the submit path.
pub(crate) struct CachedCompile {
    /// The optimized program, retargeted to the submission's home DBC.
    pub program: Arc<PimProgram>,
    /// Instructions the cached pipeline run removed.
    pub instructions_saved: u64,
    /// Estimated device cycles the cached pipeline run removed.
    pub cycles_saved: u64,
}

struct Entry {
    /// The canonicalized original, compared in full on every hit so hash
    /// collisions degrade to misses.
    original: PimProgram,
    optimized: Arc<PimProgram>,
    instructions_saved: u64,
    cycles_saved: u64,
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    stamp: u64,
}

/// The sharded LRU cache. See the module docs for the keying rules.
pub(crate) struct ProgramCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    est_cycles_saved: AtomicU64,
}

/// The canonical home every single-DBC program is normalized to.
const CANON: DbcLocation = DbcLocation {
    bank: 0,
    subarray: 0,
    tile: 0,
    dbc: 0,
};

/// The single DBC a program is confined to, if any (`None` for empty or
/// multi-DBC programs).
fn single_location(program: &PimProgram) -> Option<DbcLocation> {
    let mut steps = program.steps.iter();
    let first = steps.next()?.target();
    steps.all(|s| s.target() == first).then_some(first)
}

fn hash_addr(addr: &RowAddress, replace: Option<DbcLocation>, h: &mut DefaultHasher) {
    replace.unwrap_or(addr.location).hash(h);
    addr.row.hash(h);
}

/// Structural hash of a program, with every DBC location optionally
/// replaced by a canonical one.
fn structural_hash(program: &PimProgram, replace: Option<DbcLocation>) -> u64 {
    let mut h = DefaultHasher::new();
    for step in &program.steps {
        match step {
            Step::Load { addr, values, lane } => {
                0u8.hash(&mut h);
                hash_addr(addr, replace, &mut h);
                values.hash(&mut h);
                lane.hash(&mut h);
            }
            Step::Exec(i) => {
                1u8.hash(&mut h);
                i.opcode.hash(&mut h);
                hash_addr(&i.src, replace, &mut h);
                i.operands.hash(&mut h);
                i.blocksize.hash(&mut h);
                match &i.dst {
                    Some(d) => {
                        1u8.hash(&mut h);
                        hash_addr(d, replace, &mut h);
                    }
                    None => 0u8.hash(&mut h),
                }
            }
            Step::Readout { label, addr, lane } => {
                2u8.hash(&mut h);
                label.hash(&mut h);
                hash_addr(addr, replace, &mut h);
                lane.hash(&mut h);
            }
        }
    }
    h.finish()
}

/// The poison registry's program fingerprint: the same structural,
/// placement-normalized hash the cache keys on, so one pathological
/// program maps to one quarantine entry wherever it is placed.
pub(crate) fn fingerprint(program: &PimProgram) -> u64 {
    let home = single_location(program);
    structural_hash(program, home.map(|_| CANON))
}

impl ProgramCache {
    pub fn new(options: &CacheOptions) -> ProgramCache {
        let shards = options.shards.max(1);
        ProgramCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: options.capacity.div_ceil(shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            est_cycles_saved: AtomicU64::new(0),
        }
    }

    /// The home DBC (for single-DBC programs) and canonical key of a
    /// submission.
    fn key_of(&self, program: &PimProgram) -> (Option<DbcLocation>, u64) {
        let home = single_location(program);
        let key = structural_hash(program, home.map(|_| CANON));
        (home, key)
    }

    fn shard_of(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) % self.shards.len()]
    }

    /// Looks a submission up; on a hit, returns the cached optimized
    /// program retargeted to the submission's home DBC. Counts neither
    /// hits nor misses for the caller — it does so itself.
    pub fn get(&self, program: &PimProgram) -> Option<CachedCompile> {
        let (home, key) = self.key_of(program);
        let mut shard = crate::sync::lock(self.shard_of(key));
        shard.stamp += 1;
        let stamp = shard.stamp;
        let hit = match shard.map.get_mut(&key) {
            Some(entry) => {
                // Structural equality against the canonicalized original:
                // a colliding key serves nothing.
                let canonical_matches = match home {
                    Some(loc) if loc != CANON => entry.original == program.retarget(CANON),
                    _ => entry.original == *program,
                };
                if !canonical_matches {
                    None
                } else {
                    entry.stamp = stamp;
                    let out = match home {
                        Some(loc) if loc != CANON => Arc::new(entry.optimized.retarget(loc)),
                        _ => Arc::clone(&entry.optimized),
                    };
                    Some(CachedCompile {
                        program: out,
                        instructions_saved: entry.instructions_saved,
                        cycles_saved: entry.cycles_saved,
                    })
                }
            }
            None => None,
        };
        drop(shard);
        match &hit {
            Some(cached) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.est_cycles_saved
                    .fetch_add(cached.cycles_saved, Ordering::Relaxed);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        hit
    }

    /// Stores a freshly compiled artifact (canonicalized), evicting the
    /// least-recently-used entry of the shard when over capacity.
    pub fn insert(
        &self,
        program: &PimProgram,
        optimized: &Arc<PimProgram>,
        instructions_saved: u64,
        cycles_saved: u64,
    ) {
        let (home, key) = self.key_of(program);
        let (original, optimized) = match home {
            Some(loc) if loc != CANON => {
                (program.retarget(CANON), Arc::new(optimized.retarget(CANON)))
            }
            _ => (program.clone(), Arc::clone(optimized)),
        };
        let mut shard = crate::sync::lock(self.shard_of(key));
        shard.stamp += 1;
        let stamp = shard.stamp;
        shard.map.insert(
            key,
            Entry {
                original,
                optimized,
                instructions_saved,
                cycles_saved,
                stamp,
            },
        );
        if shard.map.len() > self.per_shard_capacity {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot of the session counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            est_cycles_saved: self.est_cycles_saved.load(Ordering::Relaxed),
        }
    }
}

/// The batched-splice cache: maps an *ordered sequence* of member
/// programs to their spliced-and-optimized batch program.
///
/// Serving campaigns issue the same batch shapes over and over (the same
/// query programs landing on the same-depth FIFOs), and without this
/// cache every batched dispatch re-runs splice + the full cross-boundary
/// pass pipeline. Keying follows the same rules as [`ProgramCache`]:
/// members (always single-DBC after scheduler retargeting) are
/// normalized to [`CANON`] before hashing, every hit is guarded by full
/// structural equality against the stored canonical members, and the
/// cached artifact is retargeted to the dispatch's home DBC on the way
/// out. Unlike [`ProgramCache`] it is owned by the scheduler thread, so
/// it needs no locking.
pub(crate) struct BatchCache {
    map: HashMap<u64, BatchEntry>,
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

struct BatchEntry {
    /// Canonicalized member programs, in splice order; compared in full
    /// on every hit so hash collisions degrade to misses.
    members: Vec<PimProgram>,
    /// The spliced + optimized batch, canonicalized.
    optimized: Arc<PimProgram>,
    stamp: u64,
}

/// The single DBC every member of the batch is confined to, if any.
/// Scheduler-retargeted jobs always satisfy this; anything else is not
/// safely normalizable and is simply not cached.
fn batch_home(programs: &[&PimProgram]) -> Option<DbcLocation> {
    let first = single_location(programs.first()?)?;
    programs
        .iter()
        .skip(1)
        .all(|p| single_location(p) == Some(first))
        .then_some(first)
}

fn batch_key(programs: &[&PimProgram]) -> u64 {
    let mut h = DefaultHasher::new();
    programs.len().hash(&mut h);
    for program in programs {
        structural_hash(program, Some(CANON)).hash(&mut h);
    }
    h.finish()
}

impl BatchCache {
    pub fn new(capacity: usize) -> BatchCache {
        BatchCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks an ordered member sequence up; on a hit, returns the cached
    /// optimized batch retargeted to the members' home DBC.
    pub fn get(&mut self, members: &[&PimProgram]) -> Option<Arc<PimProgram>> {
        let Some(home) = batch_home(members) else {
            self.misses += 1;
            return None;
        };
        let key = batch_key(members);
        self.stamp += 1;
        let stamp = self.stamp;
        let hit = match self.map.get_mut(&key) {
            Some(entry) if entry_matches(entry, members, home) => {
                entry.stamp = stamp;
                Some(match home {
                    loc if loc != CANON => Arc::new(entry.optimized.retarget(loc)),
                    _ => Arc::clone(&entry.optimized),
                })
            }
            _ => None,
        };
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Stores a freshly spliced+optimized batch under its member key,
    /// unless the key is already occupied (the hit path, or a colliding
    /// shape — either way the existing entry stays). Evicts LRU over
    /// capacity.
    pub fn insert_if_missed(&mut self, members: &[&PimProgram], optimized: &Arc<PimProgram>) {
        let Some(home) = batch_home(members) else {
            return;
        };
        let key = batch_key(members);
        if self.map.contains_key(&key) {
            return;
        }
        self.stamp += 1;
        let canonical = |p: &PimProgram| {
            if home == CANON {
                p.clone()
            } else {
                p.retarget(CANON)
            }
        };
        self.map.insert(
            key,
            BatchEntry {
                members: members.iter().map(|p| canonical(p)).collect(),
                optimized: Arc::new(canonical(optimized)),
                stamp: self.stamp,
            },
        );
        if self.map.len() > self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
    }

    /// `(hits, misses)` so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

fn entry_matches(entry: &BatchEntry, members: &[&PimProgram], home: DbcLocation) -> bool {
    entry.members.len() == members.len()
        && entry.members.iter().zip(members).all(|(stored, p)| {
            if home == CANON {
                stored == *p
            } else {
                *stored == p.retarget(CANON)
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};

    fn program_at(loc: DbcLocation, value: u64) -> PimProgram {
        PimProgram {
            steps: vec![
                Step::Load {
                    addr: RowAddress::new(loc, 4),
                    values: vec![value],
                    lane: 64,
                },
                Step::Readout {
                    label: "x".into(),
                    addr: RowAddress::new(loc, 4),
                    lane: 64,
                },
            ],
        }
    }

    #[test]
    fn single_dbc_programs_share_one_entry_across_locations() {
        let cache = ProgramCache::new(&CacheOptions::default());
        let a = program_at(DbcLocation::new(0, 0, 0, 0), 7);
        let b = program_at(DbcLocation::new(1, 0, 0, 0), 7);
        assert!(cache.get(&a).is_none());
        cache.insert(&a, &Arc::new(a.clone()), 0, 5);
        // The same logical program at another DBC hits, retargeted home.
        let hit = cache.get(&b).expect("normalized hit");
        assert_eq!(*hit.program, b);
        assert_eq!(hit.cycles_saved, 5);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.est_cycles_saved, 5);
    }

    #[test]
    fn different_values_are_different_entries() {
        let cache = ProgramCache::new(&CacheOptions::default());
        let a = program_at(CANON, 7);
        cache.insert(&a, &Arc::new(a.clone()), 0, 0);
        assert!(cache.get(&program_at(CANON, 8)).is_none());
    }

    #[test]
    fn multi_dbc_programs_key_on_concrete_locations() {
        let l0 = DbcLocation::new(0, 0, 0, 0);
        let l1 = DbcLocation::new(1, 0, 0, 0);
        let split = |first: DbcLocation, second: DbcLocation| PimProgram {
            steps: vec![
                Step::Load {
                    addr: RowAddress::new(first, 4),
                    values: vec![1],
                    lane: 64,
                },
                Step::Readout {
                    label: "x".into(),
                    addr: RowAddress::new(second, 4),
                    lane: 64,
                },
            ],
        };
        let cache = ProgramCache::new(&CacheOptions::default());
        let a = split(l0, l1);
        cache.insert(&a, &Arc::new(a.clone()), 0, 0);
        assert!(cache.get(&a).is_some());
        // Swapped locations is a different program, not a hit.
        assert!(cache.get(&split(l1, l0)).is_none());
    }

    #[test]
    fn capacity_one_evicts_lru() {
        let options = CacheOptions {
            capacity: 1,
            shards: 1,
            ..CacheOptions::default()
        };
        let cache = ProgramCache::new(&options);
        let a = program_at(CANON, 1);
        let b = program_at(CANON, 2);
        cache.insert(&a, &Arc::new(a.clone()), 0, 0);
        cache.insert(&b, &Arc::new(b.clone()), 0, 0);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&a).is_none(), "a was evicted");
        assert!(cache.get(&b).is_some(), "b survives");
    }

    #[test]
    fn exec_structure_distinguishes_programs() {
        let and = |k: u8| PimProgram {
            steps: vec![Step::Exec(
                CpimInstr::new(
                    CpimOpcode::And,
                    RowAddress::new(CANON, 4),
                    k,
                    BlockSize::new(64).unwrap(),
                    Some(RowAddress::new(CANON, 20)),
                )
                .unwrap(),
            )],
        };
        let cache = ProgramCache::new(&CacheOptions::default());
        let two = and(2);
        cache.insert(&two, &Arc::new(two.clone()), 0, 0);
        assert!(cache.get(&and(3)).is_none());
        assert!(cache.get(&and(2)).is_some());
    }
}
