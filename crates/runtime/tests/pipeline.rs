//! Integration tests for dependency-aware pipelines: `submit_chain` /
//! `submit_after` gating, deferred binders, cascade cancellation,
//! resident weight pins, and re-materialization under quarantine.

use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, FaultPlan, MemoryConfig, RowAddress};
use coruscant_racetrack::FaultConfig;
use coruscant_runtime::{
    ChainJob, HealthPolicy, Placement, ProgramSource, ProtectionPolicy, Runtime, RuntimeOptions,
};

fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

/// A self-contained one-instruction job: load two rows, add, read back.
fn add_job(a: u64, b: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(loc, 4),
                values: vec![a; 8],
                lane: 8,
            },
            Step::Load {
                addr: RowAddress::new(loc, 5),
                values: vec![b; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(loc, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(loc, 20),
                lane: 8,
            },
        ],
    }
}

/// `submit_after` holds the successor until the predecessor retires, and
/// the pipeline counters record the deferral.
#[test]
fn submit_after_gates_on_predecessor() {
    let rt = Runtime::new(eight_bank_config(), RuntimeOptions::default()).unwrap();
    let a = rt.submit(add_job(1, 2), Placement::Unit(0)).unwrap();
    let b = rt
        .submit_after(add_job(10, 20), Placement::Unit(1), &[a])
        .unwrap();
    let report = rt.finish().unwrap();
    assert_eq!(report.outcomes.len(), 2);
    let out_a = report.outcomes.iter().find(|o| o.job_id == a).unwrap();
    let out_b = report.outcomes.iter().find(|o| o.job_id == b).unwrap();
    assert_eq!(out_a.outputs[0].1, vec![3; 8]);
    assert_eq!(out_b.outputs[0].1, vec![30; 8]);
    assert!(out_b.seq > out_a.seq, "gated job issues strictly later");
    assert_eq!(report.stats.pipeline.deferred_jobs, 1);
    assert_eq!(report.stats.pipeline.released_jobs, 1);
    assert_eq!(report.stats.pipeline.cascade_cancelled, 0);
}

/// A deferred chain member's binder receives its data dependency's
/// outputs and builds the follow-up program from them.
#[test]
fn chain_binder_flows_outputs_between_stages() {
    let rt = Runtime::new(eight_bank_config(), RuntimeOptions::default()).unwrap();
    let ids = rt
        .submit_chain(vec![
            ChainJob {
                source: ProgramSource::Ready(add_job(3, 4)),
                placement: Placement::Unit(0),
                after: vec![],
            },
            ChainJob {
                source: ProgramSource::Deferred {
                    deps: vec![0],
                    build: Box::new(|deps| {
                        let sum = deps[0][0].1[0]; // 3 + 4 = 7
                        Ok(add_job(sum, 5))
                    }),
                },
                placement: Placement::Unit(1),
                after: vec![],
            },
        ])
        .unwrap();
    let report = rt.finish().unwrap();
    assert_eq!(report.outcomes.len(), 2);
    let out1 = report.outcomes.iter().find(|o| o.job_id == ids[1]).unwrap();
    assert_eq!(out1.outputs[0].1, vec![12; 8], "binder saw 7, added 5");
    assert_eq!(report.stats.pipeline.deferred_jobs, 1);
    assert_eq!(report.stats.pipeline.released_jobs, 1);
}

/// Forward or self references in a chain are rejected at submission.
#[test]
fn chain_rejects_forward_dependencies() {
    let rt = Runtime::new(eight_bank_config(), RuntimeOptions::default()).unwrap();
    let err = rt.submit_chain(vec![ChainJob {
        source: ProgramSource::Ready(add_job(1, 1)),
        placement: Placement::Auto,
        after: vec![0],
    }]);
    assert!(err.is_err(), "a member cannot gate on itself");
    rt.finish().unwrap();
}

/// Cancelling a chain's head drops every transitive dependent: they
/// never run, report as cancelled, and count as cascades (not as user
/// cancellations).
#[test]
fn cancelled_predecessor_cascades_through_the_chain() {
    let options = RuntimeOptions {
        start_paused: true,
        ..RuntimeOptions::default()
    };
    let rt = Runtime::new(eight_bank_config(), options).unwrap();
    let ids = rt
        .submit_chain(vec![
            ChainJob {
                source: ProgramSource::Ready(add_job(1, 1)),
                placement: Placement::Unit(0),
                after: vec![],
            },
            ChainJob {
                source: ProgramSource::Ready(add_job(2, 2)),
                placement: Placement::Unit(1),
                after: vec![0],
            },
            ChainJob {
                source: ProgramSource::Ready(add_job(3, 3)),
                placement: Placement::Unit(2),
                after: vec![1],
            },
        ])
        .unwrap();
    rt.cancel(ids[0]);
    rt.resume();
    let report = rt.finish().unwrap();
    assert!(report.outcomes.is_empty(), "nothing ran");
    assert_eq!(report.stats.cancelled, 1, "only the head was cancelled");
    assert_eq!(report.stats.pipeline.cascade_cancelled, 2);
}

/// Pinned weights live in a tile's storage DBC; a `Placement::Resident`
/// job is relocated tile-relative so it can copy them into the PIM DBC
/// and compute against them.
#[test]
fn resident_pin_serves_jobs_on_its_unit() {
    let config = eight_bank_config();
    let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();

    let storage = DbcLocation::new(0, 0, 0, 1);
    let pim = DbcLocation::new(0, 0, 0, 0);
    // The pin loads the "weights" into the storage DBC and echoes them
    // (the readout defeats dead-store elimination and lets callers audit
    // the pinned bytes).
    let pin_program = PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(storage, 5),
                values: vec![11; 8],
                lane: 8,
            },
            Step::Readout {
                label: "pinned".into(),
                addr: RowAddress::new(storage, 5),
                lane: 8,
            },
        ],
    };
    let pin = rt.pin_resident(pin_program, 3).unwrap();

    // The consumer copies the resident row into the PIM DBC and adds a
    // per-request operand to it.
    let consumer = PimProgram {
        steps: vec![
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Copy,
                    RowAddress::new(storage, 5),
                    1,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(pim, 4)),
                )
                .unwrap(),
            ),
            Step::Load {
                addr: RowAddress::new(pim, 5),
                values: vec![7; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(pim, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(pim, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(pim, 20),
                lane: 8,
            },
        ],
    };
    let job = rt.submit(consumer, Placement::Resident(pin.res)).unwrap();

    let report = rt.finish().unwrap();
    let pin_out = report
        .outcomes
        .iter()
        .find(|o| o.job_id == pin.job)
        .unwrap();
    let job_out = report.outcomes.iter().find(|o| o.job_id == job).unwrap();
    assert_eq!(pin_out.bank, 3, "unit 3 is bank-major bank 3");
    assert_eq!(job_out.bank, 3, "the consumer followed the residency");
    assert_eq!(pin_out.outputs[0].1, vec![11; 8]);
    assert_eq!(job_out.outputs[0].1, vec![18; 8], "11 pinned + 7 request");
    assert_eq!(report.stats.pipeline.residents, 1);
    assert_eq!(report.stats.pipeline.rematerializations, 0);
}

/// A job naming an unknown residency is dropped (reported like a
/// cancellation), not misplaced.
#[test]
fn unknown_residency_is_dropped() {
    let rt = Runtime::new(eight_bank_config(), RuntimeOptions::default()).unwrap();
    let id = rt.submit(add_job(1, 1), Placement::Resident(42)).unwrap();
    let report = rt.finish().unwrap();
    assert!(report.outcomes.iter().all(|o| o.job_id != id));
    assert_eq!(report.stats.pipeline.cascade_cancelled, 1);
}

/// Sixteen banks with exactly one PIM unit each, so a poisoned bank maps
/// to exactly one unit.
fn sixteen_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 16,
        subarrays_per_bank: 1,
        tiles_per_subarray: 1,
        dbcs_per_tile: 2,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

/// Quarantining the hosting bank re-materializes the resident weights on
/// a healthy bank, and dependent jobs keep computing the right answer
/// against the moved copy.
#[test]
fn quarantine_rematerializes_resident_weights() {
    let config = sixteen_bank_config();
    let poisoned_bank = 3;
    let plan = FaultPlan::healthy(0xDEC0DE)
        .with_bank(poisoned_bank, FaultConfig::NONE.with_tr_fault_rate(0.5))
        .unwrap();
    let policy = HealthPolicy {
        suspect_after: 1,
        quarantine_after: 2,
        scrub_on_suspect: false,
        max_inflight_per_bank: 1,
        max_redispatch: 6,
    };
    let options = RuntimeOptions::default()
        .with_faults(plan)
        .with_health(policy)
        .with_protection(ProtectionPolicy::Reexecute { max_retries: 1 })
        .with_shards(2);
    let rt = Runtime::new(config, options).unwrap();

    let storage = DbcLocation::new(0, 0, 0, 1);
    let pim = DbcLocation::new(0, 0, 0, 0);
    let pin_program = PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(storage, 5),
                values: vec![0x2D; 8],
                lane: 8,
            },
            Step::Readout {
                label: "pinned".into(),
                addr: RowAddress::new(storage, 5),
                lane: 8,
            },
        ],
    };
    // Unit index == bank index in this geometry: pin onto the poisoned
    // bank so its faults force a quarantine and a re-materialization.
    let pin = rt.pin_resident(pin_program, poisoned_bank).unwrap();

    let consumer = |operand: u64| PimProgram {
        steps: vec![
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Copy,
                    RowAddress::new(storage, 5),
                    1,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(pim, 4)),
                )
                .unwrap(),
            ),
            Step::Load {
                addr: RowAddress::new(pim, 5),
                values: vec![operand; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(pim, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(pim, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(pim, 20),
                lane: 8,
            },
        ],
    };
    let mut consumers = Vec::new();
    for i in 0..12u64 {
        consumers.push((
            rt.submit(consumer(i + 1), Placement::Resident(pin.res))
                .unwrap(),
            i + 1,
        ));
    }

    let report = rt.finish().unwrap();
    assert!(
        report.stats.faults.quarantined_banks >= 1,
        "the poisoned bank was quarantined"
    );
    assert!(
        report.stats.pipeline.rematerializations >= 1,
        "the residency moved off the quarantined bank"
    );
    // Every consumer computed against a live copy of the weights, and
    // the ones that ran after the move verified on a healthy bank.
    for (id, operand) in consumers {
        let out = report.outcomes.iter().find(|o| o.job_id == id).unwrap();
        if out.verified {
            assert_eq!(
                out.outputs[0].1,
                vec![0x2D + operand; 8],
                "job {id} computed against the pinned weights"
            );
        }
        if out.bank != poisoned_bank {
            assert!(
                out.verified,
                "job {id} re-ran on a healthy bank and must verify"
            );
        }
    }
    assert!(
        report
            .outcomes
            .iter()
            .filter(|o| o.bank != poisoned_bank)
            .count()
            > 0,
        "some work moved off the poisoned bank"
    );
}

/// A pure chain's report is bit-identical across shard counts: gating
/// resolves in id order and pinned placements never consult the cursor.
#[test]
fn chain_report_is_deterministic_across_shards() {
    let run = |shards: usize| {
        let options = RuntimeOptions::default().with_shards(shards);
        let rt = Runtime::new(eight_bank_config(), options).unwrap();
        rt.submit_chain(vec![
            ChainJob {
                source: ProgramSource::Ready(add_job(2, 3)),
                placement: Placement::Unit(0),
                after: vec![],
            },
            ChainJob {
                source: ProgramSource::Ready(add_job(4, 5)),
                placement: Placement::Unit(1),
                after: vec![],
            },
            ChainJob {
                source: ProgramSource::Deferred {
                    deps: vec![0, 1],
                    build: Box::new(|deps| {
                        let a = deps[0][0].1[0]; // 5
                        let b = deps[1][0].1[0]; // 9
                        Ok(add_job(a, b))
                    }),
                },
                placement: Placement::Unit(2),
                after: vec![],
            },
        ])
        .unwrap();
        rt.finish().unwrap()
    };
    let baseline = run(1);
    assert_eq!(baseline.outcomes[2].outputs[0].1, vec![14; 8]);
    for shards in [2, 4] {
        let report = run(shards);
        assert_eq!(report.outcomes, baseline.outcomes, "shards = {shards}");
        assert_eq!(report.stats.makespan_cycles, baseline.stats.makespan_cycles);
    }
}

#[test]
fn ack_wakeups_release_dependency_chains_promptly() {
    // Regression for the event-driven scheduler wakeup: releasing a
    // dependency-gated job requires an ack to arrive while the scheduler
    // sits in its queue pop. Workers kick the queue's wakeup counter
    // after every ack, so each link of this chain must release in
    // microseconds — under lost-wakeup polling, every link would wait
    // out the full 50 ms pop timeout and a 40-deep chain would take
    // two seconds or more.
    let depth = 40usize;
    let chain: Vec<ChainJob> = (0..depth)
        .map(|i| ChainJob {
            source: ProgramSource::Ready(add_job(i as u64, 1)),
            placement: Placement::Auto,
            after: if i == 0 { vec![] } else { vec![i - 1] },
        })
        .collect();
    let runtime = Runtime::new(eight_bank_config(), RuntimeOptions::default()).unwrap();
    let begin = std::time::Instant::now();
    let ids = runtime.submit_chain(chain).expect("chain accepted");
    let report = runtime.finish().expect("chain drains");
    let elapsed = begin.elapsed();
    assert_eq!(report.outcomes.len(), depth);
    for id in ids {
        assert!(report.outcomes.iter().any(|o| o.job_id == id));
    }
    assert!(
        elapsed < std::time::Duration::from_millis(1_500),
        "a {depth}-deep chain drained in {elapsed:?}; ack wakeups must not poll"
    );
}
