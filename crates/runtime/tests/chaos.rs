//! Seeded chaos campaigns over the supervised runtime.
//!
//! Every campaign drives a session through a replayable [`ChaosPlan`]
//! (worker panics, stalls, delays at named crossing points) and asserts
//! the supervision contract:
//!
//! * **Exactly-once resolution** — every submitted job either appears in
//!   the final report's outcomes or produced exactly one `Abandoned`
//!   notice, never both, never neither, and never twice.
//! * **Replayability** — two sessions with the same seed resolve the
//!   same jobs to the same fates (and the same outputs for completions),
//!   across shard counts.
//! * **Bounded drain** — `finish()` returns within the configured drain
//!   deadline even when an attempt hangs forever.

use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};
use coruscant_runtime::{
    install_quiet_hook, ChaosPlan, JobNotice, Placement, Runtime, RuntimeOptions, SuperviseOptions,
    WatchdogOptions,
};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Eight banks so shard counts up to 8 each own at least one bank.
fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

/// A self-contained add job with a per-job operand so outputs identify
/// the job that produced them.
fn add_job(tag: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(loc, 4),
                values: vec![tag; 8],
                lane: 8,
            },
            Step::Load {
                addr: RowAddress::new(loc, 5),
                values: vec![3; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(loc, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(loc, 20),
                lane: 8,
            },
        ],
    }
}

/// How one job ended, normalized for cross-run comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Fate {
    /// Completed with these outputs.
    Done(Vec<(String, Vec<u64>)>),
    /// Abandoned by supervision (`hung` per the notice).
    Abandoned { hung: bool },
}

/// Runs one chaos campaign and returns every job's fate, keyed by id.
/// Panics (failing the test) if any job resolved twice or not at all.
fn run_campaign(
    shards: usize,
    plan: ChaosPlan,
    jobs: u64,
    options: RuntimeOptions,
) -> BTreeMap<u64, Fate> {
    install_quiet_hook();
    let (tx, rx) = mpsc::channel::<JobNotice>();
    let runtime = Runtime::new(
        eight_bank_config(),
        options.with_shards(shards).with_chaos(plan).with_notify(tx),
    )
    .expect("runtime starts");
    let mut submitted = Vec::new();
    for tag in 0..jobs {
        let id = runtime
            .submit(add_job(tag), Placement::Auto)
            .expect("chaos never rejects at submit");
        submitted.push(id);
    }
    let report = runtime.finish().expect("supervised finish succeeds");

    let mut fates: BTreeMap<u64, Fate> = BTreeMap::new();
    for outcome in &report.outcomes {
        let prev = fates.insert(outcome.job_id, Fate::Done(outcome.outputs.clone()));
        assert!(prev.is_none(), "job {} completed twice", outcome.job_id);
    }
    for notice in rx.try_iter() {
        if let JobNotice::Abandoned { job_id, hung } = notice {
            let prev = fates.insert(job_id, Fate::Abandoned { hung });
            assert!(
                prev.is_none(),
                "job {job_id} resolved twice: {prev:?} then abandoned"
            );
        }
    }
    for id in &submitted {
        assert!(fates.contains_key(id), "job {id} never resolved");
    }
    assert_eq!(fates.len(), submitted.len(), "spurious resolutions");
    fates
}

/// Options used by the campaigns: modest retry budget, fast restarts,
/// and a watchdog tight enough to catch the stall plans quickly.
fn campaign_options() -> RuntimeOptions {
    RuntimeOptions::default()
        .with_supervise(SuperviseOptions {
            max_restarts: u32::MAX,
            backoff_base_ms: 1,
            backoff_max_ms: 8,
            max_job_retries: 4,
            drain_deadline_ms: 10_000,
        })
        .with_watchdog(WatchdogOptions {
            enabled: true,
            base_ms: 200,
            per_step_us: 50,
            slack_pct: 400,
            poison_strikes: u32::MAX, // campaigns resubmit nothing; never quarantine
        })
}

#[test]
fn panic_plan_resolves_every_job_across_shard_counts() {
    let plan = ChaosPlan::panics(0xC0FFEE, 120);
    for shards in [1usize, 2, 4, 8] {
        let fates = run_campaign(shards, plan, 48, campaign_options());
        let done = fates
            .values()
            .filter(|f| matches!(f, Fate::Done(_)))
            .count();
        assert!(
            done > 0,
            "some jobs survive a 12% panic rate (shards={shards})"
        );
        for fate in fates.values() {
            if let Fate::Abandoned { hung } = fate {
                assert!(!hung, "panic plan abandons as crashes, not hangs");
            }
        }
    }
}

#[test]
fn stall_plan_classifies_hangs_and_still_resolves() {
    // Stalls far beyond the watchdog budget: every stalled attempt is
    // declared hung, its shard is replaced, and the job either retries
    // to completion or is abandoned as hung.
    let plan = ChaosPlan::stalls(0xBADCAB, 100, 3_000);
    let fates = run_campaign(4, plan, 32, campaign_options());
    let done = fates
        .values()
        .filter(|f| matches!(f, Fate::Done(_)))
        .count();
    assert!(done > 0, "unaffected jobs complete");
}

#[test]
fn mixed_plan_resolves_every_job() {
    let plan = ChaosPlan::mixed(0x5EED, 80, 2_000, 200);
    for shards in [2usize, 8] {
        run_campaign(shards, plan, 40, campaign_options());
    }
}

#[test]
fn same_seed_runs_resolve_identically() {
    let plan = ChaosPlan::panics(42, 150);
    for shards in [1usize, 4] {
        let a = run_campaign(shards, plan, 40, campaign_options());
        let b = run_campaign(shards, plan, 40, campaign_options());
        assert_eq!(a, b, "same seed, same fates and outputs (shards={shards})");
    }
}

#[test]
fn quiet_plan_changes_nothing() {
    // A zero-rate plan must not reroute scheduling observably: every job
    // completes with the same outputs as a plain session.
    let quiet = run_campaign(4, ChaosPlan::quiet(7), 24, RuntimeOptions::default());
    let runtime = Runtime::new(
        eight_bank_config(),
        RuntimeOptions::default().with_shards(4),
    )
    .expect("runtime starts");
    for tag in 0..24 {
        runtime.submit(add_job(tag), Placement::Auto).unwrap();
    }
    let plain = runtime.finish().expect("plain finish");
    assert_eq!(quiet.len(), plain.outcomes.len());
    for outcome in &plain.outcomes {
        assert_eq!(
            quiet.get(&outcome.job_id),
            Some(&Fate::Done(outcome.outputs.clone())),
            "job {} diverged under a quiet plan",
            outcome.job_id
        );
    }
}

#[test]
fn finish_returns_within_drain_deadline_despite_permanent_hang() {
    install_quiet_hook();
    // Every attempt stalls for a minute — far beyond the drain deadline
    // — and the watchdog is off, so nothing ever detaches the stalled
    // workers. The deadline alone must bound `finish()`.
    let plan = ChaosPlan::stalls(9, 1000, 60_000);
    let runtime = Runtime::new(
        eight_bank_config(),
        RuntimeOptions::default()
            .with_shards(2)
            .with_chaos(plan)
            .with_supervise(SuperviseOptions {
                drain_deadline_ms: 1_500,
                ..SuperviseOptions::default()
            }),
    )
    .expect("runtime starts");
    for tag in 0..4 {
        runtime.submit(add_job(tag), Placement::Auto).unwrap();
    }
    let begin = Instant::now();
    let report = runtime.finish().expect("deadline-bounded finish");
    let elapsed = begin.elapsed();
    assert!(
        elapsed < Duration::from_secs(8),
        "finish took {elapsed:?}, deadline was 1.5s"
    );
    assert!(report.outcomes.is_empty(), "every attempt was stalled");
    let sup = report.stats.supervision;
    assert!(
        sup.abandoned_jobs == 4 || sup.workers_lost > 0,
        "jobs were abandoned at the deadline: {sup:?}"
    );
}

#[test]
fn supervision_counters_reflect_injected_panics() {
    let plan = ChaosPlan::panics(0xFACADE, 200);
    install_quiet_hook();
    let (tx, _rx) = mpsc::channel::<JobNotice>();
    let runtime = Runtime::new(
        eight_bank_config(),
        campaign_options()
            .with_shards(4)
            .with_chaos(plan)
            .with_notify(tx),
    )
    .expect("runtime starts");
    for tag in 0..40 {
        runtime.submit(add_job(tag), Placement::Auto).unwrap();
    }
    let report = runtime.finish().expect("finish");
    let sup = report.stats.supervision;
    assert!(sup.panics_caught > 0, "a 20% panic rate panics somewhere");
    assert!(sup.shard_restarts > 0, "panicked shards were restarted");
    assert!(
        sup.crash_redispatches + sup.abandoned_jobs > 0,
        "crashed work was re-dispatched or abandoned"
    );
}
