//! Supervision-contract regressions: completed work survives a retired
//! shard, the poison quarantine rejects repeat offenders at admission,
//! and abandonment is always observable exactly once.

use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};
use coruscant_runtime::{
    install_quiet_hook, ChaosAction, ChaosPlan, CrossingPoint, JobNotice, Placement, Runtime,
    RuntimeError, RuntimeOptions, SuperviseOptions, WatchdogOptions,
};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn four_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 4,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

fn add_job(a: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(loc, 4),
                values: vec![a; 8],
                lane: 8,
            },
            Step::Load {
                addr: RowAddress::new(loc, 5),
                values: vec![9; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(loc, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(loc, 20),
                lane: 8,
            },
        ],
    }
}

/// Whether job 0's first attempt survives both worker crossing points
/// under `plan` — used to pick seeds that keep early jobs clean.
fn first_attempt_clean(plan: &ChaosPlan, job: u64) -> bool {
    plan.decide(CrossingPoint::WorkerStart, job, 0) == ChaosAction::None
        && plan.decide(CrossingPoint::WorkerReport, job, 0) == ChaosAction::None
}

/// Regression (satellite b): a session whose only shard panics and is
/// retired used to return `WorkerLost`, discarding every job that had
/// already completed. The supervised `finish` must salvage those
/// completions from the scheduler's accounting instead.
#[test]
fn retired_shard_salvages_completed_jobs() {
    install_quiet_hook();
    // Half the jobs panic on start; pick a seed where the first jobs
    // complete before the first panic retires the single shard.
    let plan = (0..1000)
        .map(|seed| ChaosPlan::panics(seed, 500))
        .find(|p| {
            first_attempt_clean(p, 0)
                && first_attempt_clean(p, 1)
                && (2..12).any(|j| !first_attempt_clean(p, j))
        })
        .expect("a suitable seed exists in 0..1000");
    let (tx, rx) = mpsc::channel::<JobNotice>();
    let runtime = Runtime::new(
        four_bank_config(),
        RuntimeOptions::default()
            .with_shards(1)
            .with_chaos(plan)
            .with_notify(tx)
            .with_supervise(SuperviseOptions {
                max_restarts: 0, // first panic retires the shard
                max_job_retries: 0,
                drain_deadline_ms: 2_000,
                ..SuperviseOptions::default()
            }),
    )
    .expect("runtime starts");
    for tag in 0..12 {
        runtime.submit(add_job(tag), Placement::Auto).unwrap();
    }
    let report = runtime
        .finish()
        .expect("a retired shard must not fail the session");
    assert!(
        report.outcomes.iter().any(|o| o.job_id == 0),
        "jobs completed before the crash are salvaged"
    );
    let sup = report.stats.supervision;
    assert_eq!(sup.shards_retired, 1, "the only shard was retired");
    assert!(sup.panics_caught >= 1);
    // Every job resolved exactly once: a final outcome or one
    // abandonment notice.
    let mut resolved: Vec<u64> = report.outcomes.iter().map(|o| o.job_id).collect();
    for notice in rx.try_iter() {
        if let JobNotice::Abandoned { job_id, .. } = notice {
            resolved.push(job_id);
        }
    }
    resolved.sort_unstable();
    assert_eq!(resolved, (0..12).collect::<Vec<u64>>());
}

/// The watchdog's poison registry quarantines a program fingerprint
/// after its attempts hang, and admission then rejects it with
/// [`RuntimeError::Poisoned`].
#[test]
fn poison_quarantine_rejects_at_admission() {
    install_quiet_hook();
    // Every attempt stalls well past the watchdog budget.
    let plan = ChaosPlan::stalls(11, 1000, 2_000);
    let runtime = Runtime::new(
        four_bank_config(),
        RuntimeOptions::default()
            .with_shards(2)
            .with_chaos(plan)
            .with_supervise(SuperviseOptions {
                max_job_retries: 0,
                backoff_base_ms: 1,
                drain_deadline_ms: 3_000,
                ..SuperviseOptions::default()
            })
            .with_watchdog(WatchdogOptions {
                enabled: true,
                base_ms: 50,
                per_step_us: 10,
                slack_pct: 100,
                poison_strikes: 1,
            }),
    )
    .expect("runtime starts");
    runtime
        .submit(add_job(1), Placement::Auto)
        .expect("first submission is admitted");
    // The stall is detected after the ~50ms budget; once the strike
    // lands, re-submitting the same program is refused at admission.
    let deadline = Instant::now() + Duration::from_secs(10);
    let fingerprint = loop {
        match runtime.submit(add_job(1), Placement::Auto) {
            Err(RuntimeError::Poisoned { fingerprint }) => break fingerprint,
            Ok(_) => {
                assert!(
                    Instant::now() < deadline,
                    "program was never quarantined within 10s"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    };
    assert_ne!(fingerprint, 0, "fingerprint is the canonical program hash");
    // A *different* program is still admitted.
    runtime
        .submit(add_job(2), Placement::Auto)
        .expect("quarantine is per-fingerprint, not global");
    let report = runtime.finish().expect("drain succeeds");
    let sup = report.stats.supervision;
    assert!(sup.hung_attempts >= 1, "the stall was classified hung");
    assert!(sup.quarantined_programs >= 1, "the fingerprint was struck");
}

/// Hung abandonment is typed: the `Abandoned` notice carries
/// `hung: true` for watchdog give-ups and the stats count them.
#[test]
fn hung_jobs_abandon_with_hung_flag() {
    install_quiet_hook();
    let plan = ChaosPlan::stalls(23, 1000, 2_000);
    let (tx, rx) = mpsc::channel::<JobNotice>();
    let runtime = Runtime::new(
        four_bank_config(),
        RuntimeOptions::default()
            .with_shards(2)
            .with_chaos(plan)
            .with_notify(tx)
            .with_supervise(SuperviseOptions {
                max_job_retries: 0,
                backoff_base_ms: 1,
                drain_deadline_ms: 3_000,
                ..SuperviseOptions::default()
            })
            .with_watchdog(WatchdogOptions {
                enabled: true,
                base_ms: 50,
                per_step_us: 10,
                slack_pct: 100,
                poison_strikes: u32::MAX,
            }),
    )
    .expect("runtime starts");
    for tag in 0..3 {
        runtime.submit(add_job(tag), Placement::Auto).unwrap();
    }
    let report = runtime.finish().expect("drain succeeds");
    assert!(report.stats.supervision.hung_attempts >= 1);
    assert!(report.stats.supervision.abandoned_jobs >= 1);
    let hung_notices = rx
        .try_iter()
        .filter(|n| matches!(n, JobNotice::Abandoned { hung: true, .. }))
        .count();
    assert!(hung_notices >= 1, "at least one abandonment was typed hung");
}
