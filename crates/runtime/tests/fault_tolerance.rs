//! Fault-tolerant serving acceptance campaigns (ISSUE 3).
//!
//! Three properties are demonstrated end-to-end, all with seeded fault
//! injection so the campaigns are reproducible:
//!
//! 1. **Detection and retry**: under an accelerated uniform TR fault rate
//!    (orders of magnitude above the paper's `1e-6`), a protected session
//!    serves 100% correct outputs while an unprotected control on the
//!    *same* fault plan demonstrably corrupts results.
//! 2. **Quarantine**: a single poisoned bank is detected, quarantined,
//!    and routed around, with throughput within 20% of a healthy
//!    baseline running the same protection policy.
//! 3. **Model agreement**: the runtime's retry counters match the
//!    analytic expectations in `coruscant_reliability::retry` within
//!    Monte-Carlo tolerance.

use coruscant_core::dispatch::PimMachine;
use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, FaultPlan, MemoryConfig, Row, RowAddress};
use coruscant_racetrack::{CostMeter, FaultConfig};
use coruscant_runtime::{
    run_batch, HealthPolicy, Placement, ProtectionPolicy, Runtime, RuntimeOptions, RuntimeReport,
};

/// Eight banks x 2 subarrays x 2 tiles with one PIM DBC each = 32 PIM
/// units, 64 nanowires per DBC.
fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

/// Sixteen banks with exactly one PIM unit each, so bank index == unit
/// index and a poisoned bank maps to exactly one unit.
fn sixteen_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 16,
        subarrays_per_bank: 1,
        tiles_per_subarray: 1,
        dbcs_per_tile: 2,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

/// A self-contained add job with a known expected output. Mixed bit
/// patterns keep transverse-read windows away from the all-zeros /
/// all-ones boundary where injected faults clamp away.
fn add_job(a: u64, b: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(loc, 4),
                values: vec![a; 8],
                lane: 8,
            },
            Step::Load {
                addr: RowAddress::new(loc, 5),
                values: vec![b; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(loc, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(loc, 20),
                lane: 8,
            },
        ],
    }
}

/// Operand generator: varied, mixed-bit 8-bit values.
fn operands(i: u64) -> (u64, u64) {
    ((0x35 + 7 * i) % 200, (0x5A + 13 * i) % 55)
}

/// A health policy that never escalates — used by uniform-fault
/// campaigns where every bank faults and quarantine would be wrong.
fn no_quarantine() -> HealthPolicy {
    HealthPolicy {
        suspect_after: 10_000,
        quarantine_after: 100_000,
        scrub_on_suspect: false,
        max_inflight_per_bank: 16,
        max_redispatch: 2,
    }
}

fn run_campaign(
    config: &MemoryConfig,
    jobs: u64,
    options: RuntimeOptions,
) -> Result<RuntimeReport, coruscant_runtime::RuntimeError> {
    let runtime = Runtime::new(config.clone(), options)?;
    for i in 0..jobs {
        let (a, b) = operands(i);
        runtime.submit(add_job(a, b), Placement::Auto)?;
    }
    runtime.finish()
}

/// How many corrupted `sum` outputs a report contains.
fn corrupted_outputs(report: &RuntimeReport) -> usize {
    report
        .outcomes
        .iter()
        .filter(|o| {
            let (a, b) = operands(o.job_id);
            o.outputs[0].1 != vec![(a + b) & 0xFF; 8]
        })
        .count()
}

/// The paper's reliability assumption is a TR fault rate of 1e-6; these
/// campaigns accelerate it to 2e-3 per TR draw. An add job performs 64
/// TR draws (the model-check campaign below measures the count), so the
/// per-*operation* fault rate is more than an order of magnitude above
/// the 1e-3 the acceptance criteria demand.
const ACCELERATED_TR_RATE: f64 = 2e-3;

/// Campaign 1: protection on -> 100% correct outputs with faults
/// detected; protection off on the same seeded plan -> corruption.
#[test]
fn protected_campaign_serves_correct_outputs_where_control_corrupts() {
    let config = eight_bank_config();
    let plan = || {
        FaultPlan::uniform(
            FaultConfig::NONE.with_tr_fault_rate(ACCELERATED_TR_RATE),
            0xC0FF_EE01,
        )
        .unwrap()
    };
    let jobs = 64;

    // Unprotected control: same plan, same seed, no verification. The
    // run may also abort with a device error — that, too, demonstrates
    // corruption, but at this rate silent wrong outputs are expected.
    let control = run_campaign(
        &config,
        jobs,
        RuntimeOptions::default()
            .with_faults(plan())
            .with_health(no_quarantine()),
    );
    match control {
        Ok(report) => {
            assert_eq!(report.outcomes.len() as u64, jobs);
            assert!(
                corrupted_outputs(&report) >= 1,
                "the accelerated fault rate must corrupt at least one unprotected output"
            );
            assert_eq!(report.stats.faults.faults_detected, 0);
            assert_eq!(report.stats.faults.protected_jobs, 0);
            assert!(report.outcomes.iter().all(|o| !o.verified));
        }
        Err(err) => panic!("control run failed outright: {err}"),
    }

    // Protected run: re-execute-and-compare with a deep retry budget.
    let report = run_campaign(
        &config,
        jobs,
        RuntimeOptions::default()
            .with_faults(plan())
            .with_health(no_quarantine())
            .with_protection(ProtectionPolicy::Reexecute { max_retries: 6 }),
    )
    .unwrap();
    assert_eq!(report.outcomes.len() as u64, jobs);
    assert_eq!(
        corrupted_outputs(&report),
        0,
        "protection must serve 100% correct outputs"
    );
    assert!(report.outcomes.iter().all(|o| o.verified));
    let f = &report.stats.faults;
    assert_eq!(f.protected_jobs, jobs);
    assert!(
        f.faults_detected > 0,
        "the accelerated rate must trip detection"
    );
    assert!(f.retries > 0, "detected faults must trigger retries");
    assert_eq!(f.unverified_jobs, 0);
    assert!(f.replicas_run >= 2 * jobs, "every job runs at least a pair");
}

/// Campaign 2: NMR(3) voting serves correct outputs and reports
/// overturned votes on the same accelerated plan.
#[test]
fn nmr_campaign_votes_out_injected_faults() {
    let config = eight_bank_config();
    let plan = FaultPlan::uniform(
        FaultConfig::NONE.with_tr_fault_rate(ACCELERATED_TR_RATE),
        0xC0FF_EE02,
    )
    .unwrap();
    let jobs = 32;
    let report = run_campaign(
        &config,
        jobs,
        RuntimeOptions::default()
            .with_faults(plan)
            .with_health(no_quarantine())
            .with_protection(ProtectionPolicy::Nmr { n: 3 }),
    )
    .unwrap();
    assert_eq!(report.outcomes.len() as u64, jobs);
    assert_eq!(corrupted_outputs(&report), 0, "the majority must be right");
    assert!(report.outcomes.iter().all(|o| o.verified));
    let f = &report.stats.faults;
    assert_eq!(f.protected_jobs, jobs);
    assert!(
        f.votes_overturned > 0,
        "at this rate some readout vote must overrule a replica"
    );
    assert_eq!(f.replicas_run, 3 * jobs, "NMR(3) runs three replicas");
    assert_eq!(f.unverified_jobs, 0);
}

/// Campaign 3: one poisoned bank is quarantined; its traffic re-routes
/// and session throughput stays within 20% of a healthy baseline that
/// runs the same protection policy.
#[test]
fn poisoned_bank_is_quarantined_within_throughput_budget() {
    let config = sixteen_bank_config();
    let poisoned_bank = 5;
    let jobs = 160;
    let policy = HealthPolicy {
        suspect_after: 2,
        quarantine_after: 3,
        scrub_on_suspect: true,
        max_inflight_per_bank: 2,
        max_redispatch: 2,
    };
    let options = |plan: FaultPlan| {
        RuntimeOptions::default()
            .with_faults(plan)
            .with_health(policy)
            .with_protection(ProtectionPolicy::Reexecute { max_retries: 1 })
    };

    let healthy = run_campaign(&config, jobs, options(FaultPlan::healthy(0xBAD_BA9C))).unwrap();
    assert_eq!(corrupted_outputs(&healthy), 0);
    assert_eq!(healthy.stats.faults.quarantined_banks, 0);

    let poisoned_plan = FaultPlan::healthy(0xBAD_BA9C)
        .with_bank(poisoned_bank, FaultConfig::NONE.with_tr_fault_rate(0.5))
        .unwrap();
    let poisoned = run_campaign(&config, jobs, options(poisoned_plan)).unwrap();

    assert_eq!(poisoned.outcomes.len() as u64, jobs, "no job is lost");
    assert_eq!(
        corrupted_outputs(&poisoned),
        0,
        "re-routing must keep every served output correct"
    );
    let f = &poisoned.stats.faults;
    assert_eq!(f.quarantined_banks, 1, "exactly the poisoned bank");
    assert!((f.degraded_capacity - 1.0 / 16.0).abs() < 1e-12);
    assert!(f.redispatches >= 1, "unverified jobs moved to other banks");
    assert!(f.faults_detected >= policy.quarantine_after as u64);

    // No completed job stayed on the poisoned bank unverified.
    for o in &poisoned.outcomes {
        assert!(o.verified, "job {} ended unverified", o.job_id);
    }

    // Throughput: within 20% of the healthy baseline under the same
    // protection (the acceptance criterion).
    let ratio = poisoned.stats.jobs_per_us / healthy.stats.jobs_per_us;
    assert!(
        ratio >= 0.8,
        "quarantine must keep throughput within 20% of baseline, got {ratio:.3}"
    );
}

/// An XOR job whose operands are bit-complementary (`0xAA`, `0x55`):
/// every transverse-read window holds exactly one `1`, so an injected
/// ±1 level fault always flips the parity output and is never clamped
/// at a window boundary — the per-draw corruption probability is
/// exactly the per-draw fault probability, which makes the analytic
/// retry model tight (paper Table V: `XOR` flips on every transition).
fn xor_job() -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(loc, 4),
                values: vec![0xAA; 8],
                lane: 8,
            },
            Step::Load {
                addr: RowAddress::new(loc, 5),
                values: vec![0x55; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Xor,
                    RowAddress::new(loc, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "xor".into(),
                addr: RowAddress::new(loc, 20),
                lane: 8,
            },
        ],
    }
}

/// Counts the transverse-read fault draws one execution of `program`
/// makes, by running it on a machine where every draw injects and
/// reading the injection counter.
fn measure_tr_draws(config: &MemoryConfig, program: &PimProgram) -> u64 {
    let always = FaultConfig {
        p_over_shift: 0.0,
        p_under_shift: 0.0,
        p_tr_up: 1.0,
        p_tr_down: 0.0,
    };
    let plan = FaultPlan::uniform(always, 1).unwrap();
    let mut machine = PimMachine::with_faults(config.clone(), plan);
    let mut meter = CostMeter::new();
    let width = config.nanowires_per_dbc;
    for step in &program.steps {
        match step {
            Step::Load { addr, values, lane } => {
                let row = Row::pack(width, *lane, values);
                machine
                    .controller_mut()
                    .store_row(*addr, &row, &mut meter)
                    .unwrap();
            }
            Step::Exec(instr) => {
                // The result is garbage (every TR is perturbed); only the
                // draw count matters, and the op sequence is data-blind.
                let _ = machine.execute(instr);
            }
            Step::Readout { addr, .. } => {
                let _ = machine.controller_mut().load_row(*addr, &mut meter);
            }
        }
    }
    machine.controller().injected_fault_count()
}

/// Campaign 4: the runtime's fault counters agree with the analytic
/// re-execution model in `coruscant_reliability::retry`.
#[test]
fn retry_counters_match_analytic_model() {
    use coruscant_reliability::retry;

    let config = eight_bank_config();
    let draws = measure_tr_draws(&config, &xor_job());
    assert!(
        draws >= 32,
        "a row-wide XOR performs many TR draws: {draws}"
    );

    // Pick the per-draw rate so one execution corrupts with p = 0.2.
    let p_exec_target = 0.2_f64;
    let p_draw = 1.0 - (1.0 - p_exec_target).powf(1.0 / draws as f64);
    let max_retries = 4;
    let jobs = 200u64;

    let plan = FaultPlan::uniform(FaultConfig::NONE.with_tr_fault_rate(p_draw), 0xD1CE).unwrap();
    let mut policy = no_quarantine();
    policy.max_redispatch = 0; // keep the per-job counter algebra exact
    let options = RuntimeOptions::default()
        .with_faults(plan)
        .with_health(policy)
        .with_protection(ProtectionPolicy::Reexecute { max_retries });
    let runtime = Runtime::new(config.clone(), options).unwrap();
    for _ in 0..jobs {
        runtime.submit(xor_job(), Placement::Auto).unwrap();
    }
    let report = runtime.finish().unwrap();
    let f = &report.stats.faults;

    // Exact identity of the re-execute policy: every detected fault is a
    // mismatching pair, and a job either recovers (one retry per earlier
    // mismatch) or exhausts the budget (R retries, R+1 mismatches).
    assert_eq!(f.faults_detected, f.retries + f.unverified_jobs);
    assert_eq!(f.replicas_run, 2 * (jobs + f.retries));

    // Statistical agreement with the analytic series.
    let p_exec = retry::p_exec_corrupt(p_draw, draws);
    let p_pair = retry::p_pair_mismatch(p_exec);
    let expect_faults = jobs as f64 * retry::expected_faults_detected(p_pair, max_retries);
    let expect_retries = jobs as f64 * retry::expected_retries(p_pair, max_retries);
    let rel = |observed: u64, expected: f64| (observed as f64 - expected).abs() / expected;
    assert!(
        rel(f.faults_detected, expect_faults) < 0.35,
        "faults {} vs analytic {expect_faults:.1}",
        f.faults_detected
    );
    assert!(
        rel(f.retries, expect_retries) < 0.35,
        "retries {} vs analytic {expect_retries:.1}",
        f.retries
    );
}

/// Configuration validation: an unsupported NMR degree and an invalid
/// health policy are rejected up front.
#[test]
fn invalid_protection_and_health_are_rejected() {
    let config = eight_bank_config();
    let err = Runtime::new(
        config.clone(),
        RuntimeOptions::default().with_protection(ProtectionPolicy::Nmr { n: 4 }),
    )
    .err()
    .expect("even degrees cannot vote");
    assert!(err.to_string().contains("invalid runtime configuration"));

    let bad_health = HealthPolicy {
        suspect_after: 5,
        quarantine_after: 2, // below suspect_after
        ..HealthPolicy::default()
    };
    assert!(Runtime::new(
        config,
        RuntimeOptions::default()
            .with_protection(ProtectionPolicy::Reexecute { max_retries: 1 })
            .with_health(bad_health),
    )
    .is_err());
}

/// The fault-aware scheduler path with a healthy plan and no protection
/// still completes every job and reports zeroed fault counters — the
/// plumbing itself must not disturb results.
#[test]
fn healthy_plan_on_fault_path_matches_plain_results() {
    let config = eight_bank_config();
    let jobs = 16;
    let plain = run_batch(
        &config,
        (0..jobs)
            .map(|i| {
                let (a, b) = operands(i);
                add_job(a, b)
            })
            .collect(),
        RuntimeOptions::default(),
    )
    .unwrap();
    let fault_path = run_campaign(
        &config,
        jobs,
        RuntimeOptions::default().with_faults(FaultPlan::healthy(3)),
    )
    .unwrap();
    assert_eq!(corrupted_outputs(&fault_path), 0);
    assert_eq!(fault_path.outcomes.len(), plain.outcomes.len());
    let mut a: Vec<_> = plain
        .outcomes
        .iter()
        .map(|o| (o.job_id, o.outputs.clone()))
        .collect();
    let mut b: Vec<_> = fault_path
        .outcomes
        .iter()
        .map(|o| (o.job_id, o.outputs.clone()))
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "same outputs regardless of scheduler path");
    assert_eq!(fault_path.stats.faults.faults_detected, 0);
    assert_eq!(fault_path.stats.faults.quarantined_banks, 0);
}
