//! Acceptance tests for the execution runtime: the paper's §V-C
//! bank-overlap property, agreement with the memory controller's
//! accounting, determinism across shard counts, and the event trace.

use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::controller::Request;
use coruscant_mem::{DbcLocation, MemoryConfig, MemoryController, RowAddress};
use coruscant_runtime::{
    run_batch, DispatchMode, Placement, Runtime, RuntimeOptions, RuntimeReport,
};

/// Eight banks so circular dispatch has room to spread a burst.
fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

/// A self-contained one-instruction job: load two rows, add, read back.
/// The placement is nominal — the scheduler retargets it.
fn add_job(a: u64, b: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(loc, 4),
                values: vec![a; 8],
                lane: 8,
            },
            Step::Load {
                addr: RowAddress::new(loc, 5),
                values: vec![b; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(loc, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(loc, 20),
                lane: 8,
            },
        ],
    }
}

fn run(config: &MemoryConfig, n: u64, dispatch: DispatchMode, shards: usize) -> RuntimeReport {
    let options = RuntimeOptions::default()
        .with_dispatch(dispatch)
        .with_shards(shards);
    let programs = (0..n).map(|i| add_job(i, 10)).collect();
    run_batch(config, programs, options).unwrap()
}

/// The acceptance criterion: N independent single-op jobs issued
/// circularly onto N distinct banks complete in far less than N times the
/// single-op modeled latency, while the same N jobs forced onto one bank
/// serialize to at least N times that latency (§V-C).
#[test]
fn circular_dispatch_overlaps_banks_single_bank_serializes() {
    let config = eight_bank_config();
    let n = config.banks as u64; // one job per bank

    let single = run(&config, 1, DispatchMode::Circular, 2)
        .stats
        .makespan_cycles;
    assert!(single > 1, "a PIM add takes multiple memory cycles");

    let circular = run(&config, n, DispatchMode::Circular, 4);
    let serial = run(&config, n, DispatchMode::SingleBank, 4);

    // Every bank got exactly one job under circular dispatch.
    let banks: Vec<usize> = circular.outcomes.iter().map(|o| o.bank).collect();
    let mut sorted = banks.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), config.banks, "jobs spread over all banks");

    // Overlap: the whole burst finishes in less than N single-op
    // latencies — in fact within one latency plus the command-bus skew.
    assert!(
        circular.stats.makespan_cycles < n * single,
        "circular {} must beat N x single {}",
        circular.stats.makespan_cycles,
        n * single
    );
    assert!(
        circular.stats.makespan_cycles <= single + n,
        "banks overlap up to command-bus skew: {} vs {}",
        circular.stats.makespan_cycles,
        single + n
    );

    // Serialization: one bank services the burst back-to-back.
    assert_eq!(
        serial.outcomes.iter().map(|o| o.bank).max(),
        Some(0),
        "single-bank mode keeps every job on bank 0"
    );
    assert!(
        serial.stats.makespan_cycles >= n * single,
        "single-bank {} must serialize to at least N x single {}",
        serial.stats.makespan_cycles,
        n * single
    );

    // Waits mirror the same story.
    assert!(circular.outcomes.iter().all(|o| o.wait_cycles == 0));
    assert!(serial
        .outcomes
        .iter()
        .any(|o| o.wait_cycles >= (n - 1) * (single - 1)));

    // And both modes compute the right sums.
    for report in [&circular, &serial] {
        for out in &report.outcomes {
            assert_eq!(out.outputs[0].1, vec![out.job_id + 10; 8]);
        }
    }
}

/// The runtime's modeled completion times agree exactly with a bare
/// `MemoryController` replay of the same PIM command stream in issue
/// order.
#[test]
fn modeled_times_agree_with_controller_accounting() {
    let config = eight_bank_config();
    let report = run(&config, 12, DispatchMode::Circular, 4);

    let mut replay = MemoryController::new(config);
    let mut by_seq = report.outcomes.clone();
    by_seq.sort_by_key(|o| o.seq);
    for out in &by_seq {
        // Single-instruction jobs: the job's device cycles are the
        // instruction's device cycles.
        let expect_wait = replay.bank_free_at(out.bank).saturating_sub(replay.now());
        let done = replay
            .submit(Request::Pim {
                location: out.unit,
                device_cycles: out.device_cycles,
                energy_pj: 0.0,
            })
            .unwrap();
        assert_eq!(out.wait_cycles, expect_wait, "job {}", out.job_id);
        assert_eq!(out.completion, done, "job {}", out.job_id);
    }
    assert_eq!(report.stats.makespan_cycles, replay.drain());
    assert_eq!(
        report.stats.bank_stats.requests,
        replay.bank_stats().requests
    );
}

/// Results and modeled times are a function of the job stream, not of the
/// host parallelism: every shard count produces the identical report.
#[test]
fn report_is_deterministic_across_shard_counts() {
    let config = eight_bank_config();
    let baseline = run(&config, 20, DispatchMode::Circular, 1);
    for shards in [2, 4, 8] {
        let report = run(&config, 20, DispatchMode::Circular, shards);
        assert_eq!(report.outcomes, baseline.outcomes, "shards = {shards}");
        assert_eq!(
            report.stats.makespan_cycles, baseline.stats.makespan_cycles,
            "shards = {shards}"
        );
        assert_eq!(report.stats.per_bank, baseline.stats.per_bank);
        assert_eq!(report.stats.wait, baseline.stats.wait);
    }
}

/// The JSONL event trace records one submit, issue, and complete line per
/// job, each parseable as JSON.
#[test]
fn event_trace_records_job_lifecycle() {
    let config = eight_bank_config();
    let path = std::env::temp_dir().join("coruscant_runtime_acceptance_trace.jsonl");
    let options = RuntimeOptions {
        trace_path: Some(path.clone()),
        ..RuntimeOptions::default()
    };
    let rt = Runtime::new(config, options).unwrap();
    for i in 0..5 {
        rt.submit(add_job(i, 1), Placement::Auto).unwrap();
    }
    let report = rt.finish().unwrap();
    assert_eq!(report.stats.jobs, 5);

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 15, "submit + issue + complete per job");
    for kind in ["Submit", "Issue", "Complete"] {
        assert_eq!(lines.iter().filter(|l| l.contains(kind)).count(), 5);
    }
    for line in lines {
        serde::json::parse(line).unwrap();
    }
}

/// Pinned placements land where the client asked.
#[test]
fn explicit_placements_are_honored() {
    let config = eight_bank_config();
    let rt = Runtime::new(config, RuntimeOptions::default()).unwrap();
    rt.submit(add_job(1, 2), Placement::Unit(3)).unwrap();
    let pinned = DbcLocation::new(5, 1, 0, 0);
    rt.submit(add_job(3, 4), Placement::Fixed(pinned)).unwrap();
    let report = rt.finish().unwrap();
    assert_eq!(report.outcomes[0].bank, 3, "unit 3 is bank-major bank 3");
    assert_eq!(report.outcomes[1].unit, pinned);
    assert_eq!(report.outcomes[1].bank, 5);
    assert_eq!(report.outcomes[0].outputs[0].1, vec![3; 8]);
    assert_eq!(report.outcomes[1].outputs[0].1, vec![7; 8]);
}
