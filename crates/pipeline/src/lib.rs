//! Dependency-aware multi-job CNN inference pipelines (paper §V-C +
//! §V-E, composed): a [`Pipeline`] lowers a [`Network`] into a DAG of
//! per-layer [`ChainJob`]s with explicit data dependencies, plus a
//! residency plan that pins each layer's request-independent weight
//! rows into its assigned PIM unit's storage DBCs *once* and reuses
//! them across requests.
//!
//! The shape of a served inference:
//!
//! 1. **Pin** — one resident pin per layer
//!    ([`Pipeline::pin_programs`] → [`Runtime::pin_resident`] or
//!    [`Client::pin_resident`]), layer `i` on unit `base + i`. Pins
//!    survive requests; quarantine re-materializes them on a healthy
//!    unit before any dependent job re-places.
//! 2. **Lower** — per request, [`Pipeline::lower`] emits one chain:
//!    layer 0 is [`ProgramSource::Ready`] (built from the input image),
//!    every later layer is [`ProgramSource::Deferred`] on its
//!    predecessor — its binder decodes the predecessor's readouts,
//!    applies the host post-op (requantization, BWN count mapping), and
//!    builds the layer's program. Placement is
//!    [`Placement::Resident`], so jobs follow their weights even across
//!    re-materialization, and the chain never consults the automatic
//!    placement cursor — reports are bit-identical across shard counts.
//! 3. **Serve** — [`serve::ServingSession`] drives the same flow
//!    through the async server frontend ([`Client::submit_pipeline`]),
//!    one admission decision per request, streaming batched results.
//!
//! Numeric contract: every lowered program computes the same function
//! as [`coruscant_nn::infer::run_pim`] — exact integer lane math, so
//! pipeline-served logits are bit-identical to the standalone engine
//! (`tests/nn_serving.rs` at the workspace root proves it, including
//! under fault injection with re-execute protection).
//!
//! [`Runtime::pin_resident`]: coruscant_runtime::Runtime::pin_resident
//! [`Client::pin_resident`]: coruscant_server::Client::pin_resident
//! [`Client::submit_pipeline`]: coruscant_server::Client::submit_pipeline
//! [`ProgramSource::Ready`]: coruscant_runtime::ProgramSource::Ready
//! [`ProgramSource::Deferred`]: coruscant_runtime::ProgramSource::Deferred
//! [`Placement::Resident`]: coruscant_runtime::Placement::Resident

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lower;
pub mod serve;

use coruscant_core::program::PimProgram;
use coruscant_mem::MemoryConfig;
use coruscant_nn::infer::ModelWeights;
use coruscant_nn::layers::Layer;
use coruscant_nn::models::Network;
use coruscant_nn::quant::Precision;
use coruscant_nn::tensor::Tensor3;
use coruscant_runtime::{ChainJob, Placement, ProgramSource, ResidentPin};
use std::fmt;

pub use lower::LANE;
use lower::{ActData, Geom, Residency};

/// Why a pipeline could not be constructed or lowered.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Weights do not align with the network's layers.
    Misaligned {
        /// Index of the first misaligned layer.
        layer: usize,
    },
    /// More layers than distinct tiles to host them.
    TooManyTiles {
        /// Layers needing a unit.
        layers: usize,
        /// Distinct tiles available from the base unit.
        tiles: usize,
    },
    /// A layer's resident weight rows overflow its tile's storage DBCs.
    Capacity {
        /// The overflowing layer.
        layer: usize,
        /// Slots the residency plan needs.
        needed: usize,
        /// Slots one tile offers.
        available: usize,
    },
    /// The geometry cannot host the lowering (lane width, scratch rows,
    /// pool gather width…).
    Geometry(String),
    /// `lower` was handed a pin set that does not match the layers.
    PinMismatch {
        /// Pins expected (one per layer).
        expected: usize,
        /// Pins supplied.
        got: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Misaligned { layer } => {
                write!(f, "weights misaligned with layer {layer}")
            }
            PipelineError::TooManyTiles { layers, tiles } => {
                write!(f, "{layers} layers but only {tiles} distinct tiles to pin them on")
            }
            PipelineError::Capacity {
                layer,
                needed,
                available,
            } => write!(
                f,
                "layer {layer} needs {needed} resident rows; a tile's storage DBCs offer {available}"
            ),
            PipelineError::Geometry(msg) => write!(f, "geometry: {msg}"),
            PipelineError::PinMismatch { expected, got } => {
                write!(f, "expected {expected} resident pins (one per layer), got {got}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// A compiled inference pipeline: one network + weights bound to a
/// memory geometry and a base unit, ready to pin residencies and lower
/// per-request job chains.
pub struct Pipeline {
    net: Network,
    weights: ModelWeights,
    geom: Geom,
    residencies: Vec<Residency>,
    base_unit: usize,
}

impl Pipeline {
    /// Builds a pipeline, validating that the geometry can host it: one
    /// distinct tile per layer starting at `base_unit`, every layer's
    /// residency within a tile's storage rows, pool windows within the
    /// TR gather width, and enough rows for the scratch discipline.
    ///
    /// # Errors
    ///
    /// A [`PipelineError`] describing the first violated constraint.
    pub fn new(
        config: &MemoryConfig,
        net: Network,
        weights: ModelWeights,
        base_unit: usize,
    ) -> Result<Pipeline, PipelineError> {
        if !config.nanowires_per_dbc.is_multiple_of(LANE) || config.nanowires_per_dbc < LANE {
            return Err(PipelineError::Geometry(format!(
                "nanowires_per_dbc {} is not a multiple of the {LANE}-bit lane",
                config.nanowires_per_dbc
            )));
        }
        if config.rows_per_dbc < 22 {
            return Err(PipelineError::Geometry(format!(
                "rows_per_dbc {} < 22: the lowering's persistent rows do not fit",
                config.rows_per_dbc
            )));
        }
        if config.dbcs_per_tile <= config.pim_dbcs_per_tile {
            return Err(PipelineError::Geometry(
                "no storage DBCs in the tile to hold resident weights".into(),
            ));
        }
        let storage_dbcs = config.dbcs_per_tile - config.pim_dbcs_per_tile;
        let geom = Geom {
            lanes: config.nanowires_per_dbc / LANE,
            rows_per_dbc: config.rows_per_dbc,
            storage_base: config.pim_dbcs_per_tile,
            storage_slots: storage_dbcs * config.rows_per_dbc - 1,
            trd: config.trd,
        };
        if weights.layers.len() != net.layers.len() {
            return Err(PipelineError::Misaligned {
                layer: weights.layers.len().min(net.layers.len()),
            });
        }
        let tiles = config.banks * config.subarrays_per_bank * config.tiles_per_subarray;
        if base_unit + net.layers.len() > tiles {
            return Err(PipelineError::TooManyTiles {
                layers: net.layers.len(),
                tiles: tiles.saturating_sub(base_unit),
            });
        }
        let mut residencies = Vec::with_capacity(net.layers.len());
        for (li, (layer, lw)) in net.layers.iter().zip(&weights.layers).enumerate() {
            if !aligned(layer, lw) {
                return Err(PipelineError::Misaligned { layer: li });
            }
            if let Layer::MaxPool { window, .. } = layer {
                let k = window * window;
                if k > geom.max_gather() {
                    return Err(PipelineError::Geometry(format!(
                        "layer {li}: pool window {window}×{window} needs {k} operands; \
                         TRD {} allows {}",
                        geom.trd,
                        geom.max_gather()
                    )));
                }
            }
            let residency = lower::plan_residency(layer, lw, weights.precision);
            let needed = residency.slots();
            if needed > geom.storage_slots {
                return Err(PipelineError::Capacity {
                    layer: li,
                    needed,
                    available: geom.storage_slots,
                });
            }
            residencies.push(residency);
        }
        Ok(Pipeline {
            net,
            weights,
            geom,
            residencies,
            base_unit,
        })
    }

    /// The network being served.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The precision the pipeline's weights were synthesized for.
    pub fn precision(&self) -> Precision {
        self.weights.precision
    }

    /// The PIM unit hosting layer `li`'s residency and jobs.
    pub fn unit_for(&self, li: usize) -> usize {
        self.base_unit + li
    }

    /// Resident rows pinned across all layers (descriptor sentinels
    /// excluded).
    pub fn resident_rows(&self) -> usize {
        self.residencies.iter().map(Residency::slots).sum()
    }

    /// One pin program per layer, aligned with the network's layers.
    /// Run each on [`Pipeline::unit_for`]`(i)` via `pin_resident`; the
    /// returned [`ResidentPin`]s feed [`Pipeline::lower`]. Weightless
    /// layers pin a descriptor sentinel so every layer follows the same
    /// quarantine re-materialization contract.
    pub fn pin_programs(&self) -> Vec<PimProgram> {
        self.residencies
            .iter()
            .enumerate()
            .map(|(li, r)| lower::pin_program(&self.geom, li, r))
            .collect()
    }

    /// Lowers one inference request into a dependency chain: one job
    /// per layer, layer 0 built eagerly from `image`, each later layer
    /// deferred on its predecessor with a binder that decodes the
    /// predecessor's readouts (applying the host post-op) and builds
    /// the layer's program. Submit with
    /// [`Runtime::submit_chain`](coruscant_runtime::Runtime::submit_chain)
    /// or [`Client::submit_pipeline`](coruscant_server::Client::submit_pipeline);
    /// decode the final member's outputs with [`Pipeline::decode_logits`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::PinMismatch`] unless `pins` has one entry per
    /// layer (in layer order), or a lowering error for layer 0.
    pub fn lower(
        &self,
        image: &Tensor3,
        pins: &[ResidentPin],
    ) -> Result<Vec<ChainJob>, PipelineError> {
        if pins.len() != self.net.layers.len() {
            return Err(PipelineError::PinMismatch {
                expected: self.net.layers.len(),
                got: pins.len(),
            });
        }
        let precision = self.weights.precision;
        let mut chain = Vec::with_capacity(self.net.layers.len());
        let first = lower::build_layer_program(
            &self.geom,
            0,
            &self.net.layers[0],
            &self.weights.layers[0],
            precision,
            &ActData::Map(image.clone()),
        )
        .map_err(PipelineError::Geometry)?;
        chain.push(ChainJob {
            source: ProgramSource::Ready(first),
            placement: Placement::Resident(pins[0].res),
            after: vec![],
        });
        for (li, pin) in pins.iter().enumerate().skip(1) {
            let geom = self.geom.clone();
            let prev_layer = self.net.layers[li - 1].clone();
            let layer = self.net.layers[li].clone();
            let lw = self.weights.layers[li].clone();
            chain.push(ChainJob {
                source: ProgramSource::Deferred {
                    deps: vec![li - 1],
                    build: Box::new(move |deps| {
                        let acts = lower::decode_layer_outputs(
                            &geom,
                            &prev_layer,
                            precision,
                            false,
                            &deps[0],
                        )?;
                        lower::build_layer_program(&geom, li, &layer, &lw, precision, &acts)
                    }),
                },
                placement: Placement::Resident(pin.res),
                after: vec![],
            });
        }
        Ok(chain)
    }

    /// Decodes the final chain member's labeled readouts into logits —
    /// the same values [`coruscant_nn::infer::run_pim`] returns (final
    /// FC layers keep raw post-ReLU logits; a trailing conv or pool
    /// layer gets its usual post-op before flattening).
    ///
    /// # Errors
    ///
    /// A description of the mismatch when the readouts do not cover the
    /// final layer's outputs.
    pub fn decode_logits(&self, outputs: &[(String, Vec<u64>)]) -> Result<Vec<u64>, PipelineError> {
        let last = self.net.layers.len() - 1;
        let acts = lower::decode_layer_outputs(
            &self.geom,
            &self.net.layers[last],
            self.weights.precision,
            true,
            outputs,
        )
        .map_err(PipelineError::Geometry)?;
        Ok(match acts {
            ActData::Flat(v) => v,
            ActData::Map(t) => t.as_slice().iter().map(|&v| v as u64).collect(),
        })
    }
}

/// Whether a layer and its weights entry are the same kind.
fn aligned(layer: &Layer, weights: &coruscant_nn::infer::LayerWeights) -> bool {
    use coruscant_nn::infer::LayerWeights;
    matches!(
        (layer, weights),
        (Layer::Conv { .. }, LayerWeights::Conv(_))
            | (Layer::MaxPool { .. }, LayerWeights::None)
            | (Layer::Fc { .. }, LayerWeights::Fc(_))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_nn::infer::{proxy_lenet5, synth_weights};

    fn tiny() -> MemoryConfig {
        MemoryConfig::tiny()
    }

    fn lenet(precision: Precision) -> (Network, ModelWeights) {
        let net = proxy_lenet5();
        let w = synth_weights(&net, precision, 3);
        (net, w)
    }

    #[test]
    fn pipeline_validates_tile_budget() {
        let (net, w) = lenet(Precision::Twn);
        let layers = net.layers.len();
        // tiny(): 2 banks × 2 subarrays × 2 tiles = 8 tiles ≥ 4 layers.
        assert!(Pipeline::new(&tiny(), net.clone(), w.clone(), 0).is_ok());
        let err = Pipeline::new(&tiny(), net, w, 6).err().unwrap();
        assert_eq!(err, PipelineError::TooManyTiles { layers, tiles: 2 });
    }

    #[test]
    fn pipeline_rejects_misaligned_weights() {
        let (net, _) = lenet(Precision::Twn);
        let (other, w) = {
            let n = coruscant_nn::infer::proxy_alexnet();
            let w = synth_weights(&n, Precision::Twn, 3);
            (n, w)
        };
        assert!(matches!(
            Pipeline::new(&tiny(), net, w, 0),
            Err(PipelineError::Misaligned { .. })
        ));
        drop(other);
    }

    #[test]
    fn residency_counts_follow_precision() {
        let (net, full) = lenet(Precision::Full);
        let p_full = Pipeline::new(&tiny(), net.clone(), full, 0).unwrap();
        // Full pins one row per non-zero conv tap; the proxy's c1 layer
        // has 2 filters × ≤9 taps.
        assert!(p_full.resident_rows() > 0 && p_full.resident_rows() <= 18);

        let (net, bwn) = lenet(Precision::Bwn);
        let p_bwn = Pipeline::new(&tiny(), net.clone(), bwn, 0).unwrap();
        // BWN pins every tap plus the mask: 2 × 9 + 1.
        assert_eq!(p_bwn.resident_rows(), 19);

        let (net, twn) = lenet(Precision::Twn);
        let p_twn = Pipeline::new(&tiny(), net, twn, 0).unwrap();
        // TWN embeds its sign gathers in the per-request programs.
        assert_eq!(p_twn.resident_rows(), 0);
    }

    #[test]
    fn pin_programs_cover_every_layer_and_end_in_a_sentinel() {
        let (net, w) = lenet(Precision::Full);
        let layers = net.layers.len();
        let p = Pipeline::new(&tiny(), net, w, 0).unwrap();
        let pins = p.pin_programs();
        assert_eq!(pins.len(), layers);
        for prog in &pins {
            let Some(coruscant_core::program::Step::Readout { label, .. }) = prog.steps.last()
            else {
                panic!("pin programs end with a sentinel readout");
            };
            assert!(label.starts_with("resident:"));
        }
    }

    #[test]
    fn lower_requires_one_pin_per_layer() {
        let (net, w) = lenet(Precision::Twn);
        let p = Pipeline::new(&tiny(), net.clone(), w, 0).unwrap();
        let image = coruscant_nn::infer::synth_image(&net, 1);
        let err = p.lower(&image, &[]).err().unwrap();
        assert_eq!(
            err,
            PipelineError::PinMismatch {
                expected: net.layers.len(),
                got: 0
            }
        );
    }
}
