//! End-to-end CNN serving over the async server frontend: pin a
//! [`Pipeline`]'s residencies once, then submit per-request job chains
//! and stream decoded logits.
//!
//! ```text
//! Server::start ── client() ── ServingSession::pin(pipeline)
//!                                   │ one Client::pin_resident per layer
//!                                   ▼
//!               session.submit(image) ─► Client::submit_pipeline (one
//!                                   │     admission decision per request)
//!                                   ▼
//!               InferenceHandle::wait ─► logits (bit-identical to
//!                                        coruscant_nn::infer::run_pim)
//! ```

use crate::{Pipeline, PipelineError, LANE};
use coruscant_nn::tensor::Tensor3;
use coruscant_runtime::ResidentPin;
use coruscant_server::handle::Completion;
use coruscant_server::{Client, JobHandle, Priority, Rejected, ResultStream, ServeError};
use std::sync::Arc;

/// Why a serving-session operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// The server refused the submission.
    Rejected(Rejected),
    /// The pipeline could not lower the request.
    Pipeline(PipelineError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Rejected(r) => write!(f, "rejected: {r}"),
            SessionError::Pipeline(e) => write!(f, "pipeline: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<Rejected> for SessionError {
    fn from(r: Rejected) -> SessionError {
        SessionError::Rejected(r)
    }
}

impl From<PipelineError> for SessionError {
    fn from(e: PipelineError) -> SessionError {
        SessionError::Pipeline(e)
    }
}

/// A pinned pipeline bound to a server client: residencies live on
/// their units for the session's lifetime, and every request reuses
/// them — the model loads once, requests carry only activations.
pub struct ServingSession {
    pipeline: Arc<Pipeline>,
    client: Client,
    pins: Vec<ResidentPin>,
}

impl ServingSession {
    /// Pins `pipeline`'s per-layer residencies through `client` (layer
    /// `i` on unit [`Pipeline::unit_for`]`(i)`) and returns the live
    /// session. The pin jobs are queued ahead of any request chain, so
    /// requests may be submitted immediately.
    ///
    /// # Errors
    ///
    /// [`SessionError::Rejected`] when the server refuses a pin.
    pub fn pin(client: Client, pipeline: Pipeline) -> Result<ServingSession, SessionError> {
        let mut pins = Vec::with_capacity(pipeline.net().layers.len());
        for (li, program) in pipeline.pin_programs().into_iter().enumerate() {
            let (pin, _handle) = client.pin_resident(program, pipeline.unit_for(li))?;
            pins.push(pin);
        }
        Ok(ServingSession {
            pipeline: Arc::new(pipeline),
            client,
            pins,
        })
    }

    /// The pipeline being served.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The per-layer residency receipts, in layer order.
    pub fn pins(&self) -> &[ResidentPin] {
        &self.pins
    }

    /// Submits one inference request: lowers the image into a
    /// dependency chain and hands it to the server under one admission
    /// decision. The returned handle resolves to decoded logits.
    ///
    /// # Errors
    ///
    /// [`SessionError`] when lowering fails or the server sheds the
    /// request.
    pub fn submit(
        &self,
        image: &Tensor3,
        priority: Priority,
    ) -> Result<InferenceHandle, SessionError> {
        let chain = self.pipeline.lower(image, &self.pins)?;
        let handles = self.client.submit_pipeline(chain, priority)?;
        Ok(InferenceHandle {
            pipeline: Arc::clone(&self.pipeline),
            handles,
        })
    }

    /// Submits a batch of requests (one chain each) and returns their
    /// handles in input order. Chains on the same layer units batch in
    /// the runtime's bank FIFOs like any other jobs.
    ///
    /// # Errors
    ///
    /// Fails on the first rejected request; earlier chains stay
    /// submitted (their handles are dropped and resolve at drain).
    pub fn submit_batch(
        &self,
        images: &[Tensor3],
        priority: Priority,
    ) -> Result<Vec<InferenceHandle>, SessionError> {
        images
            .iter()
            .map(|img| self.submit(img, priority))
            .collect()
    }

    /// Submits a batch and returns a stream over each request's *final*
    /// chain member, yielding in input order (the pipeline analogue of
    /// [`Client::submit_stream`]). Decode each completion's outputs
    /// with [`Pipeline::decode_logits`], or use
    /// [`InferenceStream`] for decoded logits.
    ///
    /// # Errors
    ///
    /// Fails on the first rejected request, like
    /// [`ServingSession::submit_batch`].
    pub fn stream_batch(
        &self,
        images: &[Tensor3],
        priority: Priority,
    ) -> Result<InferenceStream, SessionError> {
        let tails = self
            .submit_batch(images, priority)?
            .into_iter()
            .map(|h| {
                let mut handles = h.handles;
                handles.pop().expect("chains are non-empty")
            })
            .collect();
        Ok(InferenceStream {
            pipeline: Arc::clone(&self.pipeline),
            stream: ResultStream::new(tails),
        })
    }
}

/// One in-flight inference request: the handles of its chain members,
/// resolved to logits by [`InferenceHandle::wait`].
pub struct InferenceHandle {
    pipeline: Arc<Pipeline>,
    handles: Vec<JobHandle>,
}

impl InferenceHandle {
    /// The chain's runtime job ids, in layer order.
    pub fn job_ids(&self) -> Vec<u64> {
        self.handles.iter().map(JobHandle::id).collect()
    }

    /// Blocks until the final layer resolves and decodes its readouts
    /// into logits.
    ///
    /// # Errors
    ///
    /// The final member's [`ServeError`] (a dropped predecessor
    /// cascades: the final member reports [`ServeError::Cancelled`]),
    /// or a decode mismatch mapped through
    /// [`SessionError::Pipeline`].
    pub fn wait(self) -> Result<Vec<u64>, SessionError> {
        let last = self
            .handles
            .into_iter()
            .next_back()
            .expect("chains are non-empty");
        let done = last.wait().map_err(|e| {
            SessionError::Rejected(match e {
                ServeError::Rejected(r) => r,
                // Map terminal serve errors onto the closest rejection
                // kind a caller can act on; the typed completion is
                // available via the raw chain handles when needed.
                _ => Rejected::Closed,
            })
        })?;
        Ok(self.pipeline.decode_logits(&done.outputs)?)
    }
}

/// Streaming decoded logits for a batch, in input order.
pub struct InferenceStream {
    pipeline: Arc<Pipeline>,
    stream: ResultStream,
}

impl InferenceStream {
    /// Requests not yet yielded.
    pub fn remaining(&self) -> usize {
        self.stream.remaining()
    }

    /// Blocks until the next request (in input order) resolves; `None`
    /// once the batch is exhausted. Completions decode to logits;
    /// failed requests pass their [`Completion`] error through.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<Vec<u64>, ServeError>> {
        let completion: Completion = self.stream.next()?;
        Some(match completion {
            Ok(done) => self
                .pipeline
                .decode_logits(&done.outputs)
                .map_err(|_| ServeError::Lost),
            Err(e) => Err(e),
        })
    }
}

impl Iterator for InferenceStream {
    type Item = Result<Vec<u64>, ServeError>;

    fn next(&mut self) -> Option<Self::Item> {
        InferenceStream::next(self)
    }
}

/// Lane width re-export sanity: sessions and the lowering agree on the
/// 16-bit lane contract.
const _: () = assert!(LANE == 16);
