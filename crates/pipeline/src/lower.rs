//! Per-layer lowering: CNN layers → self-contained [`PimProgram`]s plus
//! the host glue (decode + post-ops) that connects consecutive layers.
//!
//! Every builder here computes the *same function* as the corresponding
//! [`coruscant_nn::pim_exec::PimCnn`] method — all lane arithmetic is
//! exact integer math mod 2¹⁶ with no overflow by network construction
//! (callers keep `Σ|w|·act` per output under 2¹⁵), so any decomposition
//! of the reduction tree produces bit-identical results. That is what
//! lets the serving pipeline be compared bit-for-bit against the
//! standalone [`coruscant_nn::infer::run_pim`] engine.
//!
//! ## Row discipline (PIM DBC)
//!
//! The in-memory algorithms scratch over addressable rows (measured at
//! TRD 7, 16-bit lanes): `Sub` clobbers rows `1..=trd+1`, `Mult` burns
//! everything up to its partial-sum slot at row `trd+1+bits` (rows
//! 1–16 with 8-bit operand lanes), and the segment-staged ops (`Add`,
//! `Max`, `Xnor`, `And`, …) scratch a TRD-row window *around their
//! operand base* — roughly `base−1 ..= base+trd−2` — because operand
//! placement reuses whatever addressable rows sit under the ports.
//! Only `Copy` and `Relu` are scratch-free. Two consequences shape
//! every builder:
//!
//! * a multi-operand op may never run with its base near live state —
//!   all folds into the P/N accumulators go through the low fold
//!   window (copy the accumulator to row 9, fresh operand at row 10,
//!   `Add` at base 9 scratching only rows 8–14);
//! * nothing live survives a `Mult` below row 17, so accumulators sit
//!   at 19+ and the BWN lane mask is re-copied from its resident slot
//!   before every `And` (the preceding `Xnor` at base 4 wipes row 7).
//!
//! | row | use |
//! |-----|-----|
//! | 4–5 | ephemeral operand loads (activations / weight copies) |
//! | 4–7 | max-pool candidate rows |
//! | 6   | XNOR result (BWN) |
//! | 7   | lane mask (BWN, re-copied per tap) |
//! | 9   | fold window: accumulator copy |
//! | 10  | fold window: fresh operand |
//! | 19  | positive accumulator (P) / BWN popcount accumulator |
//! | 20  | negative accumulator (N) |
//! | 21  | subtract result; ReLU + readout slot |
//!
//! ## Residency layout (storage DBCs)
//!
//! Request-independent weight rows are pinned once per layer into the
//! hosting tile's storage DBCs (`dbc ≥ pim_dbcs_per_tile`) and copied
//! into the PIM DBC by the per-request programs. Slot `s` maps to
//! `(dbc = storage_base + s / rows, row = s % rows)`; slot 0 is a
//! descriptor row the pin program echoes as its readout sentinel (pin
//! programs bypass the compiler, whose dead-store analysis would
//! otherwise see only stores). Full-precision convolutions pin one
//! broadcast |w| row per (filter, non-zero tap); BWN convolutions pin
//! the all-ones lane mask plus one weight-bit row per (filter, tap).
//! Group-dependent weight data (FC magnitude rows, TWN sign-selected
//! gathers) is embedded in the per-request programs as loads instead —
//! it varies per output lane group, and pinning every group would
//! overflow the tile's storage rows for the evaluated networks.

use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, RowAddress};
use coruscant_nn::infer::{binarize_act, bwn_act, conv_shift, requant, LayerWeights};
use coruscant_nn::layers::Layer;
use coruscant_nn::quant::Precision;
use coruscant_nn::tensor::Tensor3;

/// Lane width in bits — all rows carry 16-bit lanes, matching
/// [`coruscant_nn::pim_exec`].
pub const LANE: usize = 16;

/// Ephemeral activation-operand row.
const ROW_A: usize = 4;
/// Ephemeral weight-operand row (loads and resident copies land here).
const ROW_B: usize = 5;
/// XNOR result row (BWN).
const ROW_X: usize = 6;
/// Lane-mask row (BWN match-bit extraction; re-copied per tap).
const ROW_MASK: usize = 7;
/// Fold window: copy of the running accumulator.
const ROW_F0: usize = 9;
/// Fold window: freshly produced operand.
const ROW_F1: usize = 10;
/// Positive accumulator (and BWN popcount accumulator).
const ROW_P: usize = 19;
/// Negative accumulator.
const ROW_N: usize = 20;
/// Subtract result / ReLU / readout slot.
const ROW_OUT: usize = 21;

/// Geometry shared by every builder: lane counts and the storage-DBC
/// slot map, derived once from the memory configuration.
#[derive(Debug, Clone)]
pub(crate) struct Geom {
    /// 16-bit lanes per row.
    pub lanes: usize,
    /// Rows per DBC.
    pub rows_per_dbc: usize,
    /// First storage DBC index within a tile.
    pub storage_base: usize,
    /// Resident slots available per tile (descriptor excluded).
    pub storage_slots: usize,
    /// Transverse-read distance (bounds multi-operand gathers).
    pub trd: usize,
}

impl Geom {
    /// The tile-relative PIM DBC every compute step targets; placement
    /// relocation maps it onto the hosting unit.
    fn pim(&self) -> DbcLocation {
        DbcLocation::new(0, 0, 0, 0)
    }

    /// The tile-relative address of resident slot `s`.
    fn slot(&self, s: usize) -> RowAddress {
        RowAddress::new(
            DbcLocation::new(0, 0, 0, self.storage_base + s / self.rows_per_dbc),
            s % self.rows_per_dbc,
        )
    }

    /// Maximum operand count of a multi-operand gather (`Add`/`Max`).
    pub fn max_gather(&self) -> usize {
        self.trd.saturating_sub(2).max(1)
    }
}

/// One pinned convolution weight row: resident slot plus the tap it
/// encodes.
#[derive(Debug, Clone)]
pub(crate) struct ConvTap {
    /// Resident slot index.
    pub slot: usize,
    /// Input channel.
    pub c: usize,
    /// Kernel row offset.
    pub dy: usize,
    /// Kernel column offset.
    pub dx: usize,
    /// Broadcast value pinned in the slot (|w| or the weight bit).
    pub value: u64,
    /// Sign of the tap (full precision: accumulate into P or N).
    pub positive: bool,
}

/// A layer's residency plan: which rows the pin program materializes.
#[derive(Debug, Clone)]
pub(crate) enum Residency {
    /// Full-precision conv: one |w| broadcast row per non-zero tap,
    /// grouped per filter (outer Vec is filters).
    ConvFull(Vec<Vec<ConvTap>>),
    /// BWN conv: the all-ones lane mask plus one weight-bit row per tap
    /// (every position, zero bits included).
    ConvBwn {
        /// Slot of the all-ones mask row.
        mask_slot: usize,
        /// Per-filter weight-bit taps.
        taps: Vec<Vec<ConvTap>>,
    },
    /// No resident weight rows (pools, TWN convs, FC layers): the pin
    /// carries only the descriptor sentinel, keeping every layer under
    /// the same quarantine re-materialization contract.
    Sentinel,
}

impl Residency {
    /// Resident slots consumed (descriptor excluded).
    pub fn slots(&self) -> usize {
        match self {
            Residency::ConvFull(taps) => taps.iter().map(Vec::len).sum(),
            Residency::ConvBwn { taps, .. } => 1 + taps.iter().map(Vec::len).sum::<usize>(),
            Residency::Sentinel => 0,
        }
    }
}

/// Plans layer `li`'s residency, assigning slots deterministically in
/// filter-major, position-row-major order.
pub(crate) fn plan_residency(
    layer: &Layer,
    weights: &LayerWeights,
    precision: Precision,
) -> Residency {
    match (layer, weights, precision) {
        (
            Layer::Conv {
                kernel,
                in_channels,
                ..
            },
            LayerWeights::Conv(filters),
            Precision::Full,
        ) => {
            let mut next = 1; // slot 0 is the descriptor
            let taps = filters
                .iter()
                .map(|w| {
                    let mut f_taps = Vec::new();
                    for c in 0..*in_channels {
                        for dy in 0..*kernel {
                            for dx in 0..*kernel {
                                let v = w.get(c, dy, dx);
                                if v != 0 {
                                    f_taps.push(ConvTap {
                                        slot: next,
                                        c,
                                        dy,
                                        dx,
                                        value: v.unsigned_abs(),
                                        positive: v > 0,
                                    });
                                    next += 1;
                                }
                            }
                        }
                    }
                    f_taps
                })
                .collect();
            Residency::ConvFull(taps)
        }
        (
            Layer::Conv {
                kernel,
                in_channels,
                ..
            },
            LayerWeights::Conv(filters),
            Precision::Bwn,
        ) => {
            let mask_slot = 1;
            let mut next = 2;
            let taps = filters
                .iter()
                .map(|w| {
                    let mut f_taps = Vec::new();
                    for c in 0..*in_channels {
                        for dy in 0..*kernel {
                            for dx in 0..*kernel {
                                f_taps.push(ConvTap {
                                    slot: next,
                                    c,
                                    dy,
                                    dx,
                                    value: u64::from(w.get(c, dy, dx) != 0),
                                    positive: true,
                                });
                                next += 1;
                            }
                        }
                    }
                    f_taps
                })
                .collect();
            Residency::ConvBwn { mask_slot, taps }
        }
        _ => Residency::Sentinel,
    }
}

/// Activations flowing between layers: feature maps until the first FC
/// layer flattens them, flat vectors afterwards.
#[derive(Debug, Clone)]
pub(crate) enum ActData {
    /// A `(channels, h, w)` feature map of unsigned 8-bit activations.
    Map(Tensor3),
    /// Flattened activations (FC inputs/outputs).
    Flat(Vec<u64>),
}

impl ActData {
    fn flat(&self) -> Vec<u64> {
        match self {
            ActData::Map(t) => t.as_slice().iter().map(|&v| v as u64).collect(),
            ActData::Flat(v) => v.clone(),
        }
    }

    fn map(&self) -> Result<&Tensor3, String> {
        match self {
            ActData::Map(t) => Ok(t),
            ActData::Flat(_) => Err("layer expects a feature map, got flat activations".into()),
        }
    }
}

/// Incremental step emission against the tile-relative PIM DBC.
struct Emit<'g> {
    geom: &'g Geom,
    steps: Vec<Step>,
}

impl<'g> Emit<'g> {
    fn new(geom: &'g Geom) -> Emit<'g> {
        Emit {
            geom,
            steps: Vec::new(),
        }
    }

    fn bs(&self) -> BlockSize {
        BlockSize::new(LANE).expect("16 is a valid block size")
    }

    fn load(&mut self, row: usize, values: Vec<u64>) {
        self.steps.push(Step::Load {
            addr: RowAddress::new(self.geom.pim(), row),
            values,
            lane: LANE,
        });
    }

    fn zeros(&mut self, row: usize) {
        let lanes = self.geom.lanes;
        self.load(row, vec![0; lanes]);
    }

    fn exec(
        &mut self,
        op: CpimOpcode,
        src_row: usize,
        k: u8,
        dst: Option<usize>,
    ) -> Result<(), String> {
        let pim = self.geom.pim();
        let instr = CpimInstr::new(
            op,
            RowAddress::new(pim, src_row),
            k,
            self.bs(),
            dst.map(|r| RowAddress::new(pim, r)),
        )
        .map_err(|e| e.to_string())?;
        self.steps.push(Step::Exec(instr));
        Ok(())
    }

    /// Copies resident slot `s` from the tile's storage DBCs into PIM
    /// row `dst` (the `Copy` opcode is PIM-exempt: its source may be a
    /// storage DBC).
    fn copy_slot(&mut self, s: usize, dst: usize) -> Result<(), String> {
        let instr = CpimInstr::new(
            CpimOpcode::Copy,
            self.geom.slot(s),
            1,
            self.bs(),
            Some(RowAddress::new(self.geom.pim(), dst)),
        )
        .map_err(|e| e.to_string())?;
        self.steps.push(Step::Exec(instr));
        Ok(())
    }

    fn readout(&mut self, label: String, row: usize) {
        self.steps.push(Step::Readout {
            label,
            addr: RowAddress::new(self.geom.pim(), row),
            lane: LANE,
        });
    }

    /// Copies PIM row `src` to PIM row `dst` (`Copy` is scratch-free).
    fn copy_row(&mut self, src: usize, dst: usize) -> Result<(), String> {
        let pim = self.geom.pim();
        let instr = CpimInstr::new(
            CpimOpcode::Copy,
            RowAddress::new(pim, src),
            1,
            self.bs(),
            Some(RowAddress::new(pim, dst)),
        )
        .map_err(|e| e.to_string())?;
        self.steps.push(Step::Exec(instr));
        Ok(())
    }

    /// Folds the row produced by `produce(dst_row)` into the running sum
    /// at `acc` (exact mod-2¹⁶ lane math — any reduction shape sums
    /// identically). The first operand lands in `acc` directly; later
    /// ones go through the low fold window: produce at [`ROW_F1`], copy
    /// the accumulator down to [`ROW_F0`] *after* the producer has
    /// finished scratching, and `Add` at base [`ROW_F0`] — whose
    /// segment-placement scratch (rows 8–14 at TRD 7) cannot reach the
    /// accumulators at 19+. Folding in place at `acc` would scratch the
    /// rows around it and corrupt the neighbouring accumulator.
    fn accumulate<F>(&mut self, acc: usize, first: &mut bool, mut produce: F) -> Result<(), String>
    where
        F: FnMut(&mut Emit<'g>, usize) -> Result<(), String>,
    {
        if *first {
            produce(self, acc)?;
            *first = false;
        } else {
            produce(self, ROW_F1)?;
            self.copy_row(acc, ROW_F0)?;
            self.exec(CpimOpcode::Add, ROW_F0, 2, Some(acc))?;
        }
        Ok(())
    }
}

/// Row-major output coordinates of a feature map.
fn coords(oh: usize, ow: usize) -> Vec<(usize, usize)> {
    (0..oh).flat_map(|y| (0..ow).map(move |x| (y, x))).collect()
}

/// Finishes one output group: `P − N`, ReLU in place, readout.
fn finish_group(e: &mut Emit<'_>, label: String) -> Result<(), String> {
    e.exec(CpimOpcode::Sub, ROW_P, 2, Some(ROW_OUT))?;
    e.exec(CpimOpcode::Relu, ROW_OUT, 1, None)?;
    e.readout(label, ROW_OUT);
    Ok(())
}

/// Builds layer `li`'s program from its input activations. The program
/// is tile-relative: [`coruscant_runtime::Placement::Resident`] moves
/// it onto the hosting unit.
pub(crate) fn build_layer_program(
    geom: &Geom,
    li: usize,
    layer: &Layer,
    weights: &LayerWeights,
    precision: Precision,
    input: &ActData,
) -> Result<PimProgram, String> {
    match (layer, weights) {
        (
            Layer::Conv {
                kernel,
                out_channels,
                ..
            },
            LayerWeights::Conv(filters),
        ) => {
            let acts = input.map()?;
            match precision {
                Precision::Full => conv_full(geom, li, acts, filters, *kernel),
                Precision::Twn => conv_ternary(geom, li, acts, filters, *kernel),
                Precision::Bwn => {
                    let bits = acts.map(|v| binarize_act(v as u64) as i64);
                    conv_bwn(geom, li, &bits, filters, *kernel, *out_channels)
                }
            }
        }
        (
            Layer::MaxPool {
                window, channels, ..
            },
            LayerWeights::None,
        ) => maxpool(geom, li, input.map()?, *window, *channels),
        (Layer::Fc { .. }, LayerWeights::Fc(rows)) => {
            let flat = input.flat();
            match precision {
                Precision::Full => fc_full(geom, li, &flat, rows),
                Precision::Twn | Precision::Bwn => fc_ternary(geom, li, &flat, rows),
            }
        }
        (l, _) => Err(format!("weights misaligned at layer {}", l.name())),
    }
}

/// Full-precision convolution: per tap, the activation row multiplies
/// the resident |w| broadcast row on the carry-save multiplier;
/// positive and negative products accumulate separately and meet in the
/// two's-complement subtractor, then ReLU.
fn conv_full(
    geom: &Geom,
    li: usize,
    acts: &Tensor3,
    filters: &[Tensor3],
    kernel: usize,
) -> Result<PimProgram, String> {
    let Residency::ConvFull(taps) = plan_residency(
        &conv_desc(filters.len(), acts, kernel)?,
        &LayerWeights::Conv(filters.to_vec()),
        Precision::Full,
    ) else {
        return Err("full conv residency plan".into());
    };
    let (_, ih, iw) = acts.shape();
    let (oh, ow) = (ih - kernel + 1, iw - kernel + 1);
    let mut e = Emit::new(geom);
    for (f, f_taps) in taps.iter().enumerate() {
        for (g, group) in coords(oh, ow).chunks(geom.lanes).enumerate() {
            for (acc, positive) in [(ROW_P, true), (ROW_N, false)] {
                let mut first = true;
                for tap in f_taps.iter().filter(|t| t.positive == positive) {
                    let vals: Vec<u64> = group
                        .iter()
                        .map(|&(y, x)| acts.get(tap.c, y + tap.dy, x + tap.dx) as u64)
                        .collect();
                    let slot = tap.slot;
                    e.accumulate(acc, &mut first, |e, dst| {
                        e.load(ROW_A, vals.clone());
                        e.copy_slot(slot, ROW_B)?;
                        e.exec(CpimOpcode::Mult, ROW_A, 2, Some(dst))
                    })?;
                }
                if first {
                    e.zeros(acc);
                }
            }
            finish_group(&mut e, format!("l{li}:f{f}:g{g}"))?;
        }
    }
    Ok(PimProgram { steps: e.steps })
}

/// Ternary convolution: sign-selected activation rows accumulate into P
/// and N directly (no multiplier), then subtract + ReLU.
fn conv_ternary(
    geom: &Geom,
    li: usize,
    acts: &Tensor3,
    filters: &[Tensor3],
    kernel: usize,
) -> Result<PimProgram, String> {
    let (ic, ih, iw) = acts.shape();
    let (oh, ow) = (ih - kernel + 1, iw - kernel + 1);
    let mut e = Emit::new(geom);
    for (f, w) in filters.iter().enumerate() {
        for (g, group) in coords(oh, ow).chunks(geom.lanes).enumerate() {
            for (acc, sign) in [(ROW_P, 1i64), (ROW_N, -1)] {
                let mut first = true;
                for c in 0..ic {
                    for dy in 0..kernel {
                        for dx in 0..kernel {
                            if w.get(c, dy, dx) != sign {
                                continue;
                            }
                            let vals: Vec<u64> = group
                                .iter()
                                .map(|&(y, x)| acts.get(c, y + dy, x + dx) as u64)
                                .collect();
                            e.accumulate(acc, &mut first, |e, dst| {
                                e.load(dst, vals.clone());
                                Ok(())
                            })?;
                        }
                    }
                }
                if first {
                    e.zeros(acc);
                }
            }
            finish_group(&mut e, format!("l{li}:f{f}:g{g}"))?;
        }
    }
    Ok(PimProgram { steps: e.steps })
}

/// BWN convolution: per tap, XNOR the activation-bit row against the
/// resident weight-bit row, mask to the lane LSB (the match bit), and
/// popcount through the accumulator. The host maps count `m` to
/// `relu(2m − n)` when decoding.
fn conv_bwn(
    geom: &Geom,
    li: usize,
    bits: &Tensor3,
    filters: &[Tensor3],
    kernel: usize,
    out_channels: usize,
) -> Result<PimProgram, String> {
    let Residency::ConvBwn { mask_slot, taps } = plan_residency(
        &conv_desc(out_channels, bits, kernel)?,
        &LayerWeights::Conv(filters.to_vec()),
        Precision::Bwn,
    ) else {
        return Err("bwn conv residency plan".into());
    };
    let (_, ih, iw) = bits.shape();
    let (oh, ow) = (ih - kernel + 1, iw - kernel + 1);
    let mut e = Emit::new(geom);
    for (f, f_taps) in taps.iter().enumerate() {
        for (g, group) in coords(oh, ow).chunks(geom.lanes).enumerate() {
            let mut first = true;
            for tap in f_taps {
                let vals: Vec<u64> = group
                    .iter()
                    .map(|&(y, x)| u64::from(bits.get(tap.c, y + tap.dy, x + tap.dx) != 0))
                    .collect();
                let slot = tap.slot;
                e.accumulate(ROW_P, &mut first, |e, dst| {
                    e.load(ROW_A, vals.clone());
                    e.copy_slot(slot, ROW_B)?;
                    // XNOR leaves 0xFFFF on match / 0xFFFE on mismatch;
                    // AND with the ones mask keeps the match bit. The
                    // XNOR's segment scratch wipes row 7, so the mask is
                    // re-copied from its resident slot every tap.
                    e.exec(CpimOpcode::Xnor, ROW_A, 2, Some(ROW_X))?;
                    e.copy_slot(mask_slot, ROW_MASK)?;
                    e.exec(CpimOpcode::And, ROW_X, 2, Some(dst))
                })?;
            }
            e.readout(format!("l{li}:f{f}:g{g}"), ROW_P);
        }
    }
    Ok(PimProgram { steps: e.steps })
}

/// Max pooling: one candidate row per window position, one TR-based
/// multi-operand `Max`.
fn maxpool(
    geom: &Geom,
    li: usize,
    acts: &Tensor3,
    window: usize,
    channels: usize,
) -> Result<PimProgram, String> {
    let k = window * window;
    if k > geom.max_gather() {
        return Err(format!(
            "pool window {window}×{window} needs {k} operands; TRD {} allows {}",
            geom.trd,
            geom.max_gather()
        ));
    }
    let (_, ih, iw) = acts.shape();
    let (oh, ow) = (ih / window, iw / window);
    let mut e = Emit::new(geom);
    for ch in 0..channels {
        for (g, group) in coords(oh, ow).chunks(geom.lanes).enumerate() {
            let mut slot = ROW_A;
            for dy in 0..window {
                for dx in 0..window {
                    let vals: Vec<u64> = group
                        .iter()
                        .map(|&(y, x)| acts.get(ch, y * window + dy, x * window + dx) as u64)
                        .collect();
                    e.load(slot, vals);
                    slot += 1;
                }
            }
            e.exec(CpimOpcode::Max, ROW_A, k as u8, Some(ROW_OUT))?;
            e.readout(format!("l{li}:c{ch}:g{g}"), ROW_OUT);
        }
    }
    Ok(PimProgram { steps: e.steps })
}

/// Full-precision FC: per input, the broadcast activation row multiplies
/// the per-lane magnitude row (group-dependent, so loaded rather than
/// resident), split by weight sign.
fn fc_full(geom: &Geom, li: usize, input: &[u64], rows: &[Vec<i8>]) -> Result<PimProgram, String> {
    let indices: Vec<usize> = (0..rows.len()).collect();
    let mut e = Emit::new(geom);
    for (g, group) in indices.chunks(geom.lanes).enumerate() {
        for (acc, positive) in [(ROW_P, true), (ROW_N, false)] {
            let mut first = true;
            for (i, &x) in input.iter().enumerate() {
                let mags: Vec<u64> = group
                    .iter()
                    .map(|&o| {
                        let w = rows[o][i];
                        if (positive && w > 0) || (!positive && w < 0) {
                            w.unsigned_abs() as u64
                        } else {
                            0
                        }
                    })
                    .collect();
                if mags.iter().all(|&v| v == 0) {
                    continue;
                }
                let lanes = geom.lanes;
                e.accumulate(acc, &mut first, |e, dst| {
                    e.load(ROW_A, vec![x; lanes]);
                    e.load(ROW_B, mags.clone());
                    e.exec(CpimOpcode::Mult, ROW_A, 2, Some(dst))
                })?;
            }
            if first {
                e.zeros(acc);
            }
        }
        finish_group(&mut e, format!("l{li}:g{g}"))?;
    }
    Ok(PimProgram { steps: e.steps })
}

/// Ternary/binary FC: sign-selected activation rows accumulate into P
/// and N directly.
fn fc_ternary(
    geom: &Geom,
    li: usize,
    input: &[u64],
    rows: &[Vec<i8>],
) -> Result<PimProgram, String> {
    let indices: Vec<usize> = (0..rows.len()).collect();
    let mut e = Emit::new(geom);
    for (g, group) in indices.chunks(geom.lanes).enumerate() {
        for (acc, sign) in [(ROW_P, 1i8), (ROW_N, -1)] {
            let mut first = true;
            for (i, &x) in input.iter().enumerate() {
                let vals: Vec<u64> = group
                    .iter()
                    .map(|&o| if rows[o][i] == sign { x } else { 0 })
                    .collect();
                if vals.iter().all(|&v| v == 0) {
                    continue;
                }
                e.accumulate(acc, &mut first, |e, dst| {
                    e.load(dst, vals.clone());
                    Ok(())
                })?;
            }
            if first {
                e.zeros(acc);
            }
        }
        finish_group(&mut e, format!("l{li}:g{g}"))?;
    }
    Ok(PimProgram { steps: e.steps })
}

/// The pin program materializing `residency` for layer `li`: loads
/// every resident slot and echoes the descriptor row as its sentinel
/// readout.
pub(crate) fn pin_program(geom: &Geom, li: usize, residency: &Residency) -> PimProgram {
    let mut steps = Vec::new();
    let lanes = geom.lanes;
    let desc: Vec<u64> = [li as u64, residency.slots() as u64, 0xC0]
        .into_iter()
        .take(lanes)
        .collect();
    steps.push(Step::Load {
        addr: geom.slot(0),
        values: desc,
        lane: LANE,
    });
    let pin_row = |slot: usize, value: u64, steps: &mut Vec<Step>| {
        steps.push(Step::Load {
            addr: geom.slot(slot),
            values: vec![value; lanes],
            lane: LANE,
        });
    };
    match residency {
        Residency::ConvFull(taps) => {
            for tap in taps.iter().flatten() {
                pin_row(tap.slot, tap.value, &mut steps);
            }
        }
        Residency::ConvBwn { mask_slot, taps } => {
            pin_row(*mask_slot, 1, &mut steps);
            for tap in taps.iter().flatten() {
                pin_row(tap.slot, tap.value, &mut steps);
            }
        }
        Residency::Sentinel => {}
    }
    steps.push(Step::Readout {
        label: format!("resident:l{li}"),
        addr: geom.slot(0),
        lane: LANE,
    });
    PimProgram { steps }
}

/// Decodes layer `li`'s readouts back into activations, applying the
/// layer's host post-op (requantization, BWN count mapping) — the same
/// glue [`coruscant_nn::infer::run_pim`] runs between engine calls.
pub(crate) fn decode_layer_outputs(
    geom: &Geom,
    layer: &Layer,
    precision: Precision,
    is_last: bool,
    outputs: &[(String, Vec<u64>)],
) -> Result<ActData, String> {
    let mut it = outputs.iter();
    let mut next = |expect: usize| -> Result<Vec<u64>, String> {
        let (label, vals) = it
            .next()
            .ok_or_else(|| format!("missing readout for {} outputs", expect))?;
        if vals.len() < expect {
            return Err(format!(
                "readout {label} carries {} lanes, need {expect}",
                vals.len()
            ));
        }
        Ok(vals.clone())
    };
    match layer {
        Layer::Conv {
            kernel,
            in_channels,
            out_channels,
            out_h,
            out_w,
            ..
        } => {
            let mut t = Tensor3::zeros(*out_channels, *out_h, *out_w);
            let n_positions = in_channels * kernel * kernel;
            let shift = conv_shift(precision);
            for f in 0..*out_channels {
                for group in coords(*out_h, *out_w).chunks(geom.lanes) {
                    let vals = next(group.len())?;
                    for (l, &(y, x)) in group.iter().enumerate() {
                        let v = match precision {
                            Precision::Full | Precision::Twn => requant(vals[l], shift),
                            Precision::Bwn => requant(bwn_act(vals[l], n_positions), shift),
                        };
                        t.set(f, y, x, v as i64);
                    }
                }
            }
            Ok(ActData::Map(t))
        }
        Layer::MaxPool {
            channels,
            out_h,
            out_w,
            ..
        } => {
            let mut t = Tensor3::zeros(*channels, *out_h, *out_w);
            for ch in 0..*channels {
                for group in coords(*out_h, *out_w).chunks(geom.lanes) {
                    let vals = next(group.len())?;
                    for (l, &(y, x)) in group.iter().enumerate() {
                        t.set(ch, y, x, vals[l] as i64);
                    }
                }
            }
            Ok(ActData::Map(t))
        }
        Layer::Fc { outputs: n_out, .. } => {
            let indices: Vec<usize> = (0..*n_out).collect();
            let mut flat = vec![0u64; *n_out];
            for group in indices.chunks(geom.lanes) {
                let vals = next(group.len())?;
                for (l, &o) in group.iter().enumerate() {
                    flat[o] = if is_last {
                        vals[l] // raw logits
                    } else {
                        requant(vals[l], conv_shift(precision))
                    };
                }
            }
            Ok(ActData::Flat(flat))
        }
    }
}

/// Reconstructs the `Layer::Conv` descriptor `plan_residency` keys on
/// from an activation tensor and filter set (the builders are handed
/// tensors, not descriptors).
fn conv_desc(oc: usize, acts: &Tensor3, kernel: usize) -> Result<Layer, String> {
    let (ic, ih, iw) = acts.shape();
    if ih < kernel || iw < kernel {
        return Err(format!("input {ih}×{iw} smaller than kernel {kernel}"));
    }
    Ok(Layer::Conv {
        name: String::new(),
        kernel,
        in_channels: ic,
        out_channels: oc,
        out_h: ih - kernel + 1,
        out_w: iw - kernel + 1,
    })
}
