//! A functional ELP²IM sense-amplifier state machine (paper §II-C1).
//!
//! ELP²IM avoids Ambit's row cloning by computing *in place*: instead of
//! a control row, it programs the sense amplifier into a **pseudo-
//! precharge** state — biasing the bitline above or below the midpoint —
//! so that activating a single data row resolves to `OR` (bias high: any
//! stored `1` tips the latch) or `AND` (bias low: a stored `0` wins).
//! A two-operand op is then a short sequence of pseudo-precharge phases
//! and single-row activations, with the final latch value written to the
//! result row; the source rows are refreshed, not destroyed.
//!
//! The phase counts reproduce the relative costs the analytic
//! [`Elp2im`](crate::elp2im::Elp2im) model bills (1 op-pair per bitwise
//! op vs Ambit's four AAPs).

use serde::{Deserialize, Serialize};

/// The sense-amplifier bias before an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bias {
    /// Conventional midpoint precharge (plain read).
    Mid,
    /// Pseudo-precharge above midpoint: latch resolves to `latch OR cell`.
    High,
    /// Pseudo-precharge below midpoint: latch resolves to `latch AND cell`.
    Low,
}

/// A functional ELP²IM subarray: rows of cells plus one latch per bitline.
#[derive(Debug, Clone)]
pub struct Elp2imSubarray {
    rows: Vec<Vec<bool>>,
    latch: Vec<bool>,
    width: usize,
    /// Pseudo-precharge/activate phases performed (the cost unit).
    phases: u64,
}

impl Elp2imSubarray {
    /// Creates a zeroed subarray.
    pub fn new(rows: usize, width: usize) -> Elp2imSubarray {
        Elp2imSubarray {
            rows: vec![vec![false; width]; rows],
            latch: vec![false; width],
            width,
            phases: 0,
        }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Phases performed so far.
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// Writes a row.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn write_row(&mut self, r: usize, bits: &[bool]) {
        assert_eq!(bits.len(), self.width, "row width");
        self.rows[r].copy_from_slice(bits);
        self.phases += 1;
    }

    /// Activates row `r` under the given bias, updating the latch; the
    /// cell is refreshed with its own value (non-destructive for the
    /// stored data).
    pub fn activate(&mut self, r: usize, bias: Bias) {
        for i in 0..self.width {
            let cell = self.rows[r][i];
            self.latch[i] = match bias {
                Bias::Mid => cell,
                Bias::High => self.latch[i] || cell,
                Bias::Low => self.latch[i] && cell,
            };
        }
        self.phases += 1;
    }

    /// Writes the latch into row `dst`.
    pub fn latch_to_row(&mut self, dst: usize) {
        let data = self.latch.clone();
        self.rows[dst] = data;
        self.phases += 1;
    }

    /// Two-operand AND in place: plain-read `x`, then a low-biased
    /// activation of `y`, then latch write-back.
    pub fn and(&mut self, x: usize, y: usize, dst: usize) -> Vec<bool> {
        self.activate(x, Bias::Mid);
        self.activate(y, Bias::Low);
        self.latch_to_row(dst);
        self.latch.clone()
    }

    /// Two-operand OR in place.
    pub fn or(&mut self, x: usize, y: usize, dst: usize) -> Vec<bool> {
        self.activate(x, Bias::Mid);
        self.activate(y, Bias::High);
        self.latch_to_row(dst);
        self.latch.clone()
    }

    /// `k`-operand AND: one plain read then `k − 1` low-biased
    /// activations — still sequential per operand, the structural contrast
    /// with CORUSCANT's single multi-operand TR.
    pub fn and_k(&mut self, rows: &[usize], dst: usize) -> Vec<bool> {
        assert!(rows.len() >= 2, "need at least two operands");
        self.activate(rows[0], Bias::Mid);
        for &r in &rows[1..] {
            self.activate(r, Bias::Low);
        }
        self.latch_to_row(dst);
        self.latch.clone()
    }

    /// Direct inspection (oracle).
    pub fn peek(&self, r: usize) -> &[bool] {
        &self.rows[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| v >> i & 1 == 1).collect()
    }

    fn val(b: &[bool]) -> u64 {
        b.iter()
            .enumerate()
            .fold(0, |acc, (i, &x)| acc | (u64::from(x) << i))
    }

    #[test]
    fn in_place_and_or_are_correct_and_nondestructive() {
        let (x, y) = (0xF0F0_1234u64, 0x0FF0_4321u64);
        let mut s = Elp2imSubarray::new(8, 32);
        s.write_row(0, &bits(x, 32));
        s.write_row(1, &bits(y, 32));
        let got_and = s.and(0, 1, 5);
        assert_eq!(val(&got_and), x & y);
        // Operands are refreshed, not destroyed — no RowClone needed.
        assert_eq!(val(s.peek(0)), x);
        assert_eq!(val(s.peek(1)), y);
        let got_or = s.or(0, 1, 6);
        assert_eq!(val(&got_or), x | y);
    }

    #[test]
    fn multi_operand_and_is_sequential() {
        let vals = [0xFFFFu64, 0xFF0F, 0xF0FF, 0x0FFF];
        let mut s = Elp2imSubarray::new(10, 16);
        for (i, &v) in vals.iter().enumerate() {
            s.write_row(i, &bits(v, 16));
        }
        let before = s.phases();
        let out = s.and_k(&[0, 1, 2, 3], 7);
        assert_eq!(
            val(&out),
            vals.iter().fold(u64::MAX, |a, &b| a & b) & 0xFFFF
        );
        // 1 read + 3 biased activations + 1 write-back = 5 phases:
        // linear in the operand count (CORUSCANT's TR is 1).
        assert_eq!(s.phases() - before, 5);
    }

    #[test]
    fn cheaper_than_functional_ambit_per_op() {
        use crate::ambit_functional::{AmbitSubarray, ComputeRows};
        let scratch = ComputeRows {
            t0: 10,
            t1: 11,
            ctrl: 12,
            dcc: 13,
        };
        let mut a = AmbitSubarray::new(16, 16);
        a.write_row(0, &bits(0xABCD, 16));
        a.write_row(1, &bits(0x1234, 16));
        let before_a = a.activations();
        a.and(0, 1, 5, scratch);
        let ambit_cost = a.activations() - before_a;

        let mut e = Elp2imSubarray::new(16, 16);
        e.write_row(0, &bits(0xABCD, 16));
        e.write_row(1, &bits(0x1234, 16));
        let before_e = e.phases();
        e.and(0, 1, 5);
        let elp_cost = e.phases() - before_e;

        assert!(
            elp_cost * 2 <= ambit_cost,
            "elp2im {elp_cost} vs ambit {ambit_cost} (the in-place advantage)"
        );
        assert_eq!(val(a.peek(5)), val(e.peek(5)));
    }

    #[test]
    fn bias_semantics() {
        let mut s = Elp2imSubarray::new(4, 4);
        s.write_row(0, &bits(0b1010, 4));
        s.activate(0, Bias::Mid);
        assert_eq!(val(&s.latch), 0b1010);
        s.write_row(1, &bits(0b1100, 4));
        s.activate(1, Bias::High);
        assert_eq!(val(&s.latch), 0b1110, "OR accumulates");
        s.write_row(2, &bits(0b0110, 4));
        s.activate(2, Bias::Low);
        assert_eq!(val(&s.latch), 0b0110, "AND filters");
    }
}
