//! Baseline PIM models CORUSCANT is evaluated against (paper §II-C, §V).
//!
//! Each baseline is a command-level cost model (cycles, energy, area)
//! whose constants come from the numbers the paper reports or cites:
//!
//! * [`ambit`] — triple-row-activation bulk-bitwise PIM in commodity DRAM
//!   (Seshadri et al., MICRO'17), with RowClone copies and dual-contact
//!   cells for inversion.
//! * [`elp2im`] — pseudo-precharge bulk-bitwise PIM (Xin et al.,
//!   HPCA'20), ~3.2× faster than Ambit on bitwise workloads and 40 cycles
//!   per carry-lookahead addition step.
//! * [`dwm_pim`] — the two prior DWM PIM designs: DW-NN (GMR stacked-
//!   domain XOR + precharge sense amplifier adds) and SPIM (skyrmion
//!   compute units), parameterized to reproduce their Table III columns.
//! * [`isaac`] — the ISAAC ReRAM crossbar CNN accelerator, at the
//!   headline-number granularity the paper compares against.
//! * [`cpu`] — the non-PIM baseline: a CPU computing over data fetched
//!   across the memory bus from DRAM or DWM main memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambit;
pub mod ambit_functional;
pub mod cpu;
pub mod dwm_pim;
pub mod dwnn_functional;
pub mod elp2im;
pub mod elp2im_functional;
pub mod isaac;
pub mod spim_functional;

/// A (cycles, picojoule) operation cost at the memory interface.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BaselineCost {
    /// Latency in memory cycles.
    pub cycles: u64,
    /// Energy in picojoules.
    pub energy_pj: f64,
}

impl BaselineCost {
    /// Creates a cost.
    pub fn new(cycles: u64, energy_pj: f64) -> BaselineCost {
        BaselineCost { cycles, energy_pj }
    }

    /// Sequential composition.
    #[must_use]
    pub fn then(self, other: BaselineCost) -> BaselineCost {
        BaselineCost {
            cycles: self.cycles + other.cycles,
            energy_pj: self.energy_pj + other.energy_pj,
        }
    }

    /// Repeats sequentially.
    #[must_use]
    pub fn repeat(self, n: u64) -> BaselineCost {
        BaselineCost {
            cycles: self.cycles * n,
            energy_pj: self.energy_pj * n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_composition() {
        let a = BaselineCost::new(10, 1.0);
        let b = BaselineCost::new(5, 0.5);
        assert_eq!(a.then(b).cycles, 15);
        assert_eq!(a.repeat(3).cycles, 30);
        assert!((a.repeat(3).energy_pj - 3.0).abs() < 1e-12);
    }
}
