//! Prior DWM PIM designs: DW-NN and SPIM (paper §II-C2, Table III).
//!
//! **DW-NN** (Yu et al., ASP-DAC'14) stacks two domains so a read current
//! senses their aggregate giant magnetoresistance, computing XOR; a
//! precharge sense amplifier over three nanowires derives the carry. Both
//! are bit-serial: operands must shift into alignment with the GMR/MTJ
//! stack for every bit.
//!
//! **SPIM** (Liu et al., ISPA'17) extends DWM with skyrmion-based compute
//! units whose permanently merged domains and channels form full adders.
//!
//! Neither design has a multi-operand primitive, so five-operand addition
//! is either four sequential two-operand adds on one unit (*area
//! optimized*) or a tree over replicated units (*latency optimized*), and
//! multiplication is a shift-and-add loop. The per-bit constants below
//! are fitted so the compound operations reproduce each design's Table
//! III column exactly; the structural formulas (bit-serial loops, add
//! trees) are the designs' own.

use crate::BaselineCost;
use serde::Serialize;

/// A bit-serial DWM PIM design (DW-NN or SPIM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SerialDwmPim {
    /// Design name.
    pub name: &'static str,
    /// Cycles per bit of a two-operand add (shift-in + sense + write-back).
    pub cycles_per_bit: u64,
    /// Fixed per-operation control overhead in cycles.
    pub op_overhead: u64,
    /// Staging cycles to move one extra operand into the unit.
    pub staging_cycles: u64,
    /// Tree-stage interconnect overhead (latency-optimized mode).
    pub tree_overhead: u64,
    /// Extra multiplication control cycles.
    pub mult_overhead: u64,
    /// Energy of one 8-bit two-operand add (pJ).
    pub add2_energy_pj: f64,
    /// Energy overhead per extra staged operand (pJ, 8-bit granularity).
    pub staging_energy_pj: f64,
    /// Extra multiplication energy (pJ).
    pub mult_extra_energy_pj: f64,
    /// Unit area (µm², one adder).
    pub adder_area_um2: f64,
    /// Multiplier area (µm²).
    pub mult_area_um2: f64,
}

impl SerialDwmPim {
    /// The DW-NN model (fitted to its Table III column:
    /// 54/264/194/163 cycles, 40/169.6/169.6/308 pJ).
    pub fn dw_nn() -> SerialDwmPim {
        SerialDwmPim {
            name: "DW-NN",
            cycles_per_bit: 6,
            op_overhead: 6,
            staging_cycles: 12,
            tree_overhead: 32,
            mult_overhead: 1,
            add2_energy_pj: 40.0,
            staging_energy_pj: 2.4,
            mult_extra_energy_pj: 28.0,
            adder_area_um2: 2.6,
            mult_area_um2: 18.9,
        }
    }

    /// The SPIM model (fitted to its Table III column:
    /// 49/244/179/149 cycles, 28/121.6/121.6/196 pJ).
    pub fn spim() -> SerialDwmPim {
        SerialDwmPim {
            name: "SPIM",
            cycles_per_bit: 6,
            op_overhead: 1,
            staging_cycles: 12,
            tree_overhead: 32,
            mult_overhead: 2,
            add2_energy_pj: 28.0,
            staging_energy_pj: 2.4,
            mult_extra_energy_pj: 0.0,
            adder_area_um2: 2.0,
            mult_area_um2: 16.8,
        }
    }

    /// Two-operand `bits`-bit addition: bit-serial shift/sense/write loop.
    pub fn add2(&self, bits: u64) -> BaselineCost {
        BaselineCost::new(
            self.cycles_per_bit * bits + self.op_overhead,
            self.add2_energy_pj * bits as f64 / 8.0,
        )
    }

    /// `k`-operand addition, area-optimized: `k − 1` sequential
    /// two-operand adds on one unit plus operand staging.
    pub fn add_k_area_opt(&self, k: u64, bits: u64) -> BaselineCost {
        let adds = self.add2(bits).repeat(k - 1);
        BaselineCost::new(
            adds.cycles + self.staging_cycles * (k - 1),
            adds.energy_pj + self.staging_energy_pj * (k - 1) as f64,
        )
    }

    /// `k`-operand addition, latency-optimized: a `⌈log2 k⌉`-deep tree of
    /// replicated units (energy still pays all `k − 1` adds).
    pub fn add_k_latency_opt(&self, k: u64, bits: u64) -> BaselineCost {
        let depth = 64 - (k - 1).leading_zeros() as u64;
        BaselineCost::new(
            self.add2(bits).cycles * depth + self.tree_overhead,
            self.add2(bits).energy_pj * (k - 1) as f64 + self.staging_energy_pj * (k - 1) as f64,
        )
    }

    /// Two-operand `bits`-bit multiplication: shift-and-add over the
    /// partial products on a tree of units (`⌈log2 bits⌉` add stages).
    pub fn mult2(&self, bits: u64) -> BaselineCost {
        let depth = 64 - (bits - 1).leading_zeros() as u64;
        BaselineCost::new(
            self.add2(bits).cycles * depth + self.mult_overhead,
            self.add2(bits).energy_pj * (bits - 1) as f64 + self.mult_extra_energy_pj,
        )
    }

    /// Latency-optimized adder area: one unit per tree leaf pair.
    pub fn add_latency_opt_area_um2(&self, k: u64) -> f64 {
        self.adder_area_um2 * (k / 2).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dwnn_matches_its_table3_column() {
        let d = SerialDwmPim::dw_nn();
        assert_eq!(d.add2(8).cycles, 54);
        assert_eq!(d.add_k_area_opt(5, 8).cycles, 264);
        assert_eq!(d.add_k_latency_opt(5, 8).cycles, 194);
        assert_eq!(d.mult2(8).cycles, 163);
        assert!((d.add2(8).energy_pj - 40.0).abs() < 1e-9);
        assert!((d.add_k_area_opt(5, 8).energy_pj - 169.6).abs() < 0.01);
        assert!((d.add_k_latency_opt(5, 8).energy_pj - 169.6).abs() < 0.01);
        assert!((d.mult2(8).energy_pj - 308.0).abs() < 0.01);
    }

    #[test]
    fn spim_matches_its_table3_column() {
        let s = SerialDwmPim::spim();
        assert_eq!(s.add2(8).cycles, 49);
        assert_eq!(s.add_k_area_opt(5, 8).cycles, 244);
        assert_eq!(s.add_k_latency_opt(5, 8).cycles, 179);
        assert_eq!(s.mult2(8).cycles, 149);
        assert!((s.add2(8).energy_pj - 28.0).abs() < 1e-9);
        assert!((s.add_k_area_opt(5, 8).energy_pj - 121.6).abs() < 0.01);
        assert!((s.mult2(8).energy_pj - 196.0).abs() < 0.01);
    }

    #[test]
    fn spim_is_the_stronger_prior_dwm_design() {
        let d = SerialDwmPim::dw_nn();
        let s = SerialDwmPim::spim();
        assert!(s.add2(8).cycles < d.add2(8).cycles);
        assert!(s.mult2(8).cycles < d.mult2(8).cycles);
        assert!(s.mult2(8).energy_pj < d.mult2(8).energy_pj);
    }

    #[test]
    fn paper_speedup_claims_hold_against_coruscant() {
        // CORUSCANT is 1.9x / 9.4x / 6.9x / 2.3x faster than SPIM for
        // 2op add, 5op add (area), 5op add (latency), 2op mult
        // (paper §V-B), comparing against its Table III cycle counts.
        let s = SerialDwmPim::spim();
        let cor_add2 = 26.0; // TR = 7
        let cor_add5 = 26.0;
        let cor_mult = 64.0;
        assert!((s.add2(8).cycles as f64 / cor_add2 - 1.9).abs() < 0.1);
        assert!((s.add_k_area_opt(5, 8).cycles as f64 / cor_add5 - 9.4).abs() < 0.1);
        assert!((s.add_k_latency_opt(5, 8).cycles as f64 / cor_add5 - 6.9).abs() < 0.1);
        assert!((s.mult2(8).cycles as f64 / cor_mult - 2.3).abs() < 0.1);
    }

    #[test]
    fn paper_energy_claims_hold_against_coruscant() {
        // 2.2x / 5.5x / 5.5x / 3.4x less energy than SPIM (paper §V-B).
        let s = SerialDwmPim::spim();
        assert!((s.add2(8).energy_pj / 10.15 - 2.76).abs() < 0.15); // vs TR3 2op
        assert!((s.add_k_area_opt(5, 8).energy_pj / 22.14 - 5.5).abs() < 0.1);
        assert!((s.mult2(8).energy_pj / 57.39 - 3.4).abs() < 0.1);
    }

    #[test]
    fn wider_operands_scale_serially() {
        let d = SerialDwmPim::dw_nn();
        assert!(d.add2(16).cycles > d.add2(8).cycles);
        assert_eq!(
            d.add2(16).cycles - d.op_overhead,
            2 * (d.add2(8).cycles - d.op_overhead)
        );
    }

    #[test]
    fn latency_opt_replicates_area() {
        let d = SerialDwmPim::dw_nn();
        assert!((d.add_latency_opt_area_um2(5) - 5.2).abs() < 1e-9);
        let s = SerialDwmPim::spim();
        assert!((s.add_latency_opt_area_um2(5) - 4.0).abs() < 1e-9);
    }
}
