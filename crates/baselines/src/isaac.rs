//! ISAAC: the ReRAM crossbar CNN accelerator comparison point (Table IV).
//!
//! The paper compares CORUSCANT to ISAAC (Shafiee et al., ISCA'16) at the
//! headline-number granularity: frames per second on AlexNet and LeNet-5
//! full-precision inference. Those two numbers are carried here as the
//! analytic model, together with a throughput-per-network scaling helper
//! for other workloads (ISAAC's crossbars are compute-bound, so FPS
//! scales inversely with multiply-accumulate count).

use serde::{Deserialize, Serialize};

/// AlexNet inference throughput reported for ISAAC in the paper's
/// Table IV (frames per second).
pub const ALEXNET_FPS: f64 = 34.0;

/// LeNet-5 inference throughput reported for ISAAC (frames per second).
pub const LENET_FPS: f64 = 2581.0;

/// Approximate multiply-accumulate count of AlexNet inference.
pub const ALEXNET_MACS: f64 = 724e6;

/// The ISAAC throughput model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Isaac {
    /// Sustained MAC throughput implied by the AlexNet headline number.
    macs_per_second: f64,
}

impl Isaac {
    /// The model anchored to the paper's AlexNet figure.
    pub fn paper() -> Isaac {
        Isaac {
            macs_per_second: ALEXNET_FPS * ALEXNET_MACS,
        }
    }

    /// Estimated FPS for a network of `macs` multiply-accumulates per
    /// frame.
    pub fn fps(&self, macs: f64) -> f64 {
        self.macs_per_second / macs
    }

    /// The reported Table IV FPS for the two evaluated networks.
    pub fn reported_fps(network: &str) -> Option<f64> {
        match network {
            "alexnet" => Some(ALEXNET_FPS),
            "lenet5" => Some(LENET_FPS),
            _ => None,
        }
    }
}

impl Default for Isaac {
    fn default() -> Self {
        Isaac::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchored_to_alexnet() {
        let i = Isaac::paper();
        assert!((i.fps(ALEXNET_MACS) - ALEXNET_FPS).abs() < 1e-6);
    }

    #[test]
    fn fps_scales_inversely_with_macs() {
        let i = Isaac::paper();
        assert!((i.fps(ALEXNET_MACS / 2.0) - 2.0 * ALEXNET_FPS).abs() < 1e-6);
    }

    #[test]
    fn reported_numbers() {
        assert_eq!(Isaac::reported_fps("alexnet"), Some(34.0));
        assert_eq!(Isaac::reported_fps("lenet5"), Some(2581.0));
        assert_eq!(Isaac::reported_fps("vgg"), None);
    }
}
