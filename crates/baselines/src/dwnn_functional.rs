//! A functional bit-serial DW-NN unit (paper §II-C2).
//!
//! DW-NN computes with dedicated circuitry over stacked domains: passing a
//! current through two stacked domains measures their aggregate giant
//! magnetoresistance (GMR), which is low when the magnetizations are
//! parallel and high when anti-parallel — an XOR of the two bits. A
//! precharge sense amplifier (PCSA) over three nanowires compares
//! `PCSA(A, B, C_in)` against `PCSA(Ā, B̄, C̄_in)`, yielding the carry
//! (a 2-of-3 majority). Sum and carry must be produced bit by bit, with
//! the operands shifted into alignment with the GMR stack each step —
//! this serialization is what CORUSCANT's transverse read removes.
//!
//! The cycle accounting reproduces the fitted
//! [`SerialDwmPim::dw_nn`](crate::dwm_pim::SerialDwmPim::dw_nn) cost
//! model exactly, tying the functional and analytic views together.

use crate::dwm_pim::SerialDwmPim;
use crate::BaselineCost;

/// The micro-operations of one DW-NN bit step, in cycles:
/// shift A, shift B (alignment), GMR XOR, second XOR (fold the carry in),
/// PCSA carry comparison, write-back of the sum bit.
pub const BIT_STEP_CYCLES: [(&str, u64); 6] = [
    ("shift A", 1),
    ("shift B", 1),
    ("GMR xor", 1),
    ("xor carry", 1),
    ("PCSA carry", 1),
    ("write sum", 1),
];

/// Fixed control overhead per addition (operand staging, PCSA precharge).
pub const OP_OVERHEAD_CYCLES: u64 = 6;

/// The GMR stacked-domain read: XOR of the two domain magnetizations.
pub fn gmr_xor(a: bool, b: bool) -> bool {
    a ^ b
}

/// The PCSA carry: `PCSA(A,B,Cin) > PCSA(Ā,B̄,C̄in)` resolves to the
/// 2-of-3 majority.
pub fn pcsa_carry(a: bool, b: bool, c_in: bool) -> bool {
    (u8::from(a) + u8::from(b) + u8::from(c_in)) >= 2
}

/// A functional DW-NN adder over bit-serial operands.
#[derive(Debug, Clone, Copy, Default)]
pub struct DwNnUnit;

impl DwNnUnit {
    /// Creates a unit.
    pub fn new() -> DwNnUnit {
        DwNnUnit
    }

    /// Bit-serial addition of two `bits`-bit operands (mod `2^bits`),
    /// returning the sum and the exact cycle cost of the serial loop.
    pub fn add(&self, a: u64, b: u64, bits: u32) -> (u64, BaselineCost) {
        let mut sum = 0u64;
        let mut carry = false;
        let mut cycles = OP_OVERHEAD_CYCLES;
        let step: u64 = BIT_STEP_CYCLES.iter().map(|&(_, c)| c).sum();
        for i in 0..bits {
            let ab = a >> i & 1 == 1;
            let bb = b >> i & 1 == 1;
            // Sum: two consecutive GMR XORs (paper: "sum S is the result
            // of two consecutive XORs").
            let s = gmr_xor(gmr_xor(ab, bb), carry);
            carry = pcsa_carry(ab, bb, carry);
            if s {
                sum |= 1 << i;
            }
            cycles += step;
        }
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        let energy = SerialDwmPim::dw_nn().add2(u64::from(bits)).energy_pj;
        (sum & mask, BaselineCost::new(cycles, energy))
    }

    /// Shift-and-add multiplication (operands stored in one nanowire, so
    /// shifted copies of `a` are summed for each set bit of `b`).
    pub fn multiply(&self, a: u64, b: u64, bits: u32) -> (u64, BaselineCost) {
        let mut acc = 0u64;
        let mut total = BaselineCost::default();
        for i in 0..bits {
            if b >> i & 1 == 1 {
                let (s, c) = self.add(acc, a << i, 2 * bits);
                acc = s;
                total = total.then(c);
            }
        }
        (acc, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmr_and_pcsa_truth_tables() {
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(gmr_xor(a, b), a ^ b);
                for c in [false, true] {
                    let want = (a & b) | (a & c) | (b & c);
                    assert_eq!(pcsa_carry(a, b, c), want);
                }
            }
        }
    }

    #[test]
    fn addition_is_exact_for_all_byte_pairs_sampled() {
        let unit = DwNnUnit::new();
        for a in (0u64..256).step_by(7) {
            for b in (0u64..256).step_by(11) {
                let (s, _) = unit.add(a, b, 8);
                assert_eq!(s, (a + b) & 0xFF, "{a}+{b}");
            }
        }
    }

    #[test]
    fn cycle_count_matches_the_fitted_model() {
        // The functional loop and the fitted Table III model must agree:
        // 6 cycles per bit + 6 overhead = 54 for 8 bits.
        let unit = DwNnUnit::new();
        let (_, cost) = unit.add(123, 45, 8);
        assert_eq!(cost.cycles, 54);
        assert_eq!(cost.cycles, SerialDwmPim::dw_nn().add2(8).cycles);
        let (_, cost16) = unit.add(12345, 6789, 16);
        assert_eq!(cost16.cycles, SerialDwmPim::dw_nn().add2(16).cycles);
    }

    #[test]
    fn multiplication_is_exact() {
        let unit = DwNnUnit::new();
        for (a, b) in [(0u64, 99u64), (255, 255), (173, 219), (1, 1), (128, 2)] {
            let (p, cost) = unit.multiply(a, b, 8);
            assert_eq!(p, a * b, "{a}*{b}");
            if b != 0 {
                assert!(cost.cycles > 0);
            }
        }
    }

    #[test]
    fn coruscant_beats_the_functional_dwnn() {
        // 26 cycles (CORUSCANT 5-op add) vs 54 x 4 staged serial adds.
        let unit = DwNnUnit::new();
        let mut total = BaselineCost::default();
        let mut acc = 0;
        for v in [10u64, 20, 30, 40, 50] {
            let (s, c) = unit.add(acc, v, 8);
            acc = s;
            total = total.then(c);
        }
        assert_eq!(acc, 150);
        assert!(
            total.cycles > 26 * 4,
            "serial DW-NN {} cycles",
            total.cycles
        );
    }
}
