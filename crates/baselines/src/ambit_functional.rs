//! A functional Ambit subarray model (paper §II-C1).
//!
//! Models the DRAM mechanics Ambit computes with:
//!
//! * cells as capacitors sharing charge with the bitline;
//! * **triple-row activation (TRA)**: three wordlines raised at once, the
//!   combined charge driving the sense amplifier to the majority value —
//!   and destructively writing that value back into all three rows;
//! * **RowClone** copies (activate source, let the sense amp refresh,
//!   activate destination to overwrite);
//! * **dual-contact cells (DCC)** whose second contact reads the negated
//!   value onto the bitline.
//!
//! AND/OR are a TRA with a control row of `0`s/`1`s; XOR composes two
//! AND-with-inverted operands and an OR, exactly the decomposition the
//! cost model in [`crate::ambit`] bills.

use serde::{Deserialize, Serialize};

/// Row indices of the reserved compute region (B-group in Ambit's terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeRows {
    /// First scratch data row.
    pub t0: usize,
    /// Second scratch data row.
    pub t1: usize,
    /// Control row (preset to all-0 or all-1 before a TRA).
    pub ctrl: usize,
    /// Dual-contact row (reads inverted).
    pub dcc: usize,
}

/// A functional Ambit subarray: `rows × width` single-bit cells.
#[derive(Debug, Clone)]
pub struct AmbitSubarray {
    rows: Vec<Vec<bool>>,
    width: usize,
    /// Activations performed (the cost unit of the analytic model).
    activations: u64,
}

impl AmbitSubarray {
    /// Creates a zeroed subarray.
    pub fn new(rows: usize, width: usize) -> AmbitSubarray {
        AmbitSubarray {
            rows: vec![vec![false; width]; rows],
            width,
            activations: 0,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Row activations so far (each costs one AAP slot in the analytic
    /// model).
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Writes a row through the sense amplifiers.
    ///
    /// # Panics
    ///
    /// Panics on a bad row index or width mismatch.
    pub fn write_row(&mut self, r: usize, bits: &[bool]) {
        assert_eq!(bits.len(), self.width, "row width");
        self.rows[r].copy_from_slice(bits);
        self.activations += 1;
    }

    /// Reads a row (one activation; the sense amps refresh it).
    pub fn read_row(&mut self, r: usize) -> Vec<bool> {
        self.activations += 1;
        self.rows[r].clone()
    }

    /// RowClone: copies `src` into `dst` via back-to-back activations.
    pub fn rowclone(&mut self, src: usize, dst: usize) {
        let data = self.rows[src].clone();
        self.rows[dst] = data;
        self.activations += 2;
    }

    /// Reads the dual-contact row inverted onto `dst` (a RowClone through
    /// the negated contact).
    pub fn rowclone_inverted(&mut self, src: usize, dst: usize) {
        let data: Vec<bool> = self.rows[src].iter().map(|&b| !b).collect();
        self.rows[dst] = data;
        self.activations += 2;
    }

    /// Triple-row activation: charge sharing drives each bitline to the
    /// majority of the three cells, and the result is written back into
    /// **all three rows** (the destructive step that forces the RowClone
    /// discipline).
    pub fn tra(&mut self, a: usize, b: usize, c: usize) -> Vec<bool> {
        assert!(a != b && b != c && a != c, "TRA needs three distinct rows");
        let out: Vec<bool> = (0..self.width)
            .map(|i| {
                let ones = u8::from(self.rows[a][i])
                    + u8::from(self.rows[b][i])
                    + u8::from(self.rows[c][i]);
                ones >= 2
            })
            .collect();
        self.rows[a].copy_from_slice(&out);
        self.rows[b].copy_from_slice(&out);
        self.rows[c].copy_from_slice(&out);
        self.activations += 1;
        out
    }

    /// Bulk AND of rows `x` and `y` into `dst`, preserving the operands
    /// (RowClone both into scratch, control row = 0, TRA).
    pub fn and(&mut self, x: usize, y: usize, dst: usize, scratch: ComputeRows) {
        self.rowclone(x, scratch.t0);
        self.rowclone(y, scratch.t1);
        self.rows[scratch.ctrl] = vec![false; self.width];
        self.activations += 1; // control preset
        let out = self.tra(scratch.t0, scratch.t1, scratch.ctrl);
        self.rows[dst] = out;
        self.activations += 1; // result copy
    }

    /// Bulk OR (control row = 1).
    pub fn or(&mut self, x: usize, y: usize, dst: usize, scratch: ComputeRows) {
        self.rowclone(x, scratch.t0);
        self.rowclone(y, scratch.t1);
        self.rows[scratch.ctrl] = vec![true; self.width];
        self.activations += 1;
        let out = self.tra(scratch.t0, scratch.t1, scratch.ctrl);
        self.rows[dst] = out;
        self.activations += 1;
    }

    /// Bulk XOR via the paper's decomposition:
    /// `k = x AND NOT y; k' = NOT x AND y; dst = k OR k'`.
    pub fn xor(
        &mut self,
        x: usize,
        y: usize,
        dst: usize,
        scratch: ComputeRows,
        spare: usize,
    ) -> Vec<bool> {
        // k = x AND !y  (stage !y through the DCC).
        self.rowclone(y, scratch.dcc);
        self.rowclone_inverted(scratch.dcc, scratch.t1);
        self.rowclone(x, scratch.t0);
        self.rows[scratch.ctrl] = vec![false; self.width];
        self.activations += 1;
        let k = self.tra(scratch.t0, scratch.t1, scratch.ctrl);
        self.rows[spare] = k;

        // k' = !x AND y.
        self.rowclone(x, scratch.dcc);
        self.rowclone_inverted(scratch.dcc, scratch.t0);
        self.rowclone(y, scratch.t1);
        self.rows[scratch.ctrl] = vec![false; self.width];
        self.activations += 1;
        let _ = self.tra(scratch.t0, scratch.t1, scratch.ctrl);

        // dst = k OR k'  (k' currently sits in t0/t1/ctrl after the TRA).
        self.rowclone(spare, scratch.t1);
        self.rows[scratch.ctrl] = vec![true; self.width];
        self.activations += 1;
        let out = self.tra(scratch.t0, scratch.t1, scratch.ctrl);
        self.rows[dst] = out.clone();
        self.activations += 1;
        out
    }

    /// Direct cell inspection (oracle; no activation charged).
    pub fn peek(&self, r: usize) -> &[bool] {
        &self.rows[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRATCH: ComputeRows = ComputeRows {
        t0: 10,
        t1: 11,
        ctrl: 12,
        dcc: 13,
    };

    fn bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| v >> i & 1 == 1).collect()
    }

    fn val(b: &[bool]) -> u64 {
        b.iter()
            .enumerate()
            .fold(0, |acc, (i, &x)| acc | (u64::from(x) << i))
    }

    fn setup(x: u64, y: u64) -> AmbitSubarray {
        let mut s = AmbitSubarray::new(16, 32);
        s.write_row(0, &bits(x, 32));
        s.write_row(1, &bits(y, 32));
        s
    }

    #[test]
    fn tra_is_majority_and_destructive() {
        let mut s = AmbitSubarray::new(8, 8);
        s.write_row(0, &bits(0b1100_1010, 8));
        s.write_row(1, &bits(0b1010_0110, 8));
        s.write_row(2, &bits(0b0110_1100, 8));
        let out = s.tra(0, 1, 2);
        for (i, &bit) in out.iter().enumerate() {
            let ones = [0b1100_1010u8, 0b1010_0110, 0b0110_1100]
                .iter()
                .filter(|v| *v >> i & 1 == 1)
                .count();
            assert_eq!(bit, ones >= 2, "bit {i}");
        }
        // All three rows now hold the result (destructive).
        assert_eq!(s.peek(0), &out[..]);
        assert_eq!(s.peek(1), &out[..]);
        assert_eq!(s.peek(2), &out[..]);
    }

    #[test]
    fn and_preserves_operands() {
        let (x, y) = (0xF0F0_1234u64, 0x0FF0_4321u64);
        let mut s = setup(x, y);
        s.and(0, 1, 5, SCRATCH);
        assert_eq!(val(s.peek(5)), x & y);
        assert_eq!(val(s.peek(0)), x, "operand x survives via RowClone");
        assert_eq!(val(s.peek(1)), y);
    }

    #[test]
    fn or_matches() {
        let (x, y) = (0xA5A5u64, 0x0F0Fu64);
        let mut s = setup(x, y);
        s.or(0, 1, 6, SCRATCH);
        assert_eq!(val(s.peek(6)), x | y);
    }

    #[test]
    fn xor_via_the_paper_decomposition() {
        for (x, y) in [(0xFFFFu64, 0x0F0Fu64), (0x1234, 0x4321), (0, 0xFFFF)] {
            let mut s = setup(x, y);
            let out = s.xor(0, 1, 7, SCRATCH, 9);
            assert_eq!(val(&out), x ^ y, "{x:x} ^ {y:x}");
            assert_eq!(val(s.peek(7)), x ^ y);
        }
    }

    #[test]
    fn activation_counts_track_operation_weight() {
        // XOR must cost clearly more activations than AND — the structural
        // fact behind the 4-vs-7 AAP billing of the cost model.
        let mut s_and = setup(1, 2);
        s_and.and(0, 1, 5, SCRATCH);
        let and_acts = s_and.activations() - 2; // minus the setup writes
        let mut s_xor = setup(1, 2);
        s_xor.xor(0, 1, 5, SCRATCH, 9);
        let xor_acts = s_xor.activations() - 2;
        assert!(
            xor_acts > and_acts + 4,
            "xor {xor_acts} vs and {and_acts} activations"
        );
    }

    #[test]
    fn dcc_reads_inverted() {
        let mut s = AmbitSubarray::new(8, 16);
        s.write_row(0, &bits(0b1010_1010_1010_1010, 16));
        s.rowclone(0, 3);
        s.rowclone_inverted(3, 4);
        assert_eq!(val(s.peek(4)), (!0b1010_1010_1010_1010u64) & 0xFFFF);
    }
}
