//! ELP²IM: efficient low-power bitwise PIM in DRAM (paper §II-C1).
//!
//! ELP²IM performs logic in place by steering the sense amplifier through
//! pseudo-precharge states instead of cloning rows, eliminating most of
//! Ambit's copy traffic. The paper reports a 3.2× performance improvement
//! over Ambit on bitmap/table-scan workloads, and a carry-lookahead
//! addition step of 40 cycles (§IV-A, used for the DrAcc/NID CNN modes).

use crate::ambit::Ambit;
use crate::BaselineCost;
use serde::{Deserialize, Serialize};

/// Energy per pseudo-precharge operation, in pJ (roughly one row
/// activation without the copy traffic).
const PSEUDO_PRECHARGE_ENERGY_PJ: f64 = 110.0;

/// The ELP²IM cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Elp2im {
    /// Cycles of one two-operand bitwise operation (Ambit's four AAPs
    /// divided by the reported 3.2× speedup).
    bitwise2_cycles: u64,
    /// Cycles of one packed addition step (paper: 40).
    add_step_cycles: u64,
}

impl Elp2im {
    /// The model with the paper's constants.
    pub fn paper() -> Elp2im {
        let ambit = Ambit::paper();
        Elp2im {
            bitwise2_cycles: (ambit.bitwise2().cycles as f64 / 3.2).round() as u64,
            add_step_cycles: 40,
        }
    }

    /// Two-operand bulk bitwise operation, in place.
    pub fn bitwise2(&self) -> BaselineCost {
        BaselineCost::new(self.bitwise2_cycles, 2.0 * PSEUDO_PRECHARGE_ENERGY_PJ)
    }

    /// XOR needs two pseudo-precharge passes.
    pub fn xor2(&self) -> BaselineCost {
        self.bitwise2().repeat(2)
    }

    /// `k`-operand bitwise op: still `k − 1` sequential two-operand ops.
    pub fn bitwise_k(&self, k: usize) -> BaselineCost {
        assert!(k >= 2, "need at least two operands");
        self.bitwise2().repeat((k - 1) as u64)
    }

    /// One packed-row addition step (40 cycles, paper §IV-A).
    pub fn add_step(&self) -> BaselineCost {
        BaselineCost::new(self.add_step_cycles, 6.0 * PSEUDO_PRECHARGE_ENERGY_PJ)
    }

    /// Binary-tree reduction of `n` packed rows.
    pub fn reduce_rows(&self, n: u64) -> BaselineCost {
        if n <= 1 {
            return BaselineCost::default();
        }
        let levels = 64 - (n - 1).leading_zeros() as u64;
        self.add_step().repeat(levels)
    }
}

impl Default for Elp2im {
    fn default() -> Self {
        Elp2im::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_than_ambit_by_3_2x_on_bitwise() {
        let a = Ambit::paper();
        let e = Elp2im::paper();
        let ratio = a.bitwise2().cycles as f64 / e.bitwise2().cycles as f64;
        assert!((ratio - 3.2).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn add_step_is_40_cycles() {
        assert_eq!(Elp2im::paper().add_step().cycles, 40);
    }

    #[test]
    fn alexnet_first_reduction_is_9_steps() {
        // Paper §IV-A: 362 additions -> 9 steps x 40 cycles = 360 cycles.
        let e = Elp2im::paper();
        assert_eq!(e.reduce_rows(362).cycles, 360);
    }

    #[test]
    fn faster_than_ambit_on_additions_but_less_than_3x() {
        let a = Ambit::paper();
        let e = Elp2im::paper();
        let ratio = a.add_step().cycles as f64 / e.add_step().cycles as f64;
        assert!(ratio > 1.0 && ratio < 1.5, "add ratio {ratio}");
    }

    #[test]
    fn multi_operand_still_linear() {
        let e = Elp2im::paper();
        assert_eq!(e.bitwise_k(4).cycles, 3 * e.bitwise2().cycles);
    }
}
