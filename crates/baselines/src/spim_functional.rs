//! A functional SPIM compute unit (paper §II-C2).
//!
//! SPIM extends DWM storage with dedicated skyrmion-based computing
//! units: custom ferromagnetic domains are physically linked by channels
//! that realize OR (skyrmions from either input propagate to the output
//! junction) and AND (the junction only fires when both inputs deliver a
//! skyrmion). Permanently merging such domains and channels composes full
//! adders, which SPIM chains to perform addition and shift-and-add
//! multiplication.
//!
//! This model evaluates the skyrmion gate network bit-exactly and
//! reproduces the fitted [`SerialDwmPim::spim`] cycle counts, tying the
//! functional and analytic views together (as `dwnn_functional` does for
//! DW-NN).

use crate::dwm_pim::SerialDwmPim;
use crate::BaselineCost;

/// Skyrmion junction OR: a skyrmion on either input channel reaches the
/// output.
pub fn skyrmion_or(a: bool, b: bool) -> bool {
    a | b
}

/// Skyrmion junction AND: the output channel only fires when skyrmions
/// arrive on both inputs.
pub fn skyrmion_and(a: bool, b: bool) -> bool {
    a & b
}

/// A full adder composed of merged skyrmion junctions (the paper's
/// permanently linked domain/channel structure). Returns `(sum, carry)`.
///
/// Sum and carry are built from AND/OR junctions and duplicated inputs:
/// `carry = ab + c(a + b)`, `sum = (a + b + c) AND NOT(carry) OR abc`,
/// realized here with the standard junction decomposition.
pub fn skyrmion_full_adder(a: bool, b: bool, c: bool) -> (bool, bool) {
    let ab_or = skyrmion_or(a, b);
    let ab_and = skyrmion_and(a, b);
    let carry = skyrmion_or(ab_and, skyrmion_and(c, ab_or));
    // Majority-complement trick with one more junction layer: sum fires
    // when an odd number of skyrmions arrive.
    let any = skyrmion_or(ab_or, c);
    let all = skyrmion_and(ab_and, c);
    let sum = skyrmion_or(all, skyrmion_and(any, !carry));
    (sum, carry)
}

/// A functional SPIM unit: a chained full-adder column fed bit-serially.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpimUnit;

impl SpimUnit {
    /// Creates a unit.
    pub fn new() -> SpimUnit {
        SpimUnit
    }

    /// Bit-serial addition through the skyrmion full-adder chain,
    /// returning the sum (mod `2^bits`) and the cycle cost matching the
    /// fitted model (6 cycles per bit + 1 control cycle).
    pub fn add(&self, a: u64, b: u64, bits: u32) -> (u64, BaselineCost) {
        let mut sum = 0u64;
        let mut carry = false;
        for i in 0..bits {
            let (s, c) = skyrmion_full_adder(a >> i & 1 == 1, b >> i & 1 == 1, carry);
            carry = c;
            if s {
                sum |= 1 << i;
            }
        }
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        let model = SerialDwmPim::spim();
        (
            sum & mask,
            BaselineCost::new(
                model.cycles_per_bit * u64::from(bits) + model.op_overhead,
                model.add2(u64::from(bits)).energy_pj,
            ),
        )
    }

    /// Shift-and-add multiplication on the adder chain.
    pub fn multiply(&self, a: u64, b: u64, bits: u32) -> (u64, BaselineCost) {
        let mut acc = 0u64;
        let mut total = BaselineCost::default();
        for i in 0..bits {
            if b >> i & 1 == 1 {
                let (s, c) = self.add(acc, a << i, 2 * bits);
                acc = s;
                total = total.then(c);
            }
        }
        (acc, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let (s, cy) = skyrmion_full_adder(a, b, c);
                    let ones = u8::from(a) + u8::from(b) + u8::from(c);
                    assert_eq!(s, ones % 2 == 1, "sum for {a}{b}{c}");
                    assert_eq!(cy, ones >= 2, "carry for {a}{b}{c}");
                }
            }
        }
    }

    #[test]
    fn addition_exact_and_cycle_accurate() {
        let unit = SpimUnit::new();
        for a in (0u64..256).step_by(13) {
            for b in (0u64..256).step_by(17) {
                let (s, cost) = unit.add(a, b, 8);
                assert_eq!(s, (a + b) & 0xFF);
                assert_eq!(cost.cycles, 49, "SPIM 2-op add = 49 cycles");
            }
        }
    }

    #[test]
    fn multiplication_exact() {
        let unit = SpimUnit::new();
        for (a, b) in [(173u64, 219u64), (255, 255), (0, 77), (128, 3)] {
            let (p, _) = unit.multiply(a, b, 8);
            assert_eq!(p, a * b);
        }
    }

    #[test]
    fn spim_faster_than_dwnn_functionally() {
        use crate::dwnn_functional::DwNnUnit;
        let spim = SpimUnit::new();
        let dwnn = DwNnUnit::new();
        let (_, cs) = spim.add(99, 44, 8);
        let (_, cd) = dwnn.add(99, 44, 8);
        assert!(
            cs.cycles < cd.cycles,
            "SPIM {} vs DW-NN {}",
            cs.cycles,
            cd.cycles
        );
    }

    #[test]
    fn coruscant_still_wins() {
        // CORUSCANT's 26-cycle 5-op add beats four chained SPIM adds.
        let unit = SpimUnit::new();
        let mut cycles = 0;
        let mut acc = 0u64;
        for v in [1u64, 2, 3, 4, 5] {
            let (s, c) = unit.add(acc, v, 8);
            acc = s;
            cycles += c.cycles;
        }
        assert_eq!(acc, 15);
        assert!(cycles > 26 * 4);
    }
}
