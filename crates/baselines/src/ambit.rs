//! Ambit: bulk-bitwise PIM in commodity DRAM (paper §II-C1).
//!
//! Ambit activates three DRAM rows at once and lets charge sharing drive
//! the sense amplifier to the majority value; with a control row of `0`s
//! that computes AND, with `1`s OR. The operation is destructive, so
//! operands are first duplicated with RowClone, and inverted operands come
//! from dual-contact cells (DCC). XOR therefore decomposes into two
//! AND-with-inverted plus an OR.
//!
//! The cost unit is the *AAP* (ACTIVATE-ACTIVATE-PRECHARGE) command pair;
//! with the paper's Table II DRAM timing one AAP is `tRAS + tRP` memory
//! cycles. Command counts per operation follow the Ambit paper's
//! primitives: a two-operand AND/OR takes four AAPs (two RowClones, the
//! triple-row activation, and the result copy), XOR takes seven.

use crate::BaselineCost;
use coruscant_mem::timing::DeviceTiming;
use serde::{Deserialize, Serialize};

/// Energy per DRAM row activation-precharge, in pJ (a full 8 KB row at
/// ~0.25 nJ per activation, scaled per 512-bit tile slice). Used for
/// relative comparisons only.
const AAP_ENERGY_PJ: f64 = 250.0;

/// The Ambit cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ambit {
    timing: DeviceTiming,
    /// Cycles of one AAP command pair.
    aap_cycles: u64,
    /// Cycles of one 8-bit addition step (DrAcc-style carry-lookahead on
    /// Ambit primitives; calibrated so the Ambit/ELP²IM CNN gap matches
    /// Table IV).
    add_step_cycles: u64,
}

impl Ambit {
    /// The model with the paper's DRAM timing.
    pub fn paper() -> Ambit {
        let timing = DeviceTiming::DRAM_PAPER;
        Ambit {
            timing,
            aap_cycles: timing.t_ras + timing.t_rp,
            add_step_cycles: 46,
        }
    }

    /// Cycles of one AAP.
    pub fn aap_cycles(&self) -> u64 {
        self.aap_cycles
    }

    /// Cost of a two-operand bulk AND/OR/NAND/NOR over one row pair:
    /// 4 AAPs (RowClone ×2, TRA, result copy).
    pub fn bitwise2(&self) -> BaselineCost {
        BaselineCost::new(4 * self.aap_cycles, 4.0 * AAP_ENERGY_PJ)
    }

    /// Cost of a two-operand bulk XOR/XNOR: 7 AAPs (two DCC inversions,
    /// two ANDs, one OR, per the Ambit decomposition).
    pub fn xor2(&self) -> BaselineCost {
        BaselineCost::new(7 * self.aap_cycles, 7.0 * AAP_ENERGY_PJ)
    }

    /// Cost of a bulk NOT via a dual-contact cell: 2 AAPs.
    pub fn not(&self) -> BaselineCost {
        BaselineCost::new(2 * self.aap_cycles, 2.0 * AAP_ENERGY_PJ)
    }

    /// A `k`-operand bitwise op decomposes into `k − 1` two-operand ops —
    /// Ambit has no multi-operand primitive (the CORUSCANT advantage in
    /// Fig. 12).
    pub fn bitwise_k(&self, k: usize) -> BaselineCost {
        assert!(k >= 2, "need at least two operands");
        self.bitwise2().repeat((k - 1) as u64)
    }

    /// One packed-row addition step (all lanes in parallel), DrAcc-style.
    pub fn add_step(&self) -> BaselineCost {
        BaselineCost::new(self.add_step_cycles, 8.0 * AAP_ENERGY_PJ)
    }

    /// Reduction of `n` packed rows by a binary addition tree:
    /// `ceil(log2 n)` sequential steps (rows in one level add in parallel
    /// across subarrays, paper §IV-A).
    pub fn reduce_rows(&self, n: u64) -> BaselineCost {
        if n <= 1 {
            return BaselineCost::default();
        }
        let levels = 64 - (n - 1).leading_zeros() as u64;
        self.add_step().repeat(levels)
    }
}

impl Default for Ambit {
    fn default() -> Self {
        Ambit::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aap_is_ras_plus_rp() {
        let a = Ambit::paper();
        assert_eq!(a.aap_cycles(), 28);
    }

    #[test]
    fn xor_costs_more_than_and() {
        let a = Ambit::paper();
        assert!(a.xor2().cycles > a.bitwise2().cycles);
        assert!(a.not().cycles < a.bitwise2().cycles);
    }

    #[test]
    fn multi_operand_scales_linearly() {
        let a = Ambit::paper();
        assert_eq!(a.bitwise_k(2).cycles, a.bitwise2().cycles);
        assert_eq!(a.bitwise_k(5).cycles, 4 * a.bitwise2().cycles);
    }

    #[test]
    fn reduction_tree_is_logarithmic() {
        let a = Ambit::paper();
        assert_eq!(a.reduce_rows(1).cycles, 0);
        assert_eq!(a.reduce_rows(2).cycles, a.add_step().cycles);
        // Paper §IV-A: 362 additions -> 9 steps.
        assert_eq!(a.reduce_rows(362).cycles, 9 * a.add_step().cycles);
    }

    #[test]
    #[should_panic(expected = "two operands")]
    fn bitwise_k_needs_two() {
        Ambit::paper().bitwise_k(1);
    }
}
