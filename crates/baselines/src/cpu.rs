//! The non-PIM baseline: a CPU computing over main memory (paper §V-C).
//!
//! Every operand crosses the memory bus before the CPU can compute, so a
//! kernel's cost is its memory-access latency (through the DRAM or DWM
//! controller timing) plus bus transfer energy plus the per-op compute
//! energy of Table II. This is the baseline the polybench comparison of
//! Figs. 10–11 normalizes against.

use crate::BaselineCost;
use coruscant_mem::timing::{DeviceTiming, Protocol};
use coruscant_racetrack::energy::CpuEnergyModel;
use serde::{Deserialize, Serialize};

/// Which main memory backs the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuMemory {
    /// Conventional DRAM.
    Dram,
    /// DWM (racetrack) main memory, no PIM.
    Dwm,
}

/// A CPU + main-memory cost model for arithmetic kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuBaseline {
    memory: CpuMemory,
    timing: DeviceTiming,
    energy: CpuEnergyModel,
    /// Average DWM shift distance per row miss (data-placement dependent;
    /// ShiftsReduce-style placement keeps it small).
    avg_shift: u64,
}

impl CpuBaseline {
    /// CPU over DRAM with the paper's Table II timing.
    pub fn dram() -> CpuBaseline {
        CpuBaseline {
            memory: CpuMemory::Dram,
            timing: DeviceTiming::DRAM_PAPER,
            energy: CpuEnergyModel::paper(),
            avg_shift: 0,
        }
    }

    /// CPU over DWM with the paper's Table II timing and an average shift
    /// distance of 4 domains per miss.
    pub fn dwm() -> CpuBaseline {
        CpuBaseline {
            memory: CpuMemory::Dwm,
            timing: DeviceTiming::DWM_PAPER,
            energy: CpuEnergyModel::paper(),
            avg_shift: 4,
        }
    }

    /// The memory technology.
    pub fn memory(&self) -> CpuMemory {
        self.memory
    }

    /// The timing profile in use.
    pub fn timing(&self) -> &DeviceTiming {
        &self.timing
    }

    /// Average memory-access latency in memory cycles, given a row-buffer
    /// hit rate in `[0, 1]`.
    pub fn access_latency(&self, hit_rate: f64) -> f64 {
        let shift = match self.timing.protocol {
            Protocol::Dram => 0,
            Protocol::Dwm => self.avg_shift,
        };
        hit_rate * self.timing.row_hit() as f64
            + (1.0 - hit_rate) * self.timing.row_miss(shift) as f64
    }

    /// Cost of a kernel that performs `adds` additions and `mults`
    /// multiplications over `bytes_moved` bytes of operand/result traffic,
    /// issuing `accesses` memory requests at the given row hit rate.
    ///
    /// Latency assumes the kernel is memory-bound (compute overlaps with
    /// outstanding misses), which is the regime the paper's memory-wall
    /// argument addresses.
    pub fn kernel(
        &self,
        adds: u64,
        mults: u64,
        bytes_moved: u64,
        accesses: u64,
        hit_rate: f64,
    ) -> BaselineCost {
        let latency = self.access_latency(hit_rate) * accesses as f64;
        let energy = self.energy.kernel_energy_pj(adds, mults, bytes_moved);
        BaselineCost::new(latency.round() as u64, energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dwm_beats_dram_on_access_latency() {
        // Paper §V-C: DRAM is slower than DWM because, despite the shift
        // term, DWM's peripheral circuitry is faster (9-4-S-4-4 vs
        // 20-8-8-8-8).
        let dram = CpuBaseline::dram();
        let dwm = CpuBaseline::dwm();
        for hr in [0.0, 0.3, 0.6, 0.9] {
            assert!(
                dwm.access_latency(hr) < dram.access_latency(hr),
                "hit rate {hr}"
            );
        }
    }

    #[test]
    fn energy_dominated_by_movement() {
        let cpu = CpuBaseline::dwm();
        // One 32-bit add over two operands + result = 12 bytes moved.
        let c = cpu.kernel(1, 0, 12, 3, 0.5);
        let movement = 12.0 * 1250.0;
        assert!(c.energy_pj > movement, "compute energy must add on top");
        assert!(movement / c.energy_pj > 0.9, "movement dominates");
    }

    #[test]
    fn latency_scales_with_accesses() {
        let cpu = CpuBaseline::dram();
        let one = cpu.kernel(1, 0, 12, 3, 0.5).cycles;
        let ten = cpu.kernel(10, 0, 120, 30, 0.5).cycles;
        assert_eq!(ten, one * 10);
    }

    #[test]
    fn higher_hit_rate_is_faster() {
        let cpu = CpuBaseline::dwm();
        assert!(cpu.access_latency(0.9) < cpu.access_latency(0.1));
    }
}
