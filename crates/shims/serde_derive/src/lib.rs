//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde
//! (and its `syn`/`quote` dependency tree) cannot be fetched. This crate
//! derives `Serialize`/`Deserialize` for the vendored `serde` facade in
//! `crates/shims/serde`, which models data as a JSON-style `Value` tree.
//!
//! The parser is hand-rolled over `proc_macro::TokenStream` and supports
//! the shapes this workspace uses: structs with named fields, tuple and
//! unit structs, and enums whose variants are units (optionally with
//! discriminants), tuples, or named-field records. Generic types are not
//! supported and produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: named (`Some(name)`) or positional (`None`).
struct Field {
    name: Option<String>,
}

enum Shape {
    /// `struct S;`
    Unit,
    /// `struct S(T, U);` — arity recorded via the fields vec.
    Tuple(Vec<Field>),
    /// `struct S { a: T }`
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                // Optional `(crate)` / `(super)` restriction group.
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generics (on `{name}`)"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match it.next() {
                None => Shape::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                other => return Err(format!("unexpected struct body {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive serde for `{other}`")),
    }
}

/// Parses `attr* vis? name : type ,`-separated named fields; only the
/// names matter (serialization goes through trait method calls).
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut angle: i32 = 0;
        for tt in it.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name: Some(name) });
    }
    Ok(fields)
}

/// Counts tuple-struct fields (top-level comma-separated types).
fn parse_tuple_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut angle: i32 = 0;
    let mut saw_tokens = false;
    for tt in body {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '<' => {
                angle += 1;
                saw_tokens = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == '>' => {
                angle -= 1;
                saw_tokens = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == ',' && angle == 0 => {
                fields.push(Field { name: None });
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        fields.push(Field { name: None });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '#' {
                it.next();
                it.next();
            } else {
                break;
            }
        }
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let mut shape = Shape::Unit;
        // Optional payload, discriminant, then the separating comma.
        loop {
            match it.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    // Discriminant: skip the expression until the comma.
                    for tt in it.by_ref() {
                        if let TokenTree::Punct(p) = tt {
                            if p.as_char() == ',' {
                                break;
                            }
                        }
                    }
                    break;
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    shape = Shape::Tuple(parse_tuple_fields(g.stream()));
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    shape = Shape::Named(parse_named_fields(g.stream())?);
                }
                other => return Err(format!("unexpected token in variant `{name}`: {other:?}")),
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn serialize_shape(receiver: &str, shape: &Shape, out: &mut String) {
    match shape {
        Shape::Unit => out.push_str("serde::json::Value::Null"),
        Shape::Tuple(fields) => {
            if fields.len() == 1 {
                out.push_str(&format!("serde::Serialize::to_value(&{receiver}0)"));
            } else {
                out.push_str("serde::json::Value::Array(vec![");
                for i in 0..fields.len() {
                    out.push_str(&format!("serde::Serialize::to_value(&{receiver}{i}),"));
                }
                out.push_str("])");
            }
        }
        Shape::Named(fields) => {
            out.push_str("serde::json::Value::Object(vec![");
            for f in fields {
                let n = f.name.as_ref().unwrap();
                out.push_str(&format!(
                    "(\"{n}\".to_string(), serde::Serialize::to_value(&{receiver}{n})),"
                ));
            }
            out.push_str("])");
        }
    }
}

fn derive_struct_serialize(name: &str, shape: &Shape) -> String {
    let mut body = String::new();
    serialize_shape("self.", shape, &mut body);
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::json::Value {{ {body} }}\n\
         }}\n"
    )
}

fn derive_struct_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("{{ serde::de::expect_null(value)?; Ok({name}) }}"),
        Shape::Tuple(fields) => {
            if fields.len() == 1 {
                format!("Ok({name}(serde::Deserialize::from_value(value)?))")
            } else {
                let mut s = format!(
                    "{{ let items = serde::de::expect_array(value, {n})?;\nOk({name}(",
                    n = fields.len()
                );
                for i in 0..fields.len() {
                    s.push_str(&format!("serde::Deserialize::from_value(&items[{i}])?,"));
                }
                s.push_str(")) }");
                s
            }
        }
        Shape::Named(fields) => {
            let mut s = format!("Ok({name} {{");
            for f in fields {
                let n = f.name.as_ref().unwrap();
                s.push_str(&format!("{n}: serde::de::field(value, \"{n}\")?,"));
            }
            s.push_str("})");
            s
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::json::Value) -> ::std::result::Result<Self, serde::json::Error> {{ {body} }}\n\
         }}\n"
    )
}

fn derive_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vn} => serde::json::Value::Str(\"{vn}\".to_string()),\n"
            )),
            Shape::Tuple(fields) => {
                let binds: Vec<String> = (0..fields.len()).map(|i| format!("f{i}")).collect();
                let payload = if fields.len() == 1 {
                    "serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("serde::Serialize::to_value({b})"))
                        .collect();
                    format!("serde::json::Value::Array(vec![{}])", items.join(","))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({bl}) => serde::json::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                    bl = binds.join(","),
                ));
            }
            Shape::Named(fields) => {
                let names: Vec<&str> = fields.iter().map(|f| f.name.as_deref().unwrap()).collect();
                let items: Vec<String> = names
                    .iter()
                    .map(|n| format!("(\"{n}\".to_string(), serde::Serialize::to_value({n}))"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {bl} }} => serde::json::Value::Object(vec![(\"{vn}\".to_string(), serde::json::Value::Object(vec![{il}]))]),\n",
                    bl = names.join(","),
                    il = items.join(","),
                ));
            }
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::json::Value {{ match self {{ {arms} }} }}\n\
         }}\n"
    )
}

fn derive_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as a bare string; payload variants as a
    // single-key object {"Variant": payload}.
    let mut unit_arms = String::new();
    let mut keyed_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => {
                unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
            }
            Shape::Tuple(fields) => {
                let body = if fields.len() == 1 {
                    format!("Ok({name}::{vn}(serde::Deserialize::from_value(payload)?))")
                } else {
                    let mut s = format!(
                        "{{ let items = serde::de::expect_array(payload, {n})?; Ok({name}::{vn}(",
                        n = fields.len()
                    );
                    for i in 0..fields.len() {
                        s.push_str(&format!("serde::Deserialize::from_value(&items[{i}])?,"));
                    }
                    s.push_str(")) }");
                    s
                };
                keyed_arms.push_str(&format!("\"{vn}\" => return {body},\n"));
            }
            Shape::Named(fields) => {
                let mut s = format!("Ok({name}::{vn} {{");
                for f in fields {
                    let n = f.name.as_ref().unwrap();
                    s.push_str(&format!("{n}: serde::de::field(payload, \"{n}\")?,"));
                }
                s.push_str("})");
                keyed_arms.push_str(&format!("\"{vn}\" => return {s},\n"));
            }
        }
    }
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::json::Value) -> ::std::result::Result<Self, serde::json::Error> {{\n\
             match value {{\n\
                 serde::json::Value::Str(s) => match s.as_str() {{\n\
                     {unit_arms}\n\
                     other => Err(serde::json::Error::msg(format!(\"unknown {name} variant {{other}}\"))),\n\
                 }},\n\
                 serde::json::Value::Object(entries) if entries.len() == 1 => {{\n\
                     let (key, payload) = (&entries[0].0, &entries[0].1);\n\
                     #[allow(clippy::match_single_binding)]\n\
                     match key.as_str() {{\n\
                         {keyed_arms}\n\
                         other => Err(serde::json::Error::msg(format!(\"unknown {name} variant {{other}}\"))),\n\
                     }}\n\
                 }}\n\
                 other => Err(serde::json::Error::msg(format!(\"bad {name} encoding: {{other:?}}\"))),\n\
             }}\n\
         }}\n\
         }}\n"
    )
}

fn emit(code: String) -> TokenStream {
    code.parse().expect("derive produced invalid Rust")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the shim `serde::Serialize` (tree-building) implementation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, shape }) => emit(derive_struct_serialize(&name, &shape)),
        Ok(Item::Enum { name, variants }) => emit(derive_enum_serialize(&name, &variants)),
        Err(e) => compile_error(&e),
    }
}

/// Derives the shim `serde::Deserialize` (tree-reading) implementation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, shape }) => emit(derive_struct_deserialize(&name, &shape)),
        Ok(Item::Enum { name, variants }) => emit(derive_enum_deserialize(&name, &variants)),
        Err(e) => compile_error(&e),
    }
}
