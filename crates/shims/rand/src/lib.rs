//! Offline stand-in for `rand` 0.9.
//!
//! Implements exactly the surface this workspace uses — `SmallRng` /
//! `StdRng` seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods [`Rng::random`] and [`Rng::random_range`] — backed by
//! SplitMix64. Deterministic for a given seed, which is all the simulators
//! and tests require; this is not a cryptographic or statistically
//! rigorous generator.

/// Core of a random number generator: a 64-bit output stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl StandardUniform for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}
impl StandardUniform for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}
impl StandardUniform for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}
impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform sample over `T`'s whole domain.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// A biased coin flip.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }

    /// The "standard" generator; in the shim, identical to [`SmallRng`].
    #[derive(Debug, Clone)]
    pub struct StdRng {
        inner: SmallRng,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                inner: SmallRng::seed_from_u64(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(99);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.random::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
