//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!` — backed by a simple wall-clock
//! timer: a short warm-up, then timed batches until a measurement budget
//! is spent, reporting the median ns/iteration to stdout.
//!
//! No statistics, plots, or saved baselines; the goal is that `cargo
//! bench` runs and prints usable numbers in an offline build.

use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, printed `name/param`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A per-iteration work amount, used to report element/byte rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs closures and measures their time.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: f64,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: find how many iterations
        // fit in ~1/10 of the budget.
        let warmup_target = self.budget / 10;
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let t = start.elapsed();
            if t >= warmup_target || batch >= 1 << 20 {
                let per_iter = t.max(Duration::from_nanos(1)) / batch as u32;
                batch = (warmup_target.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
                break;
            }
            batch *= 2;
        }
        // Timed batches.
        let mut samples = Vec::new();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.budget && samples.len() < 64 {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let t = start.elapsed();
            samples.push(t.as_secs_f64() / batch as f64);
            total += t;
            iters += batch;
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_sec = if b.ns_per_iter > 0.0 {
        1e9 / b.ns_per_iter
    } else {
        f64::INFINITY
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(" {:>14.1} elem/s", per_sec * n as f64),
        Some(Throughput::Bytes(n)) => format!(" {:>14.1} B/s", per_sec * n as f64),
        None => String::new(),
    };
    println!(
        "bench {name:<48} {:>14.1} ns/iter {:>14.1} iter/s{rate} ({} iters)",
        b.ns_per_iter, per_sec, b.iters
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of the group's benchmarks, adding
    /// an element/byte rate column to the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.criterion.bencher();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.criterion.bencher();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark harness handle.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep runs quick: the shim targets "numbers in seconds", not
        // statistical rigor. CRITERION_SHIM_MS overrides the per-bench
        // measurement budget.
        let ms = std::env::var("CRITERION_SHIM_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    fn bencher(&self) -> Bencher {
        Bencher {
            ns_per_iter: 0.0,
            iters: 0,
            budget: self.budget,
        }
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmarks `f` under `name` outside any group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher();
        f(&mut b);
        report(&name.to_string(), &b, None);
        self
    }
}

/// Declares a group-runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_nothing(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("inc", 1), &1u64, |b, &x| {
            b.iter(|| x + 1);
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| 2 + 2));
    }

    criterion_group!(benches, bench_nothing);

    #[test]
    fn harness_runs() {
        std::env::set_var("CRITERION_SHIM_MS", "10");
        benches();
    }
}
