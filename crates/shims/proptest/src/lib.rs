//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(...)]`,
//! `pat in strategy` and `pat: Type` parameters), range and collection
//! strategies, [`Just`], [`prop_oneof!`], [`any`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Unlike the real proptest there is no shrinking and no persisted failure
//! corpus: each test runs a fixed number of deterministic random cases
//! (seeded per test name), which keeps CI reproducible without disk state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of cases run per property when no config overrides it.
pub const DEFAULT_CASES: u32 = 64;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// The deterministic generator threaded through strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// A generator seeded from the test name (stable across runs).
    pub fn for_test(name: &str) -> TestRng {
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    fn unit_f64(&mut self) -> f64 {
        self.inner.random()
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_int_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between boxed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value uniformly over the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The canonical strategy for `T` (`any::<T>()`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`]: a fixed length or a length range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    /// A strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len)`: a vector whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }
}

/// Drives one property: runs `cfg.cases` sampled cases, panicking on the
/// first failure. Rejected cases (via `prop_assume!`) are retried up to a
/// bounded factor so selective properties still see enough inputs.
pub fn run_cases<F>(name: &str, cfg: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    let mut ran = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cfg.cases.saturating_mul(10).max(100);
    while ran < cfg.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!(
                "property `{name}`: too many rejected cases ({ran}/{} ran after {attempts} attempts)",
                cfg.cases
            );
        }
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed on case {ran}: {msg}")
            }
        }
    }
}

/// The usual wildcard import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// The property-test entry macro. Parameters may be `pat in strategy` or
/// `name: Type` (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    // Entry: optional block-level config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), $cfg, |__rng| {
                $crate::proptest!(@bind __rng, $($params)*);
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    // Parameter binding: `pat in strategy`.
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $pat:pat in $strategy:expr) => {
        let $pat = $crate::Strategy::sample(&($strategy), $rng);
    };
    (@bind $rng:ident, $pat:pat in $strategy:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strategy), $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    // Parameter binding: `name: Type`.
    (@bind $rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
    };
    (@bind $rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    // Entry without a config attribute.
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{run_cases, TestRng};

    fn arb_small() -> impl Strategy<Value = usize> {
        prop_oneof![Just(3usize), Just(5usize), Just(7usize)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_inclusive(x in 0u8..=7) {
            prop_assert!(x <= 7);
        }

        #[test]
        fn typed_params(v: u64, flag: bool) {
            let _ = flag;
            prop_assert_eq!(v, v);
        }

        #[test]
        fn vec_and_tuple(
            pairs in collection::vec((0usize..32, any::<u64>()), 1..24),
            w in arb_small(),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 24);
            prop_assert!([3, 5, 7].contains(&w));
            for (i, _) in &pairs {
                prop_assert!(*i < 32);
            }
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_panic_with_case_info() {
        run_cases("failing", ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn nested_vec_strategy() {
        let mut rng = TestRng::for_test("nested");
        let s = collection::vec(collection::vec(0u64..256, 8), 2..=5);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|inner| inner.len() == 8));
        }
    }
}
