//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a minimal serde-compatible facade: the same `use serde::{Serialize,
//! Deserialize}` imports and `#[derive(...)]` attributes work, backed by a
//! JSON-style [`json::Value`] tree instead of serde's visitor machinery.
//!
//! The surface is deliberately small — exactly what this repository needs:
//!
//! * [`Serialize`] / [`Deserialize`] traits (value-tree based),
//! * derive macros re-exported from the sibling `serde_derive` shim,
//! * [`json::to_string`] / [`json::from_str`] for a real text round-trip.
//!
//! Integers round-trip exactly (`u64`/`i64` are kept out of `f64`), which
//! the trace and stats snapshots rely on.

// The derive macros emit `serde::`-rooted paths; alias this crate to its
// own name so the derives also work in this crate's tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Serialization into the shim's JSON-style value tree.
pub trait Serialize {
    /// Converts `self` to a [`json::Value`].
    fn to_value(&self) -> json::Value;
}

/// Deserialization from the shim's JSON-style value tree.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a [`json::Value`].
    fn from_value(value: &json::Value) -> Result<Self, json::Error>;
}

/// Helpers used by the generated derive code.
pub mod de {
    use crate::json::{Error, Value};
    use crate::Deserialize;

    /// Looks up `name` in an object and deserializes it.
    pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| T::from_value(v))
                .unwrap_or_else(|| Err(Error::msg(format!("missing field `{name}`")))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Expects an array of exactly `n` items.
    pub fn expect_array(value: &Value, n: usize) -> Result<&[Value], Error> {
        match value {
            Value::Array(items) if items.len() == n => Ok(items),
            other => Err(Error::msg(format!(
                "expected {n}-element array, got {other:?}"
            ))),
        }
    }

    /// Expects `null` (unit structs).
    pub fn expect_null(value: &Value) -> Result<(), Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::msg(format!("expected null, got {other:?}"))),
        }
    }
}

// ---- Serialize / Deserialize implementations for primitives ----

use json::{Error, Value};

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64()?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v.as_u64()?;
        usize::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64()?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v.as_i64()?;
        isize::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = de::expect_array(v, N)?;
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $( + { let _ = stringify!($name); 1 } )+;
                let items = de::expect_array(v, N)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|item| {
                    let pair = de::expect_array(item, 2)?;
                    Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
                })
                .collect(),
            other => Err(Error::msg(format!(
                "expected array of pairs, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Plain {
        a: u64,
        b: f64,
        s: String,
        v: Vec<u32>,
        o: Option<i32>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mixed {
        Unit,
        One(u64),
        Pair(u8, bool),
        Rec { x: i64, y: String },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(u16);

    #[test]
    fn struct_roundtrip() {
        let p = Plain {
            a: u64::MAX,
            b: -1.5e30,
            s: "hi \"there\"\n".into(),
            v: vec![1, 2, 3],
            o: None,
        };
        let text = json::to_string(&p);
        let back: Plain = json::from_str(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn enum_roundtrip() {
        for m in [
            Mixed::Unit,
            Mixed::One(9),
            Mixed::Pair(3, true),
            Mixed::Rec {
                x: -7,
                y: "s".into(),
            },
        ] {
            let text = json::to_string(&m);
            let back: Mixed = json::from_str(&text).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn newtype_roundtrip() {
        let n = Newtype(512);
        let back: Newtype = json::from_str(&json::to_string(&n)).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn u64_precision_is_exact() {
        let v = vec![u64::MAX, u64::MAX - 1, 1 << 53];
        let back: Vec<u64> = json::from_str(&json::to_string(&v)).unwrap();
        assert_eq!(back, v);
    }
}
