//! A JSON value tree, writer, and parser for the serde shim.
//!
//! Numbers keep their integer-ness: `u64`/`i64` never pass through `f64`,
//! so 64-bit trace words and counters round-trip exactly.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (positive values parse as [`Value::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::U64(n) => Ok(*n),
            Value::I64(n) if *n >= 0 => Ok(*n as u64),
            other => Err(Error::msg(format!(
                "expected unsigned integer, got {other:?}"
            ))),
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::I64(n) => Ok(*n),
            Value::U64(n) => {
                i64::try_from(*n).map_err(|_| Error::msg(format!("{n} overflows i64")))
            }
            other => Err(Error::msg(format!("expected integer, got {other:?}"))),
        }
    }

    /// Numeric view as `f64` (integers convert).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Non-finite floats serialize as null (JSON has no NaN/Inf).
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes `.` or `e`.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON text.
pub fn to_string<T: crate::Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.to_value().write(&mut out);
    out
}

/// Parses JSON text and deserializes `T` from it.
pub fn from_str<T: crate::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::msg("bad \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(
            std::str::from_utf8(s).map_err(|_| Error::msg("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::msg("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(u64::MAX)),
            ("b".into(), Value::I64(-42)),
            ("c".into(), Value::F64(1.5e-3)),
            (
                "d".into(),
                Value::Array(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Str("x\"y".into()),
                ]),
            ),
            ("e".into(), Value::Object(vec![])),
        ]);
        let text = {
            let mut s = String::new();
            v.write(&mut s);
            s
        };
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é😀""#).unwrap(), Value::Str("é😀".into()));
    }
}
