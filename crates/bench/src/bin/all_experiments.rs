//! Runs every experiment and prints a consolidated reproduced-vs-paper
//! summary (the data behind EXPERIMENTS.md).

use coruscant_baselines::dwm_pim::SerialDwmPim;
use coruscant_bench::{deviation, header};
use coruscant_core::area::{overhead_1pim, PimDesign};
use coruscant_core::cost_model::MeasuredCosts;
use coruscant_mem::MemoryConfig;
use coruscant_nn::mapping::{model_fps, paper_fps, Scheme};
use coruscant_nn::models::{alexnet, lenet5};
use coruscant_nn::quant::Precision;
use coruscant_reliability::model::OpReliability;
use coruscant_workloads::bitmap::{cost_coruscant, cost_elp2im};
use coruscant_workloads::memwall::{compare, geomean, MemWallResult};
use coruscant_workloads::polybench::suite;

struct Scorecard {
    rows: Vec<(String, f64, f64)>,
}

impl Scorecard {
    fn new() -> Scorecard {
        Scorecard { rows: Vec::new() }
    }
    fn add(&mut self, what: &str, ours: f64, paper: f64) {
        self.rows.push((what.to_string(), ours, paper));
    }
    fn print(&self) {
        header("Consolidated scorecard (reproduced vs paper)");
        println!(
            "{:<44} {:>12} {:>12} {:>9}",
            "metric", "reproduced", "paper", "dev"
        );
        let mut within_25 = 0;
        for (what, ours, paper) in &self.rows {
            let d = deviation(*ours, *paper);
            if d.abs() <= 0.25 {
                within_25 += 1;
            }
            println!(
                "{:<44} {:>12.3} {:>12.3} {:>+8.0}%",
                what,
                ours,
                paper,
                d * 100.0
            );
        }
        println!(
            "\n{} of {} metrics within 25% of the paper's value",
            within_25,
            self.rows.len()
        );
    }
}

fn main() {
    let mut sc = Scorecard::new();

    // Table I.
    for d in PimDesign::ALL {
        sc.add(
            &format!("Table I area overhead {d}"),
            overhead_1pim(d, 32, 16) * 100.0,
            d.paper_overhead() * 100.0,
        );
    }

    // Table III.
    let m3 = MeasuredCosts::measure(3).expect("trd 3");
    let m7 = MeasuredCosts::measure(7).expect("trd 7");
    sc.add(
        "Table III 2op add TR3 (cycles)",
        m3.add2.cycles as f64,
        19.0,
    );
    sc.add(
        "Table III 5op add TR7 (cycles)",
        m7.add_max.cycles as f64,
        26.0,
    );
    sc.add("Table III mult TR3 (cycles)", m3.mult.cycles as f64, 105.0);
    sc.add("Table III mult TR7 (cycles)", m7.mult.cycles as f64, 64.0);
    sc.add("Table III 2op add TR3 (pJ)", m3.add2.energy_pj, 10.15);
    sc.add("Table III 5op add TR7 (pJ)", m7.add_max.energy_pj, 22.14);
    let spim = SerialDwmPim::spim();
    sc.add(
        "speedup vs SPIM, 5op add lat-opt",
        spim.add_k_latency_opt(5, 8).cycles as f64 / 26.0,
        6.9,
    );
    sc.add(
        "speedup vs SPIM, mult (paper cycles)",
        spim.mult2(8).cycles as f64 / 64.0,
        2.3,
    );

    // Figs. 10-11.
    let config = MemoryConfig::paper();
    let results: Vec<MemWallResult> = suite(48).iter().map(|k| compare(k, &config)).collect();
    sc.add(
        "Fig10 avg speedup vs CPU+DWM",
        geomean(results.iter().map(MemWallResult::speedup_vs_dwm)),
        2.07,
    );
    sc.add(
        "Fig10 avg speedup vs CPU+DRAM",
        geomean(results.iter().map(MemWallResult::speedup_vs_dram)),
        2.20,
    );
    sc.add(
        "Fig11 avg energy reduction",
        geomean(results.iter().map(MemWallResult::energy_reduction)),
        25.2,
    );

    // Fig. 12.
    for (w, paper) in [(2usize, 1.6), (3, 2.2), (4, 3.4)] {
        let cor = cost_coruscant(16_000_000, w, &config).cycles as f64;
        let elp = cost_elp2im(16_000_000, w, 512).cycles as f64;
        sc.add(
            &format!("Fig12 speedup over ELP2IM, {} criteria", w + 1),
            elp / cor,
            paper,
        );
    }

    // Table IV (a representative subset; C7 values are anchors).
    for (scheme, net, precision, label) in [
        (
            Scheme::Spim,
            alexnet(),
            Precision::Full,
            "Table IV SPIM alexnet full",
        ),
        (
            Scheme::Coruscant(3),
            alexnet(),
            Precision::Full,
            "Table IV C3 alexnet full",
        ),
        (
            Scheme::Coruscant(3),
            alexnet(),
            Precision::Twn,
            "Table IV C3 alexnet TWN",
        ),
        (
            Scheme::Elp2im,
            alexnet(),
            Precision::Twn,
            "Table IV ELP2IM alexnet TWN",
        ),
        (
            Scheme::Ambit,
            lenet5(),
            Precision::Bwn,
            "Table IV Ambit lenet BWN",
        ),
        (
            Scheme::Coruscant(5),
            lenet5(),
            Precision::Twn,
            "Table IV C5 lenet TWN",
        ),
    ] {
        let ours = model_fps(scheme, &net, precision);
        if let Some(p) = paper_fps(scheme, &net.name, precision) {
            sc.add(label, ours, p);
        }
    }

    // Table V.
    let r7 = OpReliability::at(7);
    sc.add("Table V mult error rate C7 (x1e-5)", r7.mult8 * 1e5, 7.6);
    sc.add("Table V add error rate (x1e-6)", r7.add8 * 1e6, 8.0);

    sc.print();
    println!("\nRun the individual binaries (table1..6, fig10..12, sensitivity,");
    println!("ablation_tw) for the full tables; see EXPERIMENTS.md for analysis.");
}
