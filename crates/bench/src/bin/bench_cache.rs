//! Emits `BENCH_cache.json`: the DWM cache frontend trajectory — hit
//! rate and shift-cycle accounting per placement policy × locality mix,
//! miss-to-PIM-job serving throughput, and the two frontend contracts
//! (replay bit-determinism across shard counts, ≥15% hotness-weighted
//! shift saving on the locality-heavy trace).
//!
//! Usage: `cargo run --release -p coruscant-bench --bin bench_cache
//! [output-path]` (default `BENCH_cache.json` in the working
//! directory).

use coruscant_bench::{cache_perf, header};
use coruscant_dwmcache::CacheConfig;
use coruscant_mem::MemoryConfig;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cache.json".into());
    // The runtime benches' small geometry: 64-wire DBCs (8-byte lines),
    // 32 rows. A 64-set × 8-way cache (512 lines) over a 4096-line
    // footprint keeps all four mixes contended.
    let memory = MemoryConfig::tiny();
    let bench = cache_perf::run_full(&memory, CacheConfig::new(64, 8), 20_000, 4_096);

    header("DWM cache frontend: policy x trace sweep");
    println!(
        "{:<10} {:<18} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "trace", "policy", "hit%", "shift_cyc", "demand_cyc", "missjobs", "jobs/s"
    );
    for row in &bench.rows {
        println!(
            "{:<10} {:<18} {:>8.2} {:>12} {:>12} {:>10} {:>10.0}",
            row.trace,
            row.policy,
            row.hit_rate * 100.0,
            row.total_shift_cycles,
            row.demand_shift_cycles,
            row.miss_jobs,
            row.miss_jobs_per_sec
        );
    }
    header("Frontend contracts");
    println!(
        "hotness vs naive shift reduction (hot90): {:.1}% (contract >= 15%)",
        bench.hotness_vs_naive_shift_reduction * 100.0
    );
    println!(
        "bit-deterministic across shards {{1,2,4}}: {}",
        bench.deterministic_across_shards
    );
    assert!(
        bench.hotness_vs_naive_shift_reduction >= 0.15,
        "shift-saving contract violated"
    );
    assert!(
        bench.deterministic_across_shards,
        "determinism contract violated"
    );

    let json = serde::json::to_string(&bench);
    std::fs::write(&path, json + "\n").expect("write bench output");
    println!("\nwrote {path}");
}
