//! Ablation: the transverse-write segmented shift vs conventional row
//! rotation in the max function (paper SS IV-B: TW saves 28.5% at TRD=7).

use coruscant_bench::header;
use coruscant_core::maxpool::MaxExecutor;
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::CostMeter;

fn main() {
    header("Ablation: transverse write in the max function (8-bit words)");
    let config = MemoryConfig::tiny();
    let candidates: Vec<Row> = (0..7u64)
        .map(|k| Row::pack(64, 8, &[(k * 37) % 256; 8]))
        .collect();

    let max = MaxExecutor::new(&config);
    let mut dbc = Dbc::pim_enabled(&config);
    let mut m_tw = CostMeter::new();
    let with_tw = max
        .max_rows(&mut dbc, &candidates, 8, &mut m_tw)
        .expect("max");

    let mut dbc2 = Dbc::pim_enabled(&config);
    for (i, c) in candidates.iter().enumerate() {
        dbc2.poke_row(10 + i, c).expect("poke");
    }
    let mut m_shift = CostMeter::new();
    let without_tw = max
        .max_rows_without_tw(&mut dbc2, 10, 7, 8, &mut m_shift)
        .expect("max");

    assert_eq!(with_tw, without_tw, "both variants agree functionally");
    let tw = m_tw.total().cycles as f64;
    let base = m_shift.total().cycles as f64;
    println!("with TW:     {tw:>6.0} cycles");
    println!("without TW:  {base:>6.0} cycles");
    println!(
        "saving:      {:>5.1}% (paper: 28.5% at TRD = 7)",
        (base - tw) / base * 100.0
    );
}
