//! Emits `BENCH_nn.json`: CNN serving FPS for the LeNet-5/AlexNet
//! proxies at every precision, served through compiler → runtime →
//! server by `coruscant_pipeline`, single-request and batched arms.
//!
//! Usage: `cargo run --release -p coruscant-bench --bin bench_nn
//! [output-path]` (default `BENCH_nn.json` in the working directory).

use coruscant_bench::{header, nn_perf};
use coruscant_mem::MemoryConfig;

/// Sixteen tiles (4 banks × 2 × 2): enough hosting units for the
/// eleven-layer AlexNet proxy, three storage DBCs per tile for resident
/// weights — the same geometry `tests/nn_serving.rs` proves exact.
fn serving_config() -> MemoryConfig {
    MemoryConfig {
        banks: 4,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_nn.json".into());
    let config = serving_config();
    let bench = nn_perf::run_full(&config, 8);

    header("CNN serving: frames/s through compiler → runtime → server");
    println!(
        "{:<16} {:<6} {:<8} {:>7} {:>10} {:>12} {:>12} {:>8}",
        "model", "prec", "arm", "frames", "wall ms", "fps (wall)", "fps (model)", "jobs"
    );
    for p in &bench.points {
        println!(
            "{:<16} {:<6} {:<8} {:>7} {:>10.1} {:>12.1} {:>12.2} {:>8}",
            p.model,
            format!("{:?}", p.precision),
            p.arm,
            p.frames,
            p.wall_ms,
            p.fps_wall,
            p.fps_modeled,
            p.jobs_completed,
        );
    }

    let json = serde::json::to_string(&bench);
    std::fs::write(&path, json + "\n").expect("write bench output");
    println!("\nwrote {path}");
}
