//! Regenerates Fig. 10: normalized DWM latency over polybench kernels
//! (CPU+DRAM and CPU+DWM vs CORUSCANT PIM; baseline without PIM is 1).

use coruscant_bench::header;
use coruscant_mem::MemoryConfig;
use coruscant_workloads::memwall::{compare, geomean, MemWallResult};
use coruscant_workloads::polybench::suite;

fn main() {
    header("Fig. 10: normalized latency (higher = PIM faster); N = 48 kernels");
    let config = MemoryConfig::paper();
    let results: Vec<MemWallResult> = suite(48).iter().map(|k| compare(k, &config)).collect();
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "kernel", "CPU+DRAM cyc", "CPU+DWM cyc", "PIM cyc", "vs DWM", "vs DRAM"
    );
    for r in &results {
        println!(
            "{:<10} {:>14} {:>14} {:>12} {:>11.2}x {:>11.2}x",
            r.kernel,
            r.cpu_dram_cycles,
            r.cpu_dwm_cycles,
            r.pim_cycles,
            r.speedup_vs_dwm(),
            r.speedup_vs_dram()
        );
    }
    let vs_dwm = geomean(results.iter().map(MemWallResult::speedup_vs_dwm));
    let vs_dram = geomean(results.iter().map(MemWallResult::speedup_vs_dram));
    println!("\nAverage speedup vs CPU+DWM:  {vs_dwm:.2}x (paper: 2.07x)");
    println!("Average speedup vs CPU+DRAM: {vs_dram:.2}x (paper: 2.20x)");
}
