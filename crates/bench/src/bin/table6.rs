//! Regenerates Table VI: CORUSCANT CNN inference under N-modular
//! redundancy.

use coruscant_bench::header;
use coruscant_nn::mapping::{model_fps_nmr, Scheme};
use coruscant_nn::models::{alexnet, lenet5};
use coruscant_nn::quant::Precision;

/// One Table VI block: network, precision, paper FPS at N = 3 for
/// C3/C5/C7, at N = 5 for C5/C7, and at N = 7 for C7.
type PaperBlock = (&'static str, Precision, [f64; 3], [f64; 2], f64);

const PAPER: &[PaperBlock] = &[
    // (network, precision, N=3 for C3/C5/C7, N=5 for C5/C7, N=7 for C7)
    (
        "alexnet",
        Precision::Full,
        [17.7, 26.9, 29.0],
        [16.2, 17.5],
        12.5,
    ),
    (
        "alexnet",
        Precision::Twn,
        [90.2, 134.8, 155.8],
        [81.1, 93.7],
        67.0,
    ),
    (
        "lenet5",
        Precision::Twn,
        [5907.0, 8074.0, 9862.0],
        [0.0, 0.0],
        4253.0,
    ),
];

fn main() {
    header("Table VI: CORUSCANT CNN with N-modular redundancy (FPS)");
    for (net_name, precision, p3, p5, p7) in PAPER {
        let net = if *net_name == "alexnet" {
            alexnet()
        } else {
            lenet5()
        };
        println!("\n--- {} {:?} ---", net.name, precision);
        print!("N=3: ");
        for (i, trd) in [3usize, 5, 7].iter().enumerate() {
            let got = model_fps_nmr(Scheme::Coruscant(*trd), &net, *precision, 3);
            print!("C{trd} {got:.1} (paper {:.1})  ", p3[i]);
        }
        println!();
        print!("N=5: ");
        for (i, trd) in [5usize, 7].iter().enumerate() {
            let got = model_fps_nmr(Scheme::Coruscant(*trd), &net, *precision, 5);
            if p5[i] > 0.0 {
                print!("C{trd} {got:.1} (paper {:.1})  ", p5[i]);
            } else {
                print!("C{trd} {got:.1}  ");
            }
        }
        println!();
        let got7 = model_fps_nmr(Scheme::Coruscant(7), &net, *precision, 7);
        println!("N=7: C7 {got7:.1} (paper {p7:.1})");
    }
    println!("\n(The paper's ISO-area observation: CORUSCANT with TMR remains faster");
    println!("than Ambit/ELP2IM without any fault tolerance on ternary AlexNet.)");
}
