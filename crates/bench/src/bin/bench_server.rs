//! Emits `BENCH_server.json`: the serving-frontend perf trajectory —
//! closed-loop client-fleet scaling with end-to-end latency percentiles,
//! an admission-on shedding arm, an open-loop offered-rate sweep with
//! its saturation knee, and the two-tenant weighted-fair QoS arm.
//!
//! Usage: `cargo run --release -p coruscant-bench --bin bench_server
//! [output-path]` (default `BENCH_server.json` in the working
//! directory), or `--smoke-qos` to run the seconds-scale QoS gate CI
//! uses: the misbehaving tenant must stay within its quota (+10%) and
//! the compliant tenant must hold its p99 SLO.

use coruscant_bench::server_perf::QosBenchProfile;
use coruscant_bench::{header, server_perf};
use coruscant_mem::MemoryConfig;
use coruscant_workloads::bitmap::BitmapDataset;
use coruscant_workloads::serve::{compile_bitmap_query_with, QueryPlan};

/// The same eight-bank geometry `bench_runtime` uses, so the two
/// trajectories are comparable.
fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

fn print_point(point: &server_perf::LoadPoint) {
    println!(
        "{:<8} {:<10} {:>10.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>8} {:>8}",
        point.clients,
        point.admission,
        point.jobs_per_sec,
        point.latency.p50_us,
        point.latency.p90_us,
        point.latency.p99_us,
        point.latency.max_us,
        point.stats.completed,
        point.stats.rejected(),
    );
}

fn print_open_loop(sweep: &server_perf::OpenLoopSweep) {
    header("Open-loop offered-rate sweep (latency in µs)");
    println!(
        "{:>10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "offered/s", "actual/s", "achieved/s", "p50", "p90", "p99", "shed"
    );
    for p in &sweep.points {
        println!(
            "{:>10.0} {:>10.0} {:>10.0} {:>9.0} {:>9.0} {:>9.0} {:>8}",
            p.offered_per_sec,
            p.actual_offered_per_sec,
            p.achieved_per_sec,
            p.latency.p50_us,
            p.latency.p90_us,
            p.latency.p99_us,
            p.shed,
        );
    }
    println!("\nsaturation knee ≈ {:.0} req/s", sweep.knee_per_sec);
}

fn print_fairness(fair: &server_perf::FairnessArm) {
    header("Weighted-fair QoS arm at 80% of saturation");
    println!(
        "compliant:   {:>8.0} req/s offered, p99 {:>8.0} µs (SLO {:.0} µs), deadline hit rate {:.3}",
        fair.compliant_offered_per_sec,
        fair.compliant_latency.p99_us,
        fair.slo_us,
        fair.compliant_deadline_hit_rate,
    );
    println!(
        "misbehaving: {:>8.0} req/s offered against a {:.0} req/s quota — {} accepted, {} throttled (cap {:.0})",
        fair.misbehaving_offered_per_sec,
        fair.quota_per_sec,
        fair.misbehaving_accepted,
        fair.misbehaving_throttled,
        fair.quota_cap,
    );
    println!(
        "gates: misbehaving within quota = {}, compliant within SLO = {}",
        fair.misbehaving_within_quota, fair.compliant_within_slo,
    );
}

/// The seconds-scale QoS gate: run the open-loop sweep and fairness arm
/// on the eight-bank geometry and hard-fail unless the throttled tenant
/// stayed within quota and the compliant tenant held its SLO.
fn smoke_qos() {
    let config = eight_bank_config();
    let ds = BitmapDataset::generate(4_000, 3, 11);
    let programs =
        compile_bitmap_query_with(&ds, 3, &config, QueryPlan::Fused).expect("query compiles");
    let profile = QosBenchProfile::smoke();
    // Calibrate saturation with one short closed-loop burst.
    let calibration = server_perf::run_load_point(&config, &programs, 4, 150, None);
    let rates: Vec<f64> = profile
        .sweep_fractions
        .iter()
        .map(|f| f * calibration.jobs_per_sec)
        .collect();
    let sweep = server_perf::run_open_loop_sweep(
        &config,
        &programs,
        &rates,
        profile.seed,
        profile.point_duration,
    );
    print_open_loop(&sweep);
    assert!(
        sweep.points.iter().all(|p| p.submitted > 0),
        "open-loop generator fired no arrivals"
    );
    let knee = if sweep.knee_per_sec > 0.0 {
        sweep.knee_per_sec
    } else {
        calibration.jobs_per_sec
    };
    let fair = server_perf::run_fairness(
        &config,
        &programs,
        knee,
        profile.fairness_duration,
        profile.slo,
        profile.seed,
    );
    print_fairness(&fair);
    assert!(fair.stats.balanced(), "accounting must balance: {fair:?}");
    assert!(
        fair.misbehaving_within_quota,
        "misbehaving tenant exceeded its quota ceiling: {} accepted > 1.1 × {:.0}",
        fair.misbehaving_accepted, fair.quota_cap,
    );
    assert!(
        fair.misbehaving_throttled > 0,
        "the 5×-quota tenant was never throttled — the fair queue is not engaging"
    );
    assert!(
        fair.compliant_within_slo,
        "compliant tenant missed its SLO: p99 {:.0} µs > {:.0} µs",
        fair.compliant_latency.p99_us, fair.slo_us,
    );
    println!("\nqos smoke: all gates passed");
}

fn main() {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--smoke-qos") {
        smoke_qos();
        return;
    }
    let path = arg.unwrap_or_else(|| "BENCH_server.json".into());
    let config = eight_bank_config();
    let bench = server_perf::run_full(
        &config,
        16_000,
        &[1, 2, 4, 8],
        400,
        &QosBenchProfile::default(),
    );

    header("Serving frontend: closed-loop fleet scaling (latency in µs)");
    println!(
        "{:<8} {:<10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "clients", "admission", "jobs/s", "p50", "p90", "p99", "max", "done", "shed"
    );
    for point in &bench.backpressure {
        print_point(point);
    }
    print_point(&bench.shedding);
    print_open_loop(&bench.open_loop);
    print_fairness(&bench.fairness);

    let json = serde::json::to_string(&bench);
    std::fs::write(&path, json + "\n").expect("write bench output");
    println!("\nwrote {path}");
}
