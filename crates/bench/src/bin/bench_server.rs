//! Emits `BENCH_server.json`: the serving-frontend perf trajectory —
//! closed-loop client-fleet scaling with end-to-end latency percentiles,
//! plus an admission-on shedding arm.
//!
//! Usage: `cargo run --release -p coruscant-bench --bin bench_server
//! [output-path]` (default `BENCH_server.json` in the working
//! directory).

use coruscant_bench::{header, server_perf};
use coruscant_mem::MemoryConfig;

/// The same eight-bank geometry `bench_runtime` uses, so the two
/// trajectories are comparable.
fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

fn print_point(point: &server_perf::LoadPoint) {
    println!(
        "{:<8} {:<10} {:>10.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>8} {:>8}",
        point.clients,
        point.admission,
        point.jobs_per_sec,
        point.latency.p50_us,
        point.latency.p90_us,
        point.latency.p99_us,
        point.latency.max_us,
        point.stats.completed,
        point.stats.rejected(),
    );
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_server.json".into());
    let config = eight_bank_config();
    let bench = server_perf::run_full(&config, 16_000, &[1, 2, 4, 8], 400);

    header("Serving frontend: closed-loop fleet scaling (latency in µs)");
    println!(
        "{:<8} {:<10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "clients", "admission", "jobs/s", "p50", "p90", "p99", "max", "done", "shed"
    );
    for point in &bench.backpressure {
        print_point(point);
    }
    print_point(&bench.shedding);

    let json = serde::json::to_string(&bench);
    std::fs::write(&path, json + "\n").expect("write bench output");
    println!("\nwrote {path}");
}
