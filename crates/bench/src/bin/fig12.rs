//! Regenerates Fig. 12: bitmap-index query latency normalized to a
//! standard DRAM-CPU system (16M users, male AND active last w weeks).

use coruscant_bench::header;
use coruscant_mem::MemoryConfig;
use coruscant_workloads::bitmap::{
    cost_ambit, cost_coruscant, cost_dram_cpu, cost_elp2im, run_coruscant, BitmapDataset,
};

fn main() {
    header("Fig. 12: bitmap indices query speedup over DRAM-CPU (16M users)");
    let users = 16_000_000;
    let config = MemoryConfig::paper();
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "criteria", "Ambit", "ELP2IM", "CORUSCANT", "COR/ELP2IM"
    );
    for w in 2..=4 {
        let cpu = cost_dram_cpu(users, w).cycles as f64;
        let amb = cpu / cost_ambit(users, w, 512).cycles as f64;
        let elp = cpu / cost_elp2im(users, w, 512).cycles as f64;
        let cor = cpu / cost_coruscant(users, w, &config).cycles as f64;
        println!(
            "{:<10} {:>11.1}x {:>11.1}x {:>11.1}x {:>11.2}x",
            w + 1,
            amb,
            elp,
            cor,
            cor / elp
        );
    }
    println!("(paper: CORUSCANT is 1.6x / 2.2x / 3.4x over ELP2IM for 3 / 4 / 5 criteria)");

    // Functional verification on a down-scaled dataset: the PIM answer
    // must match the reference popcount exactly.
    println!("\nFunctional check (100k users, tiny config):");
    let ds = BitmapDataset::generate(100_000, 4, 2026);
    let small = MemoryConfig::tiny();
    for w in 2..=4 {
        let out = run_coruscant(&ds, w, &small).expect("query");
        let reference = ds.reference_count(w);
        assert_eq!(out.count, reference, "PIM result must be exact");
        println!(
            "  w={w}: {} matching users (verified exact), {} cycles",
            out.count, out.cycles
        );
    }
}
