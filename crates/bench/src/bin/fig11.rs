//! Regenerates Fig. 11: normalized energy reduction over polybench
//! kernels (CPU energy / CORUSCANT PIM energy; baseline without PIM = 1).

use coruscant_bench::header;
use coruscant_mem::MemoryConfig;
use coruscant_workloads::memwall::{compare, geomean, MemWallResult};
use coruscant_workloads::polybench::suite;

fn main() {
    header("Fig. 11: normalized energy reduction; N = 48 kernels");
    let config = MemoryConfig::paper();
    let results: Vec<MemWallResult> = suite(48).iter().map(|k| compare(k, &config)).collect();
    println!(
        "{:<10} {:>16} {:>16} {:>12}",
        "kernel", "CPU energy (nJ)", "PIM energy (nJ)", "reduction"
    );
    for r in &results {
        println!(
            "{:<10} {:>16.1} {:>16.1} {:>11.1}x",
            r.kernel,
            r.cpu_energy_pj / 1000.0,
            r.pim_energy_pj / 1000.0,
            r.energy_reduction()
        );
    }
    let avg = geomean(results.iter().map(MemWallResult::energy_reduction));
    println!("\nAverage energy reduction: {avg:.1}x (paper: >25x on average)");
    println!("Movement dominates the CPU side: E_trans = 1250 pJ/byte vs ~137 pJ/op compute.");
}
