//! Regenerates Table IV: CNN inference FPS across schemes.

use coruscant_bench::header;
use coruscant_mem::MemoryConfig;
use coruscant_nn::mapping::{layer_breakdown, model_fps, paper_fps, Scheme};
use coruscant_nn::models::{alexnet, lenet5};
use coruscant_nn::quant::Precision;
use coruscant_nn::throughput;

fn row(scheme: Scheme, net: &coruscant_nn::models::Network, precision: Precision) {
    let got = model_fps(scheme, net, precision);
    match paper_fps(scheme, &net.name, precision) {
        Some(p) => println!(
            "{:<14} {:>10.1} (paper {:>8.1})",
            scheme.to_string(),
            got,
            p
        ),
        None => println!("{:<14} {:>10.1}", scheme.to_string(), got),
    }
}

fn main() {
    header("Table IV: CNN application comparison (FPS)");
    for net in [alexnet(), lenet5()] {
        println!("\n--- {} ---", net.name);
        println!("Full-precision CNN inference:");
        for s in [
            Scheme::Spim,
            Scheme::Coruscant(3),
            Scheme::Coruscant(5),
            Scheme::Coruscant(7),
        ] {
            row(s, &net, Precision::Full);
        }
        println!("ReRAM crossbar CNN inference:");
        row(Scheme::Isaac, &net, Precision::Full);
        println!("Binary weight network (NID):");
        for s in [Scheme::Ambit, Scheme::Elp2im] {
            row(s, &net, Precision::Bwn);
        }
        println!("Ternary weight network (DrAcc):");
        for s in [
            Scheme::Ambit,
            Scheme::Elp2im,
            Scheme::Coruscant(3),
            Scheme::Coruscant(5),
            Scheme::Coruscant(7),
        ] {
            row(s, &net, Precision::Twn);
        }
    }
    println!("\nAlexNet TWN per-layer work shares (CORUSCANT-7 vs ELP2IM):");
    let net = alexnet();
    let cor = layer_breakdown(Scheme::Coruscant(7), &net, Precision::Twn);
    let elp = layer_breakdown(Scheme::Elp2im, &net, Precision::Twn);
    println!("{:<8} {:>12} {:>12}", "layer", "C7 share", "ELP2IM share");
    for ((name, _, fc), (_, _, fe)) in cor.iter().zip(&elp) {
        println!("{:<8} {:>11.1}% {:>11.1}%", name, fc * 100.0, fe * 100.0);
    }

    let p = throughput::peak(&MemoryConfig::paper());
    println!(
        "\nPeak convolution throughput: {:.1} TOPS, {:.0} GOPJ (paper: 26 TOPS, 108 GOPJ)",
        p.tops, p.gopj
    );
    println!(
        "FPGA comparison point: {} TOPS, {} GOPJ",
        throughput::FPGA_TOPS,
        throughput::FPGA_GOPJ
    );
}
