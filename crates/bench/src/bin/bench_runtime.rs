//! Emits `BENCH_runtime.json`: the cross-job-optimization perf
//! trajectory — host throughput over a shards × cache × batch grid, the
//! 10k-job repeated-query compile-time campaign, and the scheduler-
//! scaling sweep (classic vs parallel engines at 1/2/4/8 shards over
//! 1k- and 10k-job streams) with the gated 8v1 capacity ratio.
//!
//! Usage:
//!
//! * `cargo run --release -p coruscant-bench --bin bench_runtime
//!   [output-path]` — full bench (default `BENCH_runtime.json` in the
//!   working directory).
//! * `... --bin bench_runtime -- --smoke` — CI perf-smoke gate only:
//!   best-of-3 parallel runs at 1 and 8 domains; exits nonzero unless
//!   the 8v1 capacity ratio is at least 3×.

use coruscant_bench::{header, runtime_perf, times};
use coruscant_mem::MemoryConfig;

/// The 8v1 capacity ratio the smoke gate requires (the committed bench
/// shows ≥ 4×; the gate leaves headroom for noisy CI hosts).
const SMOKE_MIN_RATIO: f64 = 3.0;

/// Eight banks × 2 subarrays × 2 tiles with one PIM DBC each = 32 PIM
/// units (the geometry the runtime benches use throughout).
fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

fn print_smoke(smoke: &runtime_perf::PerfSmoke) {
    header("Parallel-scaling perf smoke (capacity = jobs / busiest-thread CPU)");
    println!(
        "host cores {} | {} jobs, best of {} | capacity 1 domain {:.0}/s, \
         8 domains {:.0}/s -> {} (wall ratio {:.2})",
        smoke.host_cores,
        smoke.jobs,
        smoke.best_of,
        smoke.capacity_1,
        smoke.capacity_8,
        times(smoke.capacity_ratio_8v1),
        smoke.wall_ratio_8v1
    );
}

fn run_smoke_gate() {
    let smoke = runtime_perf::perf_smoke(&eight_bank_config(), 10_000, 3);
    print_smoke(&smoke);
    if smoke.capacity_ratio_8v1 < SMOKE_MIN_RATIO {
        eprintln!(
            "FAIL: 8v1 capacity ratio {:.2} below the {SMOKE_MIN_RATIO:.1}x gate",
            smoke.capacity_ratio_8v1
        );
        std::process::exit(1);
    }
    println!("PASS: 8v1 capacity ratio >= {SMOKE_MIN_RATIO:.1}x");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        run_smoke_gate();
        return;
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_runtime.json".into());
    let config = eight_bank_config();
    // Four rounds of the 250-chunk stream: the repeats are what let the
    // compiled-program cache hit (750 hits per cache-on cell).
    let bench = runtime_perf::run_full(&config, 16_000, &[1, 2, 4, 8], 4, 10_000, &[1_000, 10_000]);

    header("Runtime cross-job optimization grid (jobs/sec, host wall)");
    println!(
        "{:<8} {:<6} {:<6} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "shards", "cache", "batch", "jobs/s", "device_cyc", "makespan", "hits", "batches"
    );
    for cell in &bench.grid {
        println!(
            "{:<8} {:<6} {:<6} {:>10.0} {:>12} {:>12} {:>10} {:>8}",
            cell.shards,
            cell.cache,
            cell.batch,
            cell.jobs_per_sec,
            cell.device_cycles,
            cell.makespan_cycles,
            cell.cache_hits,
            cell.batches
        );
    }
    let rq = &bench.repeated_query;
    header("Repeated-query compile-time campaign");
    println!(
        "{} jobs: cold submit {:.1} ms, warm submit {:.1} ms -> {} ({} hits)",
        rq.jobs,
        rq.cold_submit_ms,
        rq.warm_submit_ms,
        times(rq.speedup),
        rq.warm_hits
    );

    header("Scheduler-scaling sweep (capacity = jobs / busiest-thread CPU)");
    println!(
        "{:<10} {:<7} {:>7} {:>11} {:>13} {:>6} {:>7} {:>20}",
        "mode", "shards", "jobs", "wall j/s", "capacity j/s", "occ%", "steals", "stage% p/a/pl/d/k"
    );
    for p in &bench.scaling {
        println!(
            "{:<10} {:<7} {:>7} {:>11.0} {:>13.0} {:>6.1} {:>7} {:>4.0}/{:.0}/{:.0}/{:.0}/{:.0}",
            p.mode,
            p.shards,
            p.jobs,
            p.jobs_per_sec,
            p.capacity_jobs_per_sec,
            p.occupancy_pct,
            p.steals,
            p.stage_pct.pop,
            p.stage_pct.admit,
            p.stage_pct.place,
            p.stage_pct.dispatch,
            p.stage_pct.ack
        );
    }
    print_smoke(&bench.perf_smoke);

    let json = serde::json::to_string(&bench);
    std::fs::write(&path, json + "\n").expect("write bench output");
    println!("\nwrote {path}");
}
