//! Emits `BENCH_runtime.json`: the cross-job-optimization perf
//! trajectory — host throughput over a shards × cache × batch grid plus
//! the 10k-job repeated-query compile-time campaign.
//!
//! Usage: `cargo run --release -p coruscant-bench --bin bench_runtime
//! [output-path]` (default `BENCH_runtime.json` in the working
//! directory).

use coruscant_bench::{header, runtime_perf, times};
use coruscant_mem::MemoryConfig;

/// Eight banks × 2 subarrays × 2 tiles with one PIM DBC each = 32 PIM
/// units (the geometry the runtime benches use throughout).
fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_runtime.json".into());
    let config = eight_bank_config();
    // Four rounds of the 250-chunk stream: the repeats are what let the
    // compiled-program cache hit (750 hits per cache-on cell).
    let bench = runtime_perf::run_full(&config, 16_000, &[1, 2, 4, 8], 4, 10_000);

    header("Runtime cross-job optimization grid (jobs/sec, host wall)");
    println!(
        "{:<8} {:<6} {:<6} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "shards", "cache", "batch", "jobs/s", "device_cyc", "makespan", "hits", "batches"
    );
    for cell in &bench.grid {
        println!(
            "{:<8} {:<6} {:<6} {:>10.0} {:>12} {:>12} {:>10} {:>8}",
            cell.shards,
            cell.cache,
            cell.batch,
            cell.jobs_per_sec,
            cell.device_cycles,
            cell.makespan_cycles,
            cell.cache_hits,
            cell.batches
        );
    }
    let rq = &bench.repeated_query;
    header("Repeated-query compile-time campaign");
    println!(
        "{} jobs: cold submit {:.1} ms, warm submit {:.1} ms -> {} ({} hits)",
        rq.jobs,
        rq.cold_submit_ms,
        rq.warm_submit_ms,
        times(rq.speedup),
        rq.warm_hits
    );

    let json = serde::json::to_string(&bench);
    std::fs::write(&path, json + "\n").expect("write bench output");
    println!("\nwrote {path}");
}
