//! Regenerates Table I: PIM area overhead vs the base DWM main memory.

use coruscant_bench::{header, vs_paper};
use coruscant_core::area::{overhead_1pim, PimDesign};

fn main() {
    header("Table I: PIM area overhead vs base DWM main memory (1-PIM tile per subarray)");
    println!("{:<16} {:>12} {:>12}", "Design", "Reproduced", "Paper");
    for design in PimDesign::ALL {
        let ours = overhead_1pim(design, 32, 16) * 100.0;
        let paper = design.paper_overhead() * 100.0;
        println!(
            "{:<16} {:>11.2}% {:>11.1}%",
            design.to_string(),
            ours,
            paper
        );
    }
    println!("\nComponent model constants are in coruscant-core::area (F^2 units),");
    println!("calibrated against the FreePDK45 synthesis the paper reports.");
    let _ = vs_paper(0.0, 1.0);
}
