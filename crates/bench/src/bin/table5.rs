//! Regenerates Table V: operation reliability (per-op error rates and
//! their N-modular-redundancy suppression), plus a Monte-Carlo spot check
//! at accelerated fault rates.

use coruscant_bench::header;
use coruscant_reliability::model::{self, OpReliability};
use coruscant_reliability::montecarlo;
use coruscant_reliability::nmr::{p_mult_stepwise_vote, NmrReliability};
use coruscant_reliability::variation::{reliability_gap_decades, FaultCurve};

fn main() {
    header("Table V: operation reliability (TR fault rate 1e-6)");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "Error probability", "C3", "C5", "C7"
    );
    let rows: Vec<OpReliability> = [3, 5, 7].iter().map(|&t| OpReliability::at(t)).collect();
    println!(
        "{:<22} {:>12.1e} {:>12.1e} {:>12.1e}",
        "AND, OR, C' (per bit)", rows[0].and_or_cp, rows[1].and_or_cp, rows[2].and_or_cp
    );
    println!("  paper:               3.3e-7       2.0e-7       1.4e-7");
    println!(
        "{:<22} {:>12.1e} {:>12.1e} {:>12.1e}",
        "XOR (per bit)", rows[0].xor, rows[1].xor, rows[2].xor
    );
    println!(
        "{:<22} {:>12.1e} {:>12.1e} {:>12.1e}",
        "C (per bit)", rows[0].carry, rows[1].carry, rows[2].carry
    );
    println!("  paper:               3.3e-7       4.0e-7       4.3e-7");
    println!(
        "{:<22} {:>12.1e} {:>12.1e} {:>12.1e}",
        "add (per 8 bits)", rows[0].add8, rows[1].add8, rows[2].add8
    );
    println!(
        "{:<22} {:>12.1e} {:>12.1e} {:>12.1e}",
        "multiply (per 8 bits)", rows[0].mult8, rows[1].mult8, rows[2].mult8
    );
    println!("  paper:               4.1e-4       2.1e-4       7.6e-5");

    println!("\nN-modular redundancy (8-bit results, end-of-op voting):");
    println!("{:<22} {:>12} {:>12} {:>12}", "", "N=3", "N=5", "N=7");
    for (label, f) in [
        (
            "XOR",
            Box::new(|r: &NmrReliability| r.xor8) as Box<dyn Fn(&NmrReliability) -> f64>,
        ),
        ("AND/OR/C'", Box::new(|r: &NmrReliability| r.and_or_cp8)),
        ("add", Box::new(|r: &NmrReliability| r.add8)),
        ("multiply", Box::new(|r: &NmrReliability| r.mult8)),
    ] {
        let vals: Vec<f64> = [3u64, 5, 7]
            .iter()
            .map(|&n| f(&NmrReliability::at(n, 7)))
            .collect();
        println!(
            "{:<22} {:>12.1e} {:>12.1e} {:>12.1e}",
            label, vals[0], vals[1], vals[2]
        );
    }
    println!(
        "\nPer-reduction-step voting (multiply, ~19 steps): N=3 {:.1e}, N=5 {:.1e}",
        p_mult_stepwise_vote(3, 7, 19),
        p_mult_stepwise_vote(5, 7, 19)
    );
    println!("(paper: TMR reaches ~5e-12; N=5 ~5e-18 for >10-year error-free runtime)");

    println!("\nMonte-Carlo spot check (accelerated fault rate p = 2e-3):");
    let add = montecarlo::add_campaign(300, 2e-3, 42);
    println!(
        "  5-op add, 8 lanes: empirical error rate {:.3} over {} trials",
        add.rate(),
        add.trials
    );
    let xor = montecarlo::xor_campaign(300, 2e-3, 43);
    println!(
        "  7-op XOR, 64 wires: empirical error rate {:.3} (expected ~{:.3})",
        xor.rate(),
        1.0 - (1.0 - 2e-3f64).powi(64)
    );
    let tmr = montecarlo::tmr_xor_campaign(300, 2e-3, 44);
    println!(
        "  TMR-protected XOR: empirical error rate {:.3}",
        tmr.rate()
    );
    println!("  intrinsic probability of TR fault: {:.0e}", model::P_TR);

    println!("\nFault rate under process variation (paper SS V-F comparison):");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "variation", "CORUSCANT", "Ambit", "ELP2IM"
    );
    for v in [0.03f64, 0.04, 0.05, 0.07, 0.10] {
        println!(
            "{:<12} {:>14.1e} {:>14.1e} {:>14.1e}",
            format!("{:.0}%", v * 100.0),
            FaultCurve::coruscant().rate(v),
            FaultCurve::ambit().rate(v),
            FaultCurve::elp2im().rate(v)
        );
    }
    let (ga, ge) = reliability_gap_decades(0.05);
    println!(
        "At 5% variation CORUSCANT leads Ambit by {ga:.1} and ELP2IM by {ge:.1} orders of magnitude."
    );
}
