//! TRD sensitivity study: operation costs, area, and CNN throughput at
//! TRD in {3, 5, 7} (paper SS III-A, Table IV columns, Table I).

use coruscant_bench::header;
use coruscant_core::area::{overhead_1pim, PimDesign};
use coruscant_core::cost_model::MeasuredCosts;
use coruscant_nn::mapping::{model_fps, Scheme};
use coruscant_nn::models::alexnet;
use coruscant_nn::quant::Precision;

fn main() {
    header("TRD sensitivity study");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "TRD", "add cyc", "mult cyc", "bulk cyc", "max cyc", "max ops"
    );
    for trd in [3usize, 5, 7] {
        let m = MeasuredCosts::measure(trd).expect("measure");
        let max_ops = if trd >= 4 { trd - 2 } else { trd - 1 };
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
            trd, m.add_max.cycles, m.mult.cycles, m.bulk.cycles, m.max.cycles, max_ops
        );
    }

    println!("\nArea overhead (Table I designs):");
    for d in PimDesign::ALL {
        println!(
            "  {:<14} TRD={}  {:.1}%",
            d.to_string(),
            d.trd(),
            overhead_1pim(d, 32, 16) * 100.0
        );
    }

    println!("\nAlexNet FPS by TRD (full precision / TWN):");
    let net = alexnet();
    for trd in [3usize, 5, 7] {
        let full = model_fps(Scheme::Coruscant(trd), &net, Precision::Full);
        let twn = model_fps(Scheme::Coruscant(trd), &net, Precision::Twn);
        println!("  TRD={trd}: {full:>7.1} / {twn:>7.1}");
    }
    println!("(paper: TRD 3->5 gains 30-40%, 5->7 another 10-20%)");
}
