//! Regenerates Table II: the DWM system parameters the simulators use.

use coruscant_bench::header;
use coruscant_mem::timing::DeviceTiming;
use coruscant_mem::MemoryConfig;
use coruscant_racetrack::params::CpuEnergyParams;

fn main() {
    header("Table II: DWM parameters");
    let c = MemoryConfig::paper();
    println!(
        "Memory size            {} GB ({} Gb)",
        c.capacity_bytes() >> 30,
        c.capacity_bits() >> 30
    );
    println!("Bus speed              {} MHz", c.bus_mhz);
    println!("Memory cycle           {} ns", c.memory_cycle_ns);
    println!("Number of banks        {}", c.banks);
    println!("Subarrays per bank     {}", c.subarrays_per_bank);
    println!("Tiles per subarray     {}", c.tiles_per_subarray);
    println!(
        "DBCs per tile          {} ({} + {}-PIM)",
        c.dbcs_per_tile,
        c.dbcs_per_tile - c.pim_dbcs_per_tile,
        c.pim_dbcs_per_tile
    );
    println!(
        "DBC geometry           {} nanowires x {} rows, TRD = {}",
        c.nanowires_per_dbc, c.rows_per_dbc, c.trd
    );
    let e = CpuEnergyParams::PAPER;
    println!("CPU add (32-bit)       {} pJ/op", e.add32_pj);
    println!("CPU mult (32-bit)      {} pJ/op", e.mult32_pj);
    println!("E_trans                {} pJ/byte", e.transfer_pj_per_byte);
    let d = DeviceTiming::DRAM_PAPER;
    println!(
        "DRAM tRAS-tRCD-tRP-tCAS-tWR   {}-{}-{}-{}-{}",
        d.t_ras, d.t_rcd, d.t_rp, d.t_cas, d.t_wr
    );
    let w = DeviceTiming::DWM_PAPER;
    println!(
        "DWM  tRAS-tRCD-S-tCAS-tWR     {}-{}-S-{}-{}",
        w.t_ras, w.t_rcd, w.t_cas, w.t_wr
    );
    println!("(S = data-placement-dependent shift cycles replacing precharge)");
}
