//! Regenerates Table III: operation comparison of CORUSCANT vs DW-NN vs
//! SPIM (speed in cycles, energy in pJ, area in um^2 for 8-bit units).

use coruscant_baselines::dwm_pim::SerialDwmPim;
use coruscant_bench::header;
use coruscant_core::area::unit_area_um2;
use coruscant_core::cost_model::{MeasuredCosts, TABLE3_CORUSCANT};

fn main() {
    header("Table III: operation comparison (8-bit operands)");

    println!("-- CORUSCANT (measured by the functional simulators) --");
    println!(
        "{:<18} {:>8} {:>8} | {:>10} {:>10} | {:>8}",
        "Unit", "cycles", "paper", "energy pJ", "paper", "area um2"
    );
    let m3 = MeasuredCosts::measure(3).expect("trd 3");
    let m7 = MeasuredCosts::measure(7).expect("trd 7");
    let rows = [
        ("2op add (TR=3)", m3.add2, TABLE3_CORUSCANT[0]),
        ("2op add (TR=7)", m7.add2, TABLE3_CORUSCANT[1]),
        ("5op add (TR=7)", m7.add_max, TABLE3_CORUSCANT[2]),
        ("mult (TR=3)", m3.mult, TABLE3_CORUSCANT[3]),
        ("mult (TR=7)", m7.mult, TABLE3_CORUSCANT[4]),
    ];
    for (name, got, paper) in rows {
        println!(
            "{:<18} {:>8} {:>8} | {:>10.2} {:>10.2} | {:>8.2}",
            name,
            got.cycles,
            paper.cycles,
            got.energy_pj,
            paper.energy_pj,
            unit_area_um2(paper.unit).unwrap_or(f64::NAN)
        );
    }

    for model in [SerialDwmPim::dw_nn(), SerialDwmPim::spim()] {
        println!("\n-- {} (fitted to its published column) --", model.name);
        println!(
            "{:<22} {:>8} {:>12} {:>10}",
            "Unit", "cycles", "energy pJ", "area um2"
        );
        println!(
            "{:<22} {:>8} {:>12.1} {:>10.1}",
            "2op add",
            model.add2(8).cycles,
            model.add2(8).energy_pj,
            model.adder_area_um2
        );
        println!(
            "{:<22} {:>8} {:>12.1} {:>10.1}",
            "5op add (area opt)",
            model.add_k_area_opt(5, 8).cycles,
            model.add_k_area_opt(5, 8).energy_pj,
            model.adder_area_um2
        );
        println!(
            "{:<22} {:>8} {:>12.1} {:>10.1}",
            "5op add (lat opt)",
            model.add_k_latency_opt(5, 8).cycles,
            model.add_k_latency_opt(5, 8).energy_pj,
            model.add_latency_opt_area_um2(5)
        );
        println!(
            "{:<22} {:>8} {:>12.1} {:>10.1}",
            "2op mult",
            model.mult2(8).cycles,
            model.mult2(8).energy_pj,
            model.mult_area_um2
        );
    }

    println!(
        "\n-- Headline speedups vs SPIM (paper: 1.9x / 9.4x / 6.9x / 2.3x on paper cycles) --"
    );
    let s = SerialDwmPim::spim();
    println!(
        "2op add:            {:.2}x (measured) / {:.2}x (paper cycles)",
        s.add2(8).cycles as f64 / m7.add2.cycles as f64,
        s.add2(8).cycles as f64 / 26.0
    );
    println!(
        "5op add (area opt): {:.2}x (measured) / {:.2}x (paper cycles)",
        s.add_k_area_opt(5, 8).cycles as f64 / m7.add_max.cycles as f64,
        s.add_k_area_opt(5, 8).cycles as f64 / 26.0
    );
    println!(
        "5op add (lat opt):  {:.2}x (measured) / {:.2}x (paper cycles)",
        s.add_k_latency_opt(5, 8).cycles as f64 / m7.add_max.cycles as f64,
        s.add_k_latency_opt(5, 8).cycles as f64 / 26.0
    );
    println!(
        "2op mult:           {:.2}x (measured) / {:.2}x (paper cycles)",
        s.mult2(8).cycles as f64 / m7.mult.cycles as f64,
        s.mult2(8).cycles as f64 / 64.0
    );
}
