//! Perf harness for the trace-driven DWM cache frontend: every
//! placement policy replayed over every locality mix, misses converted
//! into real served PIM jobs, plus the two contracts the frontend
//! guarantees — replay bit-determinism across runtime shard counts, and
//! the hotness-weighted policy's shift saving on a locality-heavy trace.
//!
//! The `bench_cache` binary serializes the result to `BENCH_cache.json`
//! so successive PRs leave a comparable trajectory in the repository
//! history.

use coruscant_dwmcache::replay::{replay, ReplayConfig};
use coruscant_dwmcache::{
    CacheConfig, EagerRestore, HotnessWeighted, Mix, NaiveStatic, PlacementPolicy, PolicyReport,
    SynthSpec,
};
use coruscant_mem::MemoryConfig;
use serde::Serialize;
use std::time::Instant;

/// A named constructor for one placement policy under sweep.
type PolicyCtor = (&'static str, fn() -> Box<dyn PlacementPolicy>);

/// The policies the harness sweeps, by bench name.
fn policies() -> Vec<PolicyCtor> {
    vec![
        ("naive-static", || Box::new(NaiveStatic)),
        ("eager-restore", || Box::new(EagerRestore)),
        ("hotness-weighted", || Box::new(HotnessWeighted::default())),
    ]
}

/// The locality mixes the harness sweeps. `hot90` is the locality-heavy
/// trace the hotness-vs-naive contract is measured on: its hot pool is
/// half the cache, several hot lines per set, so the tape genuinely
/// contends between resident lines (a single hot line per set is a
/// degenerate case where even a lazy tape never moves).
fn mixes(cache: &CacheConfig) -> Vec<Mix> {
    vec![
        Mix::Streaming,
        Mix::Strided(4),
        hot_mix(cache),
        Mix::Uniform,
    ]
}

/// The locality-heavy contract trace: 90% of accesses over a hot pool
/// of half the cache's lines.
fn hot_mix(cache: &CacheConfig) -> Mix {
    Mix::HotCold {
        hot_lines: (cache.lines() / 2).max(1) as u64,
        hot_pct: 90,
    }
}

/// One (trace, policy) cell.
#[derive(Debug, Clone, Serialize)]
pub struct CacheBenchRow {
    /// Trace mix name (`streaming`, `strided4`, `hot90`, `uniform`).
    pub trace: String,
    /// Placement-policy name.
    pub policy: String,
    /// Tag hit fraction.
    pub hit_rate: f64,
    /// Demand + restore + migration shift cycles.
    pub total_shift_cycles: u64,
    /// Critical-path shift cycles.
    pub demand_shift_cycles: u64,
    /// Mean total shift cycles per access.
    pub avg_shift_per_access: f64,
    /// Misses converted into served PIM jobs.
    pub miss_jobs: u64,
    /// Host wall time of the full replay (cache model + job serving),
    /// milliseconds.
    pub wall_ms: f64,
    /// Host miss-job throughput through the serving frontend.
    pub miss_jobs_per_sec: f64,
    /// The full deterministic report.
    pub report: PolicyReport,
}

/// The full `BENCH_cache.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct CacheBench {
    /// Accesses per trace.
    pub accesses: usize,
    /// Trace footprint in lines.
    pub lines: u64,
    /// Cache sets.
    pub sets: usize,
    /// Cache ways.
    pub ways: usize,
    /// Runtime shards serving the converted jobs.
    pub shards: usize,
    /// Every (trace × policy) cell.
    pub rows: Vec<CacheBenchRow>,
    /// Fractional total-shift-cycle reduction of hotness-weighted vs
    /// naive-static on the locality-heavy (`hot90`) trace. The frontend
    /// contract requires ≥ 0.15.
    pub hotness_vs_naive_shift_reduction: f64,
    /// Whether the `hot90`/hotness-weighted replay produced bit-identical
    /// reports and job outputs at 1, 2, and 4 runtime shards.
    pub deterministic_across_shards: bool,
}

fn trace_for(
    mix: Mix,
    accesses: usize,
    lines: u64,
    line_bytes: u64,
) -> Vec<coruscant_dwmcache::Access> {
    SynthSpec {
        mix,
        accesses,
        lines,
        line_bytes,
        write_pct: 25,
        seed: 2718,
    }
    .generate()
}

fn run_cell(
    trace_name: &str,
    trace: &[coruscant_dwmcache::Access],
    policy_name: &str,
    policy: Box<dyn PlacementPolicy>,
    config: &ReplayConfig,
) -> CacheBenchRow {
    let start = Instant::now();
    let outcome = replay(trace, policy, config).expect("replay succeeds");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let report = outcome.report;
    CacheBenchRow {
        trace: trace_name.to_string(),
        policy: policy_name.to_string(),
        hit_rate: report.hit_rate,
        total_shift_cycles: report.total_shift_cycles,
        demand_shift_cycles: report.demand_shift_cycles,
        avg_shift_per_access: report.avg_shift_per_access,
        miss_jobs: report.miss_jobs,
        wall_ms,
        miss_jobs_per_sec: report.miss_jobs as f64 / (wall_ms / 1e3),
        report,
    }
}

/// Runs the full traces × policies sweep plus the two contract checks.
#[must_use]
pub fn run_full(
    memory: &MemoryConfig,
    cache: CacheConfig,
    accesses: usize,
    lines: u64,
) -> CacheBench {
    let line_bytes = (memory.nanowires_per_dbc / 8) as u64;
    let config = ReplayConfig {
        memory: memory.clone(),
        cache,
        jobs: Default::default(),
        shards: 1,
    };

    let mut rows = Vec::new();
    for mix in mixes(&cache) {
        let trace = trace_for(mix, accesses, lines, line_bytes);
        for (policy_name, mk) in policies() {
            rows.push(run_cell(&mix.name(), &trace, policy_name, mk(), &config));
        }
    }

    let shift_of = |trace: &str, policy: &str| -> u64 {
        rows.iter()
            .find(|r| r.trace == trace && r.policy == policy)
            .expect("swept cell")
            .total_shift_cycles
    };
    let naive = shift_of("hot90", "naive-static") as f64;
    let hot = shift_of("hot90", "hotness-weighted") as f64;
    let reduction = 1.0 - hot / naive;

    // Determinism contract: the locality-heavy replay is bit-identical
    // whatever the runtime shard count.
    let hot_trace = trace_for(hot_mix(&cache), accesses, lines, line_bytes);
    let base = replay(
        &hot_trace,
        Box::new(HotnessWeighted::default()),
        &config.clone().with_shards(1),
    )
    .expect("replay succeeds");
    let deterministic = [2usize, 4].iter().all(|&s| {
        replay(
            &hot_trace,
            Box::new(HotnessWeighted::default()),
            &config.clone().with_shards(s),
        )
        .expect("replay succeeds")
            == base
    });

    CacheBench {
        accesses,
        lines,
        sets: cache.sets,
        ways: cache.ways,
        shards: config.shards,
        rows,
        hotness_vs_naive_shift_reduction: reduction,
        deterministic_across_shards: deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny-geometry smoke: the sweep covers every (trace, policy) cell,
    /// the books balance everywhere, and both frontend contracts hold —
    /// bit-determinism across shards and the ≥15% hotness shift saving
    /// on the locality-heavy trace.
    #[test]
    fn harness_smoke_and_contracts() {
        let bench = run_full(&MemoryConfig::tiny(), CacheConfig::new(16, 8), 3_000, 512);
        assert_eq!(bench.rows.len(), 4 * 3);
        for row in &bench.rows {
            assert!(row.report.stats.balanced(), "{}/{}", row.trace, row.policy);
            assert_eq!(row.miss_jobs, row.report.stats.misses);
            assert!(row.wall_ms > 0.0);
        }
        // Tag behaviour is placement-independent: per trace, all three
        // policies see the same hit rate.
        for mix in ["streaming", "strided4", "hot90", "uniform"] {
            let rates: Vec<f64> = bench
                .rows
                .iter()
                .filter(|r| r.trace == mix)
                .map(|r| r.hit_rate)
                .collect();
            assert!(rates.windows(2).all(|w| w[0] == w[1]), "{mix}: {rates:?}");
        }
        assert!(
            bench.hotness_vs_naive_shift_reduction >= 0.15,
            "contract: ≥15% shift saving, got {}",
            bench.hotness_vs_naive_shift_reduction
        );
        assert!(bench.deterministic_across_shards);
    }
}
