//! Load generator for the async serving frontend: closed-loop client
//! fleets driving a [`coruscant_server::Server`], measuring end-to-end
//! submit→resolve latency percentiles and throughput, with and without
//! admission control.
//!
//! The `bench_server` binary serializes the result to
//! `BENCH_server.json` alongside `BENCH_runtime.json`, so the serving
//! path leaves its own perf trajectory in the repository history.

use coruscant_mem::{MemoryConfig, MemoryController};
use coruscant_qos::{ArrivalGen, ArrivalSpec, ClientConfig, QosOptions, RateQuota};
use coruscant_server::{
    AdmissionOptions, Rejected, Server, ServerOptions, ServerStats, SubmitOptions,
};
use coruscant_workloads::bitmap::BitmapDataset;
use coruscant_workloads::compile::PimProgram;
use coruscant_workloads::serve::{compile_bitmap_query_with, QueryPlan};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency distribution of one load point, in microseconds.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyStats {
    /// Completed requests the distribution covers.
    pub samples: u64,
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

/// The `p`-th percentile (0–100) of a **sorted** sample set.
#[must_use]
pub fn percentile(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (sorted.len() * p).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Summarizes a latency sample set (sorts internally).
#[must_use]
pub fn latency_stats(mut samples: Vec<Duration>) -> LatencyStats {
    samples.sort();
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let mean = if samples.is_empty() {
        0.0
    } else {
        samples.iter().map(|&d| us(d)).sum::<f64>() / samples.len() as f64
    };
    LatencyStats {
        samples: samples.len() as u64,
        mean_us: mean,
        p50_us: us(percentile(&samples, 50)),
        p90_us: us(percentile(&samples, 90)),
        p99_us: us(percentile(&samples, 99)),
        max_us: samples.last().map_or(0.0, |&d| us(d)),
    }
}

/// One load point: a closed-loop client fleet against one server
/// configuration.
#[derive(Debug, Clone, Serialize)]
pub struct LoadPoint {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client attempted.
    pub per_client: usize,
    /// Whether admission control was on (small queue, shedding) or off
    /// (blocking backpressure, the deterministic path).
    pub admission: bool,
    /// Host wall time for the whole fleet, milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second of host wall time.
    pub jobs_per_sec: f64,
    /// End-to-end submit→resolve latency over completed requests.
    pub latency: LatencyStats,
    /// The server's final balanced accounting.
    pub stats: ServerStats,
}

/// Drives one closed-loop load point: `clients` threads, each submitting
/// and waiting `per_client` times. Shed submissions (admission arm only)
/// are counted in the stats and skipped, not retried.
///
/// # Panics
///
/// Panics if the server fails to start or a completion is lost — the
/// bench doubles as a correctness smoke test.
#[must_use]
pub fn run_load_point(
    config: &MemoryConfig,
    programs: &[PimProgram],
    clients: usize,
    per_client: usize,
    admission: Option<AdmissionOptions>,
) -> LoadPoint {
    let is_admission = admission.is_some();
    let mut runtime = coruscant_runtime::RuntimeOptions::default();
    if is_admission {
        // The shedding arm needs a queue small enough to overflow.
        runtime.queue_capacity = 8;
    }
    let options = ServerOptions {
        runtime,
        admission: admission.unwrap_or_default(),
        ..ServerOptions::default()
    };
    let server = Server::start(config.clone(), options).expect("server starts");
    let programs: Arc<[PimProgram]> = programs.into();

    let started = Instant::now();
    let joins: Vec<_> = (0..clients)
        .map(|t| {
            let client = server.client();
            let programs = Arc::clone(&programs);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let program = programs[(t * per_client + i) % programs.len()].clone();
                    let begun = Instant::now();
                    match client.submit_with(program, SubmitOptions::default()) {
                        Ok(handle) => {
                            handle.wait().expect("accepted request completes");
                            latencies.push(begun.elapsed());
                        }
                        Err(Rejected::Overload | Rejected::QueueFull) => {}
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
                latencies
            })
        })
        .collect();
    let latencies: Vec<Duration> = joins
        .into_iter()
        .flat_map(|j| j.join().expect("client thread"))
        .collect();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let stats = server.shutdown().expect("server drains");
    assert!(stats.balanced(), "bench accounting must balance: {stats:?}");
    assert_eq!(stats.lost, 0, "no completion may be lost");
    LoadPoint {
        clients,
        per_client,
        admission: is_admission,
        wall_ms,
        jobs_per_sec: stats.completed as f64 / (wall_ms / 1e3),
        latency: latency_stats(latencies),
        stats,
    }
}

/// What one open-loop client observed: the generator submits on the
/// wall-clock arrival schedule regardless of completions, a collector
/// waits each handle in submission order, and latency is measured from
/// the *scheduled* arrival (so queueing delay from schedule slip counts
/// against the server, as open-loop methodology requires).
struct OpenLoopOutcome {
    latencies: Vec<Duration>,
    submitted: u64,
    accepted: u64,
    throttled: u64,
    shed: u64,
}

fn open_loop_client(
    client: coruscant_server::Client,
    programs: Arc<[PimProgram]>,
    spec: ArrivalSpec,
    seed: u64,
    duration: Duration,
    options: SubmitOptions,
) -> OpenLoopOutcome {
    let (tx, rx) = std::sync::mpsc::channel::<(Instant, coruscant_server::JobHandle)>();
    let collector = std::thread::spawn(move || {
        let mut latencies = Vec::new();
        for (scheduled, handle) in rx {
            // Expired or otherwise errored jobs produce no latency
            // sample; the server-side QoS stats account for them.
            if handle.wait().is_ok() {
                latencies.push(scheduled.elapsed());
            }
        }
        latencies
    });
    let mut gen = ArrivalGen::new(spec, seed);
    let start = Instant::now();
    let mut submitted = 0u64;
    let mut accepted = 0u64;
    let mut throttled = 0u64;
    let mut shed = 0u64;
    let mut i = 0usize;
    while let Some(offset) = gen.next_offset() {
        if offset >= duration {
            break;
        }
        let at = start + offset;
        let now = Instant::now();
        if at > now {
            std::thread::sleep(at - now);
        }
        submitted += 1;
        let program = programs[i % programs.len()].clone();
        i += 1;
        match client.submit_with(program, options.clone()) {
            Ok(handle) => {
                accepted += 1;
                let _ = tx.send((at, handle));
            }
            Err(Rejected::Throttled) => throttled += 1,
            Err(Rejected::Overload | Rejected::QueueFull) => shed += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    drop(tx);
    let latencies = collector.join().expect("collector thread");
    OpenLoopOutcome {
        latencies,
        submitted,
        accepted,
        throttled,
        shed,
    }
}

/// One open-loop load point: a seeded Poisson arrival process at a fixed
/// offered rate against one server.
#[derive(Debug, Clone, Serialize)]
pub struct OpenLoopPoint {
    /// The arrival process's nominal offered rate, requests per second.
    pub offered_per_sec: f64,
    /// The rate the generator actually sustained (submissions over wall
    /// time) — lower than nominal when the generator itself saturates.
    pub actual_offered_per_sec: f64,
    /// Completions per second of wall time.
    pub achieved_per_sec: f64,
    /// Arrivals the generator fired.
    pub submitted: u64,
    /// Arrivals that entered the runtime queue.
    pub accepted: u64,
    /// Arrivals shed by admission control.
    pub shed: u64,
    /// Accepted jobs that completed with outputs.
    pub completed: u64,
    /// End-to-end latency from *scheduled* arrival to resolution.
    pub latency: LatencyStats,
}

/// Runs one open-loop point: Poisson arrivals at `rate_per_sec` for
/// `duration`, admission control on (non-blocking submission, so the
/// schedule never distorts into closed-loop backpressure).
///
/// # Panics
///
/// Panics if the server fails to start or its accounting is unbalanced.
#[must_use]
pub fn run_open_loop(
    config: &MemoryConfig,
    programs: &[PimProgram],
    rate_per_sec: f64,
    seed: u64,
    duration: Duration,
) -> OpenLoopPoint {
    let server = Server::start(
        config.clone(),
        ServerOptions {
            admission: AdmissionOptions::enabled(),
            ..ServerOptions::default()
        },
    )
    .expect("server starts");
    let programs: Arc<[PimProgram]> = programs.into();
    let started = Instant::now();
    let outcome = open_loop_client(
        server.client(),
        programs,
        ArrivalSpec::Poisson { rate_per_sec },
        seed,
        duration,
        SubmitOptions::default(),
    );
    let wall = started.elapsed().as_secs_f64();
    let stats = server.shutdown().expect("server drains");
    assert!(stats.balanced(), "open-loop accounting balances: {stats:?}");
    OpenLoopPoint {
        offered_per_sec: rate_per_sec,
        actual_offered_per_sec: outcome.submitted as f64 / wall,
        achieved_per_sec: outcome.latencies.len() as f64 / wall,
        submitted: outcome.submitted,
        accepted: outcome.accepted,
        shed: outcome.shed,
        completed: outcome.latencies.len() as u64,
        latency: latency_stats(outcome.latencies),
    }
}

/// An offered-rate sweep with its saturation knee.
#[derive(Debug, Clone, Serialize)]
pub struct OpenLoopSweep {
    /// The swept points, in offered-rate order.
    pub points: Vec<OpenLoopPoint>,
    /// The saturation knee: the highest actual offered rate whose
    /// achieved throughput kept within 90% of it *and* whose p99 stayed
    /// within 10× the lowest-rate point's p99 (floor 2 ms) — a point
    /// that keeps up on throughput but has already blown up on latency
    /// is past the knee, not on it. When every point fell short (the
    /// sweep started past saturation), the best *achieved* rate stands
    /// in — what the server demonstrably sustained is the only honest
    /// capacity estimate the sweep produced.
    pub knee_per_sec: f64,
}

/// Sweeps offered rates and finds the saturation knee.
#[must_use]
pub fn run_open_loop_sweep(
    config: &MemoryConfig,
    programs: &[PimProgram],
    rates: &[f64],
    seed: u64,
    point_duration: Duration,
) -> OpenLoopSweep {
    let points: Vec<OpenLoopPoint> = rates
        .iter()
        .enumerate()
        .map(|(i, &r)| run_open_loop(config, programs, r, seed ^ (i as u64) << 32, point_duration))
        .collect();
    let base_p99_us = points.first().map_or(0.0, |p| p.latency.p99_us);
    let p99_ceiling_us = (10.0 * base_p99_us).max(2_000.0);
    let mut knee_per_sec = points
        .iter()
        .filter(|p| {
            p.achieved_per_sec >= 0.9 * p.actual_offered_per_sec
                && p.latency.p99_us <= p99_ceiling_us
        })
        .map(|p| p.actual_offered_per_sec)
        .fold(0.0, f64::max);
    if knee_per_sec == 0.0 {
        // Every point was past saturation: the best achieved rate is
        // the only demonstrated-sustainable capacity.
        knee_per_sec = points
            .iter()
            .map(|p| p.achieved_per_sec)
            .fold(0.0, f64::max);
    }
    OpenLoopSweep {
        points,
        knee_per_sec,
    }
}

/// The two-tenant fairness arm: at 80% of measured saturation, a
/// compliant client (weight 4, deadline = SLO) must hold its p99 while a
/// misbehaving client offering 5× its rate quota is throttled to it.
#[derive(Debug, Clone, Serialize)]
pub struct FairnessArm {
    /// The saturation estimate the arm was scaled from (requests/s).
    pub saturation_per_sec: f64,
    /// The compliant client's offered rate.
    pub compliant_offered_per_sec: f64,
    /// The misbehaving client's offered rate (5× its quota).
    pub misbehaving_offered_per_sec: f64,
    /// The misbehaving client's rate quota.
    pub quota_per_sec: f64,
    /// The quota's burst allowance, in tokens.
    pub quota_burst: f64,
    /// Wall time the arm ran, milliseconds.
    pub wall_ms: f64,
    /// The compliant client's p99 SLO, microseconds.
    pub slo_us: f64,
    /// The compliant client's observed latency distribution.
    pub compliant_latency: LatencyStats,
    /// The compliant client's deadline hit rate (server-side QoS view).
    pub compliant_deadline_hit_rate: f64,
    /// Submissions the misbehaving client got admitted.
    pub misbehaving_accepted: u64,
    /// Submissions the misbehaving client had throttled.
    pub misbehaving_throttled: u64,
    /// The quota ceiling for the run: `quota × wall + burst`.
    pub quota_cap: f64,
    /// Gate: the misbehaving client's admissions stayed within the
    /// quota ceiling (+10% tolerance).
    pub misbehaving_within_quota: bool,
    /// Gate: the compliant client's p99 held the SLO.
    pub compliant_within_slo: bool,
    /// The server's final balanced accounting (QoS view included).
    pub stats: ServerStats,
}

/// Runs the fairness arm. `saturation_per_sec` should come from the
/// open-loop sweep's knee (or a closed-loop calibration); the arm
/// derives every rate from 80% of it.
///
/// # Panics
///
/// Panics if the server fails to start or its accounting is unbalanced.
#[must_use]
pub fn run_fairness(
    config: &MemoryConfig,
    programs: &[PimProgram],
    saturation_per_sec: f64,
    duration: Duration,
    slo: Duration,
    seed: u64,
) -> FairnessArm {
    use coruscant_runtime::IssuePolicy;
    let s80 = 0.8 * saturation_per_sec;
    let compliant_rate = 0.3 * s80;
    // Quota sized so compliant + quota together sit near half the
    // measured knee: the arm demonstrates *fairness at 80% offered*,
    // and the admitted mix must leave latency headroom for the
    // compliant tenant's p99 to be a scheduling signal, not a
    // queueing-noise lottery.
    let quota_rate = 0.35 * s80;
    let quota_burst = 8.0;
    let misbehaving_rate = 5.0 * quota_rate;
    let qos = QosOptions::default()
        .enabled()
        .with_client(ClientConfig::new("compliant", 4.0))
        .with_client(
            ClientConfig::new("misbehaving", 1.0)
                .with_quota(RateQuota::new(quota_rate, quota_burst)),
        );
    let server = Server::start(
        config.clone(),
        ServerOptions {
            runtime: coruscant_runtime::RuntimeOptions::default()
                .with_issue_policy(IssuePolicy::Edf),
            admission: AdmissionOptions::enabled(),
            qos,
        },
    )
    .expect("server starts");
    let programs: Arc<[PimProgram]> = programs.into();
    let started = Instant::now();
    let compliant_join = {
        let client = server.client();
        let programs = Arc::clone(&programs);
        std::thread::spawn(move || {
            open_loop_client(
                client,
                programs,
                ArrivalSpec::Poisson {
                    rate_per_sec: compliant_rate,
                },
                seed ^ 0xC0,
                duration,
                SubmitOptions::default()
                    .for_client("compliant")
                    .with_deadline(slo),
            )
        })
    };
    let misbehaving_join = {
        let client = server.client();
        let programs = Arc::clone(&programs);
        std::thread::spawn(move || {
            open_loop_client(
                client,
                programs,
                ArrivalSpec::Poisson {
                    rate_per_sec: misbehaving_rate,
                },
                seed ^ 0x5BAD,
                duration,
                SubmitOptions::default().for_client("misbehaving"),
            )
        })
    };
    let compliant = compliant_join.join().expect("compliant client");
    let misbehaving = misbehaving_join.join().expect("misbehaving client");
    let wall = started.elapsed().as_secs_f64();
    let stats = server.shutdown().expect("server drains");
    assert!(stats.balanced(), "fairness accounting balances: {stats:?}");

    let quota_cap = quota_rate * wall + quota_burst;
    let compliant_latency = latency_stats(compliant.latencies);
    let hit_rate = stats
        .qos
        .client("compliant")
        .map_or(1.0, coruscant_qos::ClientQosStats::deadline_hit_rate);
    let slo_us = slo.as_secs_f64() * 1e6;
    FairnessArm {
        saturation_per_sec,
        compliant_offered_per_sec: compliant_rate,
        misbehaving_offered_per_sec: misbehaving_rate,
        quota_per_sec: quota_rate,
        quota_burst,
        wall_ms: wall * 1e3,
        slo_us,
        compliant_within_slo: compliant_latency.p99_us <= slo_us,
        compliant_latency,
        compliant_deadline_hit_rate: hit_rate,
        misbehaving_accepted: misbehaving.accepted,
        misbehaving_throttled: misbehaving.throttled,
        misbehaving_within_quota: (misbehaving.accepted as f64) <= 1.1 * quota_cap,
        quota_cap,
        stats,
    }
}

/// The full `BENCH_server.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct ServerBench {
    /// Banks in the benched geometry.
    pub banks: usize,
    /// PIM units in the benched geometry.
    pub pim_units: usize,
    /// Closed-loop fleet scaling with admission off (deterministic
    /// backpressure path).
    pub backpressure: Vec<LoadPoint>,
    /// The same fleet at the widest point with admission on.
    pub shedding: LoadPoint,
    /// Open-loop offered-rate sweep with its saturation knee.
    pub open_loop: OpenLoopSweep,
    /// The two-tenant weighted-fair QoS arm at 80% of saturation.
    pub fairness: FairnessArm,
}

/// Durations and seeds for the open-loop and fairness arms, so the CI
/// smoke can run the same harness in milliseconds.
#[derive(Debug, Clone)]
pub struct QosBenchProfile {
    /// Offered rates as fractions of the closed-loop saturation estimate.
    pub sweep_fractions: Vec<f64>,
    /// Wall time per open-loop sweep point.
    pub point_duration: Duration,
    /// Wall time for the fairness arm.
    pub fairness_duration: Duration,
    /// The compliant client's p99 SLO (and queueing deadline).
    pub slo: Duration,
    /// Arrival-process seed.
    pub seed: u64,
}

impl Default for QosBenchProfile {
    fn default() -> QosBenchProfile {
        QosBenchProfile {
            sweep_fractions: vec![0.25, 0.5, 0.75, 0.9, 1.0, 1.25],
            point_duration: Duration::from_millis(1500),
            fairness_duration: Duration::from_millis(4000),
            slo: Duration::from_millis(25),
            seed: 0xC0C0_5CA7,
        }
    }
}

impl QosBenchProfile {
    /// A seconds-scale profile for the CI `qos-smoke` job.
    #[must_use]
    pub fn smoke() -> QosBenchProfile {
        QosBenchProfile {
            sweep_fractions: vec![0.5, 1.0],
            point_duration: Duration::from_millis(400),
            fairness_duration: Duration::from_millis(1200),
            ..QosBenchProfile::default()
        }
    }
}

/// Runs the whole harness: a client-fleet scaling sweep plus one
/// admission-on arm at the widest fleet.
#[must_use]
pub fn run_full(
    config: &MemoryConfig,
    rows: usize,
    fleets: &[usize],
    per_client: usize,
    qos: &QosBenchProfile,
) -> ServerBench {
    let ds = BitmapDataset::generate(rows, 3, 11);
    let programs =
        compile_bitmap_query_with(&ds, 3, config, QueryPlan::Fused).expect("query compiles");
    let backpressure: Vec<LoadPoint> = fleets
        .iter()
        .map(|&c| run_load_point(config, &programs, c, per_client, None))
        .collect();
    let widest = fleets.iter().copied().max().unwrap_or(1);
    let shedding = run_load_point(
        config,
        &programs,
        widest,
        per_client,
        Some(AdmissionOptions::enabled()),
    );
    // The closed-loop throughput at the widest fleet calibrates the
    // open-loop sweep's rate grid; the sweep's knee then anchors the
    // fairness arm at 80% of *measured* saturation.
    let calibration = backpressure
        .iter()
        .map(|p| p.jobs_per_sec)
        .fold(0.0, f64::max)
        .max(1.0);
    let rates: Vec<f64> = qos
        .sweep_fractions
        .iter()
        .map(|f| f * calibration)
        .collect();
    let open_loop = run_open_loop_sweep(config, &programs, &rates, qos.seed, qos.point_duration);
    let knee = if open_loop.knee_per_sec > 0.0 {
        open_loop.knee_per_sec
    } else {
        calibration
    };
    let fairness = run_fairness(
        config,
        &programs,
        knee,
        qos.fairness_duration,
        qos.slo,
        qos.seed,
    );
    ServerBench {
        banks: config.banks,
        pim_units: MemoryController::new(config.clone()).pim_unit_count(),
        backpressure,
        shedding,
        open_loop,
        fairness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_expected_ranks() {
        let ms = |n| Duration::from_millis(n);
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 50), ms(50));
        assert_eq!(percentile(&sorted, 99), ms(99));
        assert_eq!(percentile(&sorted, 100), ms(100));
        assert_eq!(percentile(&[], 99), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 50), ms(7));
    }

    /// Tiny-geometry smoke: the harness runs, every point balances, the
    /// backpressure arms complete everything, and the latency summary is
    /// internally ordered.
    #[test]
    fn harness_smoke_on_tiny_geometry() {
        let config = MemoryConfig::tiny();
        let profile = QosBenchProfile {
            sweep_fractions: vec![0.5],
            point_duration: Duration::from_millis(150),
            fairness_duration: Duration::from_millis(300),
            ..QosBenchProfile::smoke()
        };
        let bench = run_full(&config, 512, &[1, 2], 12, &profile);
        assert_eq!(bench.backpressure.len(), 2);
        for point in &bench.backpressure {
            let want = (point.clients * point.per_client) as u64;
            assert_eq!(point.stats.completed, want, "backpressure sheds nothing");
            assert_eq!(point.latency.samples, want);
            assert!(point.latency.p50_us <= point.latency.p99_us);
            assert!(point.latency.p99_us <= point.latency.max_us);
            assert!(point.jobs_per_sec > 0.0);
        }
        let shed = &bench.shedding;
        assert!(shed.stats.balanced(), "{shed:?}");
        assert_eq!(
            shed.stats.completed + shed.stats.rejected(),
            (shed.clients * shed.per_client) as u64
        );
        assert_eq!(bench.open_loop.points.len(), 1);
        for point in &bench.open_loop.points {
            assert_eq!(point.submitted, point.accepted + point.shed);
        }
        let fair = &bench.fairness;
        assert!(fair.stats.balanced(), "{fair:?}");
        assert_eq!(
            fair.misbehaving_accepted + fair.misbehaving_throttled,
            fair.stats
                .qos
                .client("misbehaving")
                .map_or(0, |c| c.accepted + c.throttled)
        );
    }
}
