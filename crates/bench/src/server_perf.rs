//! Load generator for the async serving frontend: closed-loop client
//! fleets driving a [`coruscant_server::Server`], measuring end-to-end
//! submit→resolve latency percentiles and throughput, with and without
//! admission control.
//!
//! The `bench_server` binary serializes the result to
//! `BENCH_server.json` alongside `BENCH_runtime.json`, so the serving
//! path leaves its own perf trajectory in the repository history.

use coruscant_mem::{MemoryConfig, MemoryController};
use coruscant_server::{
    AdmissionOptions, Rejected, Server, ServerOptions, ServerStats, SubmitOptions,
};
use coruscant_workloads::bitmap::BitmapDataset;
use coruscant_workloads::compile::PimProgram;
use coruscant_workloads::serve::{compile_bitmap_query_with, QueryPlan};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency distribution of one load point, in microseconds.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyStats {
    /// Completed requests the distribution covers.
    pub samples: u64,
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

/// The `p`-th percentile (0–100) of a **sorted** sample set.
#[must_use]
pub fn percentile(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (sorted.len() * p).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Summarizes a latency sample set (sorts internally).
#[must_use]
pub fn latency_stats(mut samples: Vec<Duration>) -> LatencyStats {
    samples.sort();
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let mean = if samples.is_empty() {
        0.0
    } else {
        samples.iter().map(|&d| us(d)).sum::<f64>() / samples.len() as f64
    };
    LatencyStats {
        samples: samples.len() as u64,
        mean_us: mean,
        p50_us: us(percentile(&samples, 50)),
        p90_us: us(percentile(&samples, 90)),
        p99_us: us(percentile(&samples, 99)),
        max_us: samples.last().map_or(0.0, |&d| us(d)),
    }
}

/// One load point: a closed-loop client fleet against one server
/// configuration.
#[derive(Debug, Clone, Serialize)]
pub struct LoadPoint {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client attempted.
    pub per_client: usize,
    /// Whether admission control was on (small queue, shedding) or off
    /// (blocking backpressure, the deterministic path).
    pub admission: bool,
    /// Host wall time for the whole fleet, milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second of host wall time.
    pub jobs_per_sec: f64,
    /// End-to-end submit→resolve latency over completed requests.
    pub latency: LatencyStats,
    /// The server's final balanced accounting.
    pub stats: ServerStats,
}

/// Drives one closed-loop load point: `clients` threads, each submitting
/// and waiting `per_client` times. Shed submissions (admission arm only)
/// are counted in the stats and skipped, not retried.
///
/// # Panics
///
/// Panics if the server fails to start or a completion is lost — the
/// bench doubles as a correctness smoke test.
#[must_use]
pub fn run_load_point(
    config: &MemoryConfig,
    programs: &[PimProgram],
    clients: usize,
    per_client: usize,
    admission: Option<AdmissionOptions>,
) -> LoadPoint {
    let is_admission = admission.is_some();
    let mut runtime = coruscant_runtime::RuntimeOptions::default();
    if is_admission {
        // The shedding arm needs a queue small enough to overflow.
        runtime.queue_capacity = 8;
    }
    let options = ServerOptions {
        runtime,
        admission: admission.unwrap_or_default(),
    };
    let server = Server::start(config.clone(), options).expect("server starts");
    let programs: Arc<[PimProgram]> = programs.into();

    let started = Instant::now();
    let joins: Vec<_> = (0..clients)
        .map(|t| {
            let client = server.client();
            let programs = Arc::clone(&programs);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let program = programs[(t * per_client + i) % programs.len()].clone();
                    let begun = Instant::now();
                    match client.submit_with(program, SubmitOptions::default()) {
                        Ok(handle) => {
                            handle.wait().expect("accepted request completes");
                            latencies.push(begun.elapsed());
                        }
                        Err(Rejected::Overload | Rejected::QueueFull) => {}
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
                latencies
            })
        })
        .collect();
    let latencies: Vec<Duration> = joins
        .into_iter()
        .flat_map(|j| j.join().expect("client thread"))
        .collect();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let stats = server.shutdown().expect("server drains");
    assert!(stats.balanced(), "bench accounting must balance: {stats:?}");
    assert_eq!(stats.lost, 0, "no completion may be lost");
    LoadPoint {
        clients,
        per_client,
        admission: is_admission,
        wall_ms,
        jobs_per_sec: stats.completed as f64 / (wall_ms / 1e3),
        latency: latency_stats(latencies),
        stats,
    }
}

/// The full `BENCH_server.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct ServerBench {
    /// Banks in the benched geometry.
    pub banks: usize,
    /// PIM units in the benched geometry.
    pub pim_units: usize,
    /// Closed-loop fleet scaling with admission off (deterministic
    /// backpressure path).
    pub backpressure: Vec<LoadPoint>,
    /// The same fleet at the widest point with admission on.
    pub shedding: LoadPoint,
}

/// Runs the whole harness: a client-fleet scaling sweep plus one
/// admission-on arm at the widest fleet.
#[must_use]
pub fn run_full(
    config: &MemoryConfig,
    rows: usize,
    fleets: &[usize],
    per_client: usize,
) -> ServerBench {
    let ds = BitmapDataset::generate(rows, 3, 11);
    let programs =
        compile_bitmap_query_with(&ds, 3, config, QueryPlan::Fused).expect("query compiles");
    let backpressure: Vec<LoadPoint> = fleets
        .iter()
        .map(|&c| run_load_point(config, &programs, c, per_client, None))
        .collect();
    let widest = fleets.iter().copied().max().unwrap_or(1);
    let shedding = run_load_point(
        config,
        &programs,
        widest,
        per_client,
        Some(AdmissionOptions::enabled()),
    );
    ServerBench {
        banks: config.banks,
        pim_units: MemoryController::new(config.clone()).pim_unit_count(),
        backpressure,
        shedding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_expected_ranks() {
        let ms = |n| Duration::from_millis(n);
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 50), ms(50));
        assert_eq!(percentile(&sorted, 99), ms(99));
        assert_eq!(percentile(&sorted, 100), ms(100));
        assert_eq!(percentile(&[], 99), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 50), ms(7));
    }

    /// Tiny-geometry smoke: the harness runs, every point balances, the
    /// backpressure arms complete everything, and the latency summary is
    /// internally ordered.
    #[test]
    fn harness_smoke_on_tiny_geometry() {
        let config = MemoryConfig::tiny();
        let bench = run_full(&config, 512, &[1, 2], 12);
        assert_eq!(bench.backpressure.len(), 2);
        for point in &bench.backpressure {
            let want = (point.clients * point.per_client) as u64;
            assert_eq!(point.stats.completed, want, "backpressure sheds nothing");
            assert_eq!(point.latency.samples, want);
            assert!(point.latency.p50_us <= point.latency.p99_us);
            assert!(point.latency.p99_us <= point.latency.max_us);
            assert!(point.jobs_per_sec > 0.0);
        }
        let shed = &bench.shedding;
        assert!(shed.stats.balanced(), "{shed:?}");
        assert_eq!(
            shed.stats.completed + shed.stats.rejected(),
            (shed.clients * shed.per_client) as u64
        );
    }
}
