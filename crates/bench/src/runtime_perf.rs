//! Perf-trajectory harness for the runtime's cross-job optimizations:
//! a shards × cache × batch grid over a bank-blocked bitmap-query
//! stream, plus a repeated-query campaign isolating the compile-time
//! saving of the compiled-program cache.
//!
//! The `bench_runtime` binary serializes the result to
//! `BENCH_runtime.json` so successive PRs leave a comparable perf
//! trajectory in the repository history.

use coruscant_mem::{MemoryConfig, MemoryController};
use coruscant_runtime::{
    BatchOptions, CacheOptions, Placement, Runtime, RuntimeOptions, RuntimeReport, SchedMode,
    SchedStats,
};
use coruscant_workloads::bitmap::BitmapDataset;
use coruscant_workloads::compile::PimProgram;
use coruscant_workloads::serve::{compile_bitmap_query_with, QueryPlan};
use serde::Serialize;
use std::time::Instant;

/// One cell of the shards × cache × batch grid.
#[derive(Debug, Clone, Serialize)]
pub struct GridPoint {
    /// Worker shards the session ran with.
    pub shards: usize,
    /// Whether the compiled-program cache was enabled.
    pub cache: bool,
    /// Whether same-bank batch fusion was enabled.
    pub batch: bool,
    /// Jobs served.
    pub jobs: u64,
    /// Host wall time, milliseconds, submit through finish.
    pub wall_ms: f64,
    /// Host throughput.
    pub jobs_per_sec: f64,
    /// Total modeled device cycles across all jobs.
    pub device_cycles: u64,
    /// Modeled end-to-end makespan (memory cycles, all banks drained).
    pub makespan_cycles: u64,
    /// Cache hits the session recorded.
    pub cache_hits: u64,
    /// Batched dispatches (≥2 jobs spliced) the session recorded.
    pub batches: u64,
}

/// The repeated-query campaign: the same compiled query submitted many
/// times, cold (cache off) vs warm (cache on).
#[derive(Debug, Clone, Serialize)]
pub struct RepeatedQueryCampaign {
    /// Submissions per arm.
    pub jobs: u64,
    /// Submit-side wall time with the cache disabled (every submission
    /// runs the full pass pipeline), milliseconds.
    pub cold_submit_ms: f64,
    /// Submit-side wall time with the cache enabled (one miss, then
    /// hash-lookup hits), milliseconds.
    pub warm_submit_ms: f64,
    /// `cold_submit_ms / warm_submit_ms` — the compile-time saving.
    pub speedup: f64,
    /// Cache hits the warm arm recorded (must be `jobs - 1`).
    pub warm_hits: u64,
}

/// Share of the scheduling hot path each stage consumed, percent of the
/// summed stage micros.
#[derive(Debug, Clone, Default, Serialize)]
pub struct StagePct {
    /// Submission-queue pops (and steal sweeps, parallel mode).
    pub pop: f64,
    /// Admission: compile-cache front, gating, chain admission.
    pub admit: f64,
    /// Placement resolution and program retargeting.
    pub place: f64,
    /// Batching, splicing, and dispatch (inline execution, parallel mode).
    pub dispatch: f64,
    /// Completion-ack draining and bookkeeping.
    pub ack: f64,
}

impl StagePct {
    fn of(sched: &SchedStats) -> StagePct {
        let total = sched.stage_micros();
        if total == 0 {
            return StagePct::default();
        }
        let pct = |v: u64| v as f64 / total as f64 * 100.0;
        StagePct {
            pop: pct(sched.pop_micros),
            admit: pct(sched.admit_micros),
            place: pct(sched.place_micros),
            dispatch: pct(sched.dispatch_micros),
            ack: pct(sched.ack_micros),
        }
    }
}

/// One cell of the scheduler-scaling sweep: a mode × shards × jobs run
/// with its wall throughput and its preemption-independent capacity.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// Scheduling engine: `"classic"` or `"parallel"`.
    pub mode: String,
    /// Shards (classic workers, or parallel scheduler domains).
    pub shards: usize,
    /// Jobs served.
    pub jobs: u64,
    /// Host wall time, milliseconds, submit through finish.
    pub wall_ms: f64,
    /// Host wall throughput. On hosts with fewer cores than shards this
    /// is preemption-bound — compare `capacity_jobs_per_sec` instead.
    pub jobs_per_sec: f64,
    /// Scheduler-capacity throughput: jobs divided by the busiest single
    /// thread's CPU busy time. Immune to core-count preemption, this is
    /// the serial-bottleneck metric scaling claims are made against.
    pub capacity_jobs_per_sec: f64,
    /// Busiest single thread's CPU busy time, microseconds.
    pub busy_micros: u64,
    /// Busiest thread's busy share of the engine's wall, percent.
    pub occupancy_pct: f64,
    /// Submissions moved between domains by work-stealing.
    pub steals: u64,
    /// Dispatches each shard/domain issued.
    pub per_shard_issued: Vec<u64>,
    /// Member jobs each shard/domain completed.
    pub per_shard_jobs: Vec<u64>,
    /// Where the scheduling hot path spent its stage time.
    pub stage_pct: StagePct,
}

/// The perf-smoke summary: the 8-domain vs 1-domain parallel scaling
/// ratio CI gates on, measured best-of-N on the capacity metric.
#[derive(Debug, Clone, Serialize)]
pub struct PerfSmoke {
    /// What the gated number means (kept in the JSON so the trajectory
    /// is self-describing).
    pub metric: String,
    /// Cores the host offered (`std::thread::available_parallelism`).
    pub host_cores: usize,
    /// Jobs per arm.
    pub jobs: u64,
    /// Runs per arm; each arm keeps its best capacity.
    pub best_of: usize,
    /// Best 1-domain parallel capacity, jobs/sec.
    pub capacity_1: f64,
    /// Best 8-domain parallel capacity, jobs/sec.
    pub capacity_8: f64,
    /// `capacity_8 / capacity_1` — the gated scaling ratio.
    pub capacity_ratio_8v1: f64,
    /// Wall-throughput ratio of the same best runs (informational; on a
    /// 1-core host this sits near 1.0 by construction).
    pub wall_ratio_8v1: f64,
}

/// The full `BENCH_runtime.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeBench {
    /// Banks in the benched geometry.
    pub banks: usize,
    /// PIM units in the benched geometry.
    pub pim_units: usize,
    /// Cores the host offered while benching.
    pub host_cores: usize,
    /// The shards × cache × batch grid.
    pub grid: Vec<GridPoint>,
    /// The compile-time campaign.
    pub repeated_query: RepeatedQueryCampaign,
    /// The mode × shards × jobs scheduler-scaling sweep.
    pub scaling: Vec<ScalePoint>,
    /// The gated parallel-scaling summary.
    pub perf_smoke: PerfSmoke,
}

/// Cores the host offers (1 if the query fails).
#[must_use]
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The job stream the grid serves: bitmap-query chunks placed in blocks
/// of `block` consecutive jobs per PIM unit, so same-unit runs exist for
/// batch fusion while the blocks still spread over every bank.
fn blocked_placements(n_jobs: usize, units: usize, block: usize) -> Vec<Placement> {
    (0..n_jobs)
        .map(|i| Placement::Unit((i / block) % units))
        .collect()
}

fn run_session(
    config: &MemoryConfig,
    programs: &[PimProgram],
    placements: &[Placement],
    options: RuntimeOptions,
) -> (RuntimeReport, f64) {
    let start = Instant::now();
    let rt = Runtime::new(config.clone(), options).expect("runtime options are valid");
    for (program, placement) in programs.iter().zip(placements) {
        rt.submit(program.clone(), *placement)
            .expect("submission succeeds");
    }
    let report = rt.finish().expect("session completes");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs one grid cell.
#[must_use]
pub fn grid_point(
    config: &MemoryConfig,
    programs: &[PimProgram],
    placements: &[Placement],
    shards: usize,
    cache: bool,
    batch: bool,
) -> GridPoint {
    let options = RuntimeOptions::default()
        .with_shards(shards)
        .with_cache(CacheOptions {
            enabled: cache,
            // Hold the whole distinct-program set even with skewed hash
            // partitioning across lock shards, so every repeat hits.
            capacity: programs.len().max(CacheOptions::default().capacity),
            ..CacheOptions::default()
        })
        .with_batch(if batch {
            BatchOptions::enabled()
        } else {
            BatchOptions::default()
        });
    let (report, wall_ms) = run_session(config, programs, placements, options);
    GridPoint {
        shards,
        cache,
        batch,
        jobs: report.stats.jobs,
        wall_ms,
        jobs_per_sec: report.stats.jobs as f64 / (wall_ms / 1e3),
        device_cycles: report.stats.device_cycles,
        makespan_cycles: report.stats.makespan_cycles,
        cache_hits: report.stats.cache.hits,
        batches: report.stats.batch.batches,
    }
}

/// Runs the full shards × cache × batch grid over a `rows`-row
/// bitmap-query stream submitted `rounds` times.
///
/// The repeats are what give the compiled-program cache something to do:
/// every chunk program is distinct, so a single pass can never hit — a
/// `cache: true` cell at `rounds` ≥ 2 must record exactly
/// `chunks × (rounds − 1)` hits.
#[must_use]
pub fn run_grid(
    config: &MemoryConfig,
    rows: usize,
    shards: &[usize],
    rounds: usize,
) -> Vec<GridPoint> {
    let ds = BitmapDataset::generate(rows, 3, 11);
    let chunk_programs = compile_bitmap_query_with(&ds, 3, config, QueryPlan::PairwiseChain)
        .expect("query compiles");
    let programs: Vec<PimProgram> = std::iter::repeat_with(|| chunk_programs.iter().cloned())
        .take(rounds.max(1))
        .flatten()
        .collect();
    let units = MemoryController::new(config.clone()).pim_unit_count();
    let placements = blocked_placements(programs.len(), units, 8);
    let mut grid = Vec::new();
    for &s in shards {
        for cache in [false, true] {
            for batch in [false, true] {
                grid.push(grid_point(config, &programs, &placements, s, cache, batch));
            }
        }
    }
    grid
}

/// Submits the same query program `jobs` times and measures the
/// submit-side (compile) wall time, cache off vs cache on.
#[must_use]
pub fn repeated_query_campaign(config: &MemoryConfig, jobs: u64) -> RepeatedQueryCampaign {
    let ds = BitmapDataset::generate(64, 4, 7);
    let program = compile_bitmap_query_with(&ds, 4, config, QueryPlan::PairwiseChain)
        .expect("query compiles")
        .remove(0);

    let arm = |cache: bool| -> (f64, u64) {
        let options = RuntimeOptions::default().with_cache(CacheOptions {
            enabled: cache,
            ..CacheOptions::default()
        });
        let rt = Runtime::new(config.clone(), options).expect("runtime options are valid");
        let start = Instant::now();
        for _ in 0..jobs {
            rt.submit(program.clone(), Placement::Auto)
                .expect("submission succeeds");
        }
        let submit_ms = start.elapsed().as_secs_f64() * 1e3;
        let report = rt.finish().expect("session completes");
        (submit_ms, report.stats.cache.hits)
    };

    let (cold_submit_ms, _) = arm(false);
    let (warm_submit_ms, warm_hits) = arm(true);
    RepeatedQueryCampaign {
        jobs,
        cold_submit_ms,
        warm_submit_ms,
        speedup: cold_submit_ms / warm_submit_ms,
        warm_hits,
    }
}

/// A job stream of exactly `jobs` programs: the dataset's chunk
/// programs cycled until the count is met (all submitted `Auto`, so the
/// parallel router round-robins them and work-stealing stays legal).
fn scaling_stream(config: &MemoryConfig, jobs: usize) -> Vec<PimProgram> {
    let ds = BitmapDataset::generate(4_000, 3, 11);
    let chunks = compile_bitmap_query_with(&ds, 3, config, QueryPlan::PairwiseChain)
        .expect("query compiles");
    chunks.iter().cloned().cycle().take(jobs).collect()
}

/// Runs one scaling cell: `jobs` Auto submissions through the chosen
/// engine at the chosen shard count.
#[must_use]
pub fn scale_point(
    config: &MemoryConfig,
    programs: &[PimProgram],
    mode: SchedMode,
    shards: usize,
) -> ScalePoint {
    let placements = vec![Placement::Auto; programs.len()];
    let options = RuntimeOptions::default()
        .with_shards(shards)
        .with_sched_mode(mode);
    let (report, wall_ms) = run_session(config, programs, &placements, options);
    let sched = &report.stats.sched;
    let jobs = report.stats.jobs;
    ScalePoint {
        mode: sched.mode.clone(),
        shards,
        jobs,
        wall_ms,
        jobs_per_sec: jobs as f64 / (wall_ms / 1e3),
        capacity_jobs_per_sec: if sched.busy_micros > 0 {
            jobs as f64 / (sched.busy_micros as f64 / 1e6)
        } else {
            0.0
        },
        busy_micros: sched.busy_micros,
        occupancy_pct: sched.occupancy_pct,
        steals: sched.steals,
        per_shard_issued: sched.per_domain.iter().map(|d| d.issued).collect(),
        per_shard_jobs: sched.per_domain.iter().map(|d| d.jobs).collect(),
        stage_pct: StagePct::of(sched),
    }
}

/// The scheduler-scaling sweep: both engines at every shard count, at
/// every job count.
#[must_use]
pub fn scaling_sweep(
    config: &MemoryConfig,
    shards: &[usize],
    jobs_counts: &[usize],
) -> Vec<ScalePoint> {
    let mut points = Vec::new();
    for &jobs in jobs_counts {
        let programs = scaling_stream(config, jobs);
        for mode in [SchedMode::Classic, SchedMode::Parallel] {
            for &s in shards {
                points.push(scale_point(config, &programs, mode, s));
            }
        }
    }
    points
}

/// The gated perf-smoke measurement: best-of-`best_of` parallel runs at
/// 1 and at 8 domains, compared on the capacity metric.
#[must_use]
pub fn perf_smoke(config: &MemoryConfig, jobs: usize, best_of: usize) -> PerfSmoke {
    let programs = scaling_stream(config, jobs);
    let best_arm = |shards: usize| -> ScalePoint {
        (0..best_of.max(1))
            .map(|_| scale_point(config, &programs, SchedMode::Parallel, shards))
            .max_by(|a, b| a.capacity_jobs_per_sec.total_cmp(&b.capacity_jobs_per_sec))
            .expect("at least one run")
    };
    let one = best_arm(1);
    let eight = best_arm(8);
    PerfSmoke {
        metric: "capacity_jobs_per_sec = jobs / busiest-thread busy CPU time; \
                 thread CPU time excludes preemption, so the 8v1 ratio measures \
                 serial-bottleneck scaling even on hosts with fewer cores than domains"
            .into(),
        host_cores: host_cores(),
        jobs: one.jobs,
        best_of: best_of.max(1),
        capacity_1: one.capacity_jobs_per_sec,
        capacity_8: eight.capacity_jobs_per_sec,
        capacity_ratio_8v1: eight.capacity_jobs_per_sec / one.capacity_jobs_per_sec,
        wall_ratio_8v1: eight.jobs_per_sec / one.jobs_per_sec,
    }
}

/// Runs the whole harness: the grid (each stream submitted `rounds`
/// times), the repeated-query campaign, the scheduler-scaling sweep,
/// and the gated perf-smoke summary.
#[must_use]
pub fn run_full(
    config: &MemoryConfig,
    rows: usize,
    shards: &[usize],
    rounds: usize,
    jobs: u64,
    scaling_jobs: &[usize],
) -> RuntimeBench {
    RuntimeBench {
        banks: config.banks,
        pim_units: MemoryController::new(config.clone()).pim_unit_count(),
        host_cores: host_cores(),
        grid: run_grid(config, rows, shards, rounds),
        repeated_query: repeated_query_campaign(config, jobs),
        scaling: scaling_sweep(config, shards, scaling_jobs),
        perf_smoke: perf_smoke(config, scaling_jobs.last().copied().unwrap_or(1_000), 3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny-geometry smoke: the whole harness runs, every grid cell
    /// serves the same job count with identical modeled device cycles at
    /// batch off, the warm arm hits `jobs - 1` times, and batching
    /// engages where enabled.
    #[test]
    fn harness_smoke_on_tiny_geometry() {
        let config = MemoryConfig::tiny();
        let rounds = 2;
        let bench = run_full(&config, 2_000, &[1, 2], rounds, 200, &[200]);
        assert_eq!(bench.grid.len(), 8);
        let jobs = bench.grid[0].jobs;
        assert!(jobs > 0);
        // Distinct chunk programs per round; repeats are the hits.
        let expected_hits = jobs / rounds as u64 * (rounds as u64 - 1);
        for cell in &bench.grid {
            assert_eq!(cell.jobs, jobs, "every cell serves the whole stream");
            assert!(cell.wall_ms > 0.0);
            if cell.batch {
                assert!(cell.batches > 0, "batch cells must batch: {cell:?}");
            } else {
                assert_eq!(cell.batches, 0);
            }
            if cell.cache {
                assert_eq!(
                    cell.cache_hits, expected_hits,
                    "cache cells must hit on every repeated chunk: {cell:?}"
                );
            } else {
                assert_eq!(cell.cache_hits, 0);
            }
        }
        // Cross-boundary optimization may only ever *reduce* modeled
        // device work (grid order: batch-off cell then batch-on cell).
        assert!(bench.grid[1].device_cycles <= bench.grid[0].device_cycles);
        assert_eq!(bench.repeated_query.warm_hits, 200 - 1);
        assert!(
            bench.repeated_query.speedup > 1.0,
            "warm submits must be cheaper: {:?}",
            bench.repeated_query
        );
        // Scaling sweep: both engines at both shard counts, one jobs
        // count, every cell serving the whole stream.
        assert_eq!(bench.scaling.len(), 4);
        for point in &bench.scaling {
            assert_eq!(point.jobs, 200, "{point:?}");
            assert!(point.capacity_jobs_per_sec > 0.0, "{point:?}");
            assert_eq!(point.per_shard_jobs.iter().sum::<u64>(), 200, "{point:?}");
            let stage_total = point.stage_pct.pop
                + point.stage_pct.admit
                + point.stage_pct.place
                + point.stage_pct.dispatch
                + point.stage_pct.ack;
            assert!(
                (stage_total - 100.0).abs() < 1e-6,
                "stage percentages sum to 100: {point:?}"
            );
        }
        assert!(bench.perf_smoke.capacity_ratio_8v1 > 0.0);
        assert!(bench.perf_smoke.host_cores >= 1);
    }
}
